//! The cohort: a single replica of a module group, implementing the full
//! protocol of the paper as a deterministic, sans-I/O state machine.
//!
//! A cohort is driven entirely by three inputs — messages
//! ([`Cohort::on_message`]), timers ([`Cohort::on_timer`]), and client
//! transaction requests ([`Cohort::begin_transaction`]) — and responds
//! with a list of [`Effect`]s (messages to send, timers to arm,
//! transaction outcomes, observability events). Both the deterministic
//! simulator and the threaded live runtime execute the same state machine.
//!
//! The state follows Figure 4 of the paper: status, gstate, up-to-date
//! flag, configuration, mid, groupid, current viewid/view, history,
//! max-viewid, timestamp generator, and communication buffer. The
//! timestamp generator and buffer live in [`CommBuffer`]; lock state
//! (Figure 1's `lockers`) lives in [`LockTable`].

mod client;
mod coord_server;
mod server;
mod view_change;

pub use client::{call_op_index, call_seq, AbortReason, CallOp, TxnOutcome};
pub use view_change::{formation_possible, Acceptance};

use crate::buffer::CommBuffer;
use crate::config::CohortConfig;
use crate::durable::{Checkpoint, DurableEvent, RecoveredState};
use crate::event::{EventKind, EventRecord};
use crate::gstate::{GroupState, ObjectAccess};
use crate::history::History;
use crate::lease::LeaseHolder;
use crate::locks::LockTable;
use crate::messages::Message;
use crate::module::Module;
use crate::snapshot::{SnapDigest, Snapshot, SnapshotRef};
use crate::types::{Aid, CallId, GroupId, Mid, Tick, Timestamp, ViewId, Viewstamp};
use crate::view::{Configuration, View};
use client::CoordTxn;
use std::collections::{BTreeMap, BTreeSet};
use view_change::VcState;

/// The cohort status of Figure 1: "active" cohorts participate in
/// transaction processing; the other two statuses belong to the view
/// change algorithm (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Participating in transaction processing.
    Active,
    /// Running the view change algorithm as its manager.
    ViewManager,
    /// Accepted an invitation; awaiting the new view.
    Underling,
}

impl Status {
    /// Stable lowercase name, used by trace exporters.
    pub fn name(&self) -> &'static str {
        match self {
            Status::Active => "active",
            Status::ViewManager => "view-manager",
            Status::Underling => "underling",
        }
    }
}

/// A timer the cohort asked its runtime to arm. Timers are never
/// cancelled; each carries enough identity (viewids, call ids, attempt
/// counters) for the handler to recognize and ignore stale firings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Timer {
    /// Periodic: send "I'm alive" messages, check for silent view members,
    /// sweep stale transactions.
    Heartbeat,
    /// Periodic while primary: stream the communication buffer to lagging
    /// backups in background mode (Section 2).
    BufferFlush,
    /// Client: a remote call has not been answered.
    CallRetry {
        /// The outstanding call.
        call_id: CallId,
        /// How many sends have occurred.
        attempt: u32,
    },
    /// Coordinator: a prepare round has not completed.
    PrepareRetry {
        /// The preparing transaction.
        aid: Aid,
        /// How many rounds have been sent.
        attempt: u32,
    },
    /// Coordinator: retransmit commit messages until all participants
    /// acknowledge (phase two runs in background).
    CommitRetry {
        /// The committed transaction.
        aid: Aid,
        /// How many commit rounds have been sent.
        attempt: u32,
    },
    /// Primary: a force has been outstanding too long; if still pending,
    /// the force is abandoned and a view change begins (Section 3,
    /// footnote 1).
    ForceCheck {
        /// The view in which the force was issued.
        viewid: ViewId,
        /// The forced timestamp.
        ts: Timestamp,
    },
    /// Server: a parked call has waited too long for locks.
    LockWait {
        /// The parked call.
        call_id: CallId,
    },
    /// Participant: periodically query the coordinator group about an
    /// unresolved prepared transaction (Section 3.4).
    QueryTick {
        /// The unresolved transaction.
        aid: Aid,
    },
    /// View manager: stop waiting for invitation responses.
    InviteTimeout {
        /// The proposed view.
        viewid: ViewId,
    },
    /// Underling: the new view never arrived; become a manager.
    UnderlingTimeout {
        /// The awaited view.
        viewid: ViewId,
    },
    /// View manager: retry view formation after a failed attempt.
    ManagerRetry {
        /// The viewid of the failed attempt.
        viewid: ViewId,
    },
    /// Coordinator-server: a pinged client has not answered; abort its
    /// transaction unilaterally (Section 3.5).
    ClientPingTimeout {
        /// The pinged transaction.
        aid: Aid,
    },
    /// Unreplicated client agent: re-send a `ClientBegin`.
    AgentBeginRetry {
        /// The agent-local request id.
        req: u64,
        /// Sends so far.
        attempt: u32,
    },
    /// Unreplicated client agent: a remote call has not been answered.
    AgentCallRetry {
        /// The outstanding call.
        call_id: CallId,
        /// Sends so far.
        attempt: u32,
    },
    /// Unreplicated client agent: re-send a `ClientCommit`.
    AgentCommitRetry {
        /// The committing transaction.
        aid: Aid,
        /// Sends so far.
        attempt: u32,
    },
    /// Fetching cohort: a requested snapshot chunk has not arrived;
    /// re-request it from the transfer source.
    ChunkRetry {
        /// The snapshot being fetched.
        digest: SnapDigest,
        /// The chunk index that was outstanding when the timer was armed.
        index: u32,
        /// The fetch's attempt counter when the timer was armed (stale
        /// firings are recognized by a counter mismatch).
        attempt: u32,
    },
    /// Leaseholding primary: a backup's grant reaches the end of its
    /// `lease_ticks` validity. Stale firings (the grant was renewed in
    /// the meantime) are recognized by a sequence mismatch.
    LeaseExpiry {
        /// The granting backup.
        backup: Mid,
        /// The grant's sequence number when the timer was armed.
        seq: u64,
    },
    /// New primary: the skew-adjusted maximum outstanding lease of the
    /// previous primary has been waited out; deferred prepare/commit
    /// traffic can now be processed.
    LeaseWait {
        /// The view whose start was gated on the wait.
        viewid: ViewId,
    },
}

impl Timer {
    /// Stable lowercase name of the timer kind, used by trace
    /// exporters.
    pub fn name(&self) -> &'static str {
        match self {
            Timer::Heartbeat => "heartbeat",
            Timer::BufferFlush => "buffer-flush",
            Timer::CallRetry { .. } => "call-retry",
            Timer::PrepareRetry { .. } => "prepare-retry",
            Timer::CommitRetry { .. } => "commit-retry",
            Timer::ForceCheck { .. } => "force-check",
            Timer::LockWait { .. } => "lock-wait",
            Timer::QueryTick { .. } => "query-tick",
            Timer::InviteTimeout { .. } => "invite-timeout",
            Timer::UnderlingTimeout { .. } => "underling-timeout",
            Timer::ManagerRetry { .. } => "manager-retry",
            Timer::ClientPingTimeout { .. } => "client-ping-timeout",
            Timer::AgentBeginRetry { .. } => "agent-begin-retry",
            Timer::AgentCallRetry { .. } => "agent-call-retry",
            Timer::AgentCommitRetry { .. } => "agent-commit-retry",
            Timer::ChunkRetry { .. } => "chunk-retry",
            Timer::LeaseExpiry { .. } => "lease-expiry",
            Timer::LeaseWait { .. } => "lease-wait",
        }
    }
}

/// Per-timer-kind salt constants for retry jitter: distinct timers of
/// one cohort must not share a jitter draw, or their retries would
/// collide instead of spreading.
pub(crate) mod retry_kind {
    /// Client call retries.
    pub(crate) const CALL: u64 = 1;
    /// Coordinator prepare rounds.
    pub(crate) const PREPARE: u64 = 2;
    /// Coordinator commit (phase two) rounds.
    pub(crate) const COMMIT: u64 = 3;
    /// View-manager formation retries.
    pub(crate) const MANAGER: u64 = 4;
    /// Agent `ClientBegin` retries.
    pub(crate) const AGENT_BEGIN: u64 = 5;
    /// Agent call retries.
    pub(crate) const AGENT_CALL: u64 = 6;
    /// Agent `ClientCommit` retries.
    pub(crate) const AGENT_COMMIT: u64 = 7;
    /// Snapshot chunk re-requests during state transfer.
    pub(crate) const CHUNK: u64 = 8;
}

/// Structured observability events, emitted so harnesses can check
/// invariants (one-copy serializability, committed-transaction
/// durability) and measure the experiments without groveling through
/// internal state. Runtimes may ignore them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Observation {
    /// A transaction's effects were installed at this cohort.
    TxnCommitted {
        /// The group installing.
        group: GroupId,
        /// This cohort.
        mid: Mid,
        /// The transaction.
        aid: Aid,
        /// The installed accesses, in event order.
        accesses: Vec<ObjectAccess>,
    },
    /// A transaction aborted at this cohort.
    TxnAborted {
        /// The group.
        group: GroupId,
        /// This cohort.
        mid: Mid,
        /// The transaction.
        aid: Aid,
    },
    /// This cohort entered a new active view.
    ViewChanged {
        /// The group.
        group: GroupId,
        /// This cohort.
        mid: Mid,
        /// The new viewid.
        viewid: ViewId,
        /// The new view.
        view: View,
        /// Whether this cohort is the new primary.
        is_primary: bool,
    },
    /// A force could not reach a sub-majority and was abandoned; a view
    /// change follows.
    ForceAbandoned {
        /// The group.
        group: GroupId,
        /// This cohort (the abandoning primary).
        mid: Mid,
        /// The view whose buffer was abandoned.
        viewid: ViewId,
    },
    /// A prepare was processed; `waited` records whether the primary had
    /// to wait for a force (false = the Section 3.7 fast path where the
    /// needed completed-call records were already at a sub-majority).
    PrepareProcessed {
        /// The participant group.
        group: GroupId,
        /// The transaction.
        aid: Aid,
        /// Whether the force had to wait.
        waited: bool,
    },
    /// This cohort started acting as a view manager.
    ViewChangeStarted {
        /// The group.
        group: GroupId,
        /// This cohort.
        mid: Mid,
        /// The proposed viewid.
        viewid: ViewId,
    },
    /// This cohort moved between view-management states (Figure 1's
    /// `status`). Every transition flows through here, so harnesses can
    /// reconstruct the full state machine timeline.
    StatusChanged {
        /// The group.
        group: GroupId,
        /// This cohort.
        mid: Mid,
        /// The status before the transition.
        from: Status,
        /// The status after.
        to: Status,
    },
    /// The primary registered a force that could not complete
    /// immediately and now waits on the sub-majority watermark
    /// (Section 3: `force_to`).
    ForceBegan {
        /// The group.
        group: GroupId,
        /// The forcing primary.
        mid: Mid,
        /// The forced viewstamp.
        vs: Viewstamp,
    },
    /// Pending forces completed: a backup acknowledgement moved the
    /// sub-majority watermark past their timestamps.
    ForceFired {
        /// The group.
        group: GroupId,
        /// The primary.
        mid: Mid,
        /// The watermark that satisfied the forces.
        vs: Viewstamp,
        /// How many pending forces fired on this acknowledgement.
        fired: u64,
    },
    /// The primary streamed its buffer to lagging backups, sharing one
    /// record-window clone per distinct ack watermark. Emitted only
    /// when sharing actually saved clones, to keep observation volume
    /// proportional to useful work.
    BufferFlushed {
        /// The group.
        group: GroupId,
        /// The flushing primary.
        mid: Mid,
        /// `BufferSend` messages produced by this flush.
        sends: u64,
        /// Clones avoided versus the old one-clone-per-backup scheme.
        clones_saved: u64,
    },
    /// The cohort materialized a content-addressed snapshot of its state
    /// (at a timestamp boundary, or ad hoc when starting a view with no
    /// stable snapshot).
    SnapshotTaken {
        /// The group.
        group: GroupId,
        /// This cohort.
        mid: Mid,
        /// The last viewstamp reflected in the snapshot.
        vs: Viewstamp,
        /// Size of the snapshot's canonical encoding.
        bytes: u64,
    },
    /// A chunked state transfer completed and the fetched snapshot (plus
    /// the newview delta) was installed.
    SnapshotInstalled {
        /// The group.
        group: GroupId,
        /// The fetching cohort.
        mid: Mid,
        /// How many chunks the transfer comprised.
        chunks: u32,
        /// Ticks from the first chunk request to installation.
        ticks: Tick,
    },
    /// An incoming snapshot chunk failed its CRC and was dropped; the
    /// retry timer will re-request it.
    ChunkCorruptDropped {
        /// The group.
        group: GroupId,
        /// The fetching cohort.
        mid: Mid,
    },
    /// A chunk request went unanswered and was retransmitted.
    ChunkRetried {
        /// The group.
        group: GroupId,
        /// The fetching cohort.
        mid: Mid,
    },
    /// Status-map entries were garbage-collected by a *done* record:
    /// phase two finished, so the transaction's outcome can never again
    /// be queried by a participant that took part in it (DESIGN §14).
    StatusesGced {
        /// The group.
        group: GroupId,
        /// This cohort.
        mid: Mid,
        /// Entries removed.
        n: u64,
    },
    /// A read-only transaction was served locally by a leaseholding
    /// primary: no event record, no persist, no force. The accesses
    /// (with the versions read) are what the stale-read oracle checks
    /// against the committed version chain at this observation's
    /// position in the stream.
    LeasedRead {
        /// The group.
        group: GroupId,
        /// The serving primary.
        mid: Mid,
        /// The transaction id assigned to the read.
        aid: Aid,
        /// The submitter's request id (for latency accounting).
        req_id: u64,
        /// The read accesses, with the versions observed.
        accesses: Vec<ObjectAccess>,
    },
    /// A backup renewed the primary's read lease (the primary already
    /// held a live grant from it).
    LeaseRenewed {
        /// The group.
        group: GroupId,
        /// The renewing primary (the grant receiver).
        mid: Mid,
    },
    /// A read-only submission could not take the leased fast path (no
    /// sub-majority of live grants, a lease wait in progress, or a lock
    /// conflict) and fell back to the replicated path.
    LeaseReadRejected {
        /// The group.
        group: GroupId,
        /// The rejecting primary.
        mid: Mid,
    },
    /// A new primary began waiting out the previous primary's maximum
    /// possible lease (skew-adjusted) before accepting prepares and
    /// commits.
    LeaseWaitStarted {
        /// The group.
        group: GroupId,
        /// The waiting new primary.
        mid: Mid,
        /// The view whose start is gated.
        viewid: ViewId,
        /// The wait in ticks (`lease_wait_ticks`).
        wait: Tick,
    },
}

/// An output of the state machine for its runtime to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect {
    /// Send `msg` to the cohort (or client) addressed by `to`.
    Send {
        /// Destination mid.
        to: Mid,
        /// The message.
        msg: Message,
    },
    /// Arm a timer to fire `after` ticks from now.
    SetTimer {
        /// Delay in ticks.
        after: Tick,
        /// The timer payload, returned verbatim to
        /// [`Cohort::on_timer`].
        timer: Timer,
    },
    /// A transaction submitted via [`Cohort::begin_transaction`]
    /// finished.
    TxnResult {
        /// The request id supplied by the submitter.
        req_id: u64,
        /// The transaction id, when one was assigned (absent only for
        /// submissions rejected before a transaction was created).
        aid: Option<Aid>,
        /// What happened.
        outcome: TxnOutcome,
    },
    /// An observability event (see [`Observation`]).
    Observe(Observation),
    /// Hand `event` to the stable store, if the runtime keeps one.
    ///
    /// Ordering contract: the cohort pushes a `Persist` *before* any
    /// [`Effect::Send`] that depends on it (a record persists before the
    /// acknowledgement that makes it count toward a sub-majority), and
    /// runtimes execute effects in list order. Runtimes without stable
    /// storage may ignore persist effects entirely — the protocol then
    /// degrades to the paper's viewid-only durability.
    Persist(DurableEvent),
}

/// The reasons a force can be pending, i.e. the continuations to run when
/// the sub-majority acknowledgement watermark passes the forced
/// timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ForceReason {
    /// Participant: vote yes on a prepare once the transaction's
    /// completed-call records are at a sub-majority (Figure 3).
    PrepareVote { aid: Aid, coordinator: Mid, read_only: bool },
    /// Participant: acknowledge a commit once the committed record is at a
    /// sub-majority (Figure 3).
    CommitAck { aid: Aid, coordinator: Mid },
    /// Coordinator: the committing record reached a sub-majority — the
    /// commit point (Figure 2).
    CoordCommitted { aid: Aid },
    /// Server: reply to a call only after its completed-call record is at
    /// a sub-majority (the `eager_force_calls` mode of Section 6).
    CallReply { call_id: CallId, to: Mid },
}

/// A chunked snapshot fetch in progress: this cohort received a newview
/// record referencing a base snapshot it does not hold, and is pulling
/// the snapshot bytes from the record's sender one chunk at a time.
/// Installation of the new view is deferred until the transfer
/// completes (no ack is sent, so the primary keeps retransmitting and
/// the view-change timeouts stay armed as the escape hatch).
#[derive(Debug)]
pub(crate) struct FetchState {
    /// Reassembles the snapshot bytes; tracks the digest and next index.
    pub(crate) asm: vsr_snap::Assembler,
    /// Who to request chunks from (the cohort that sent the newview).
    pub(crate) source: Mid,
    /// When the fetch began (for transfer-duration observability).
    pub(crate) started_at: Tick,
    /// Retransmissions so far; drives backoff and the give-up cap.
    pub(crate) attempts: u32,
    /// The deferred installation.
    pub(crate) pending: PendingInstall,
}

/// The newview record whose installation awaits a snapshot fetch.
#[derive(Debug)]
pub(crate) struct PendingInstall {
    /// The view the record opens.
    pub(crate) viewid: ViewId,
    /// The full newview event record (kind is always
    /// `EventKind::NewView`); kept whole so completion can persist,
    /// advance, and acknowledge it exactly as the immediate path does.
    pub(crate) record: EventRecord,
}

/// How many fetch attempts (initial request + retries of any one chunk)
/// before a transfer is abandoned and the ordinary view-change timeouts
/// take over.
const MAX_CHUNK_ATTEMPTS: u32 = 10;

/// How many recent snapshots a cohort retains for serving chunks (older
/// ones are dropped; a peer fetching a dropped snapshot falls back to
/// the view-change timeouts and catches the next newview).
const SNAP_RETAIN: usize = 2;

/// Bound on the lease-wait deferral queue; the wait is short (a few
/// lease durations) so overflow means a retry storm — dropping is safe,
/// the senders' retry timers re-deliver.
const MAX_LEASE_DEFERRED: usize = 256;

/// A call parked on a lock conflict, retried when locks are released.
#[derive(Debug, Clone)]
pub(crate) struct WaitingCall {
    pub(crate) from: Mid,
    pub(crate) viewid: ViewId,
    pub(crate) call_id: CallId,
    pub(crate) proc: String,
    pub(crate) args: Vec<u8>,
}

/// Everything needed to construct a cohort.
///
/// Not `Debug` because it owns the boxed application [`Module`].
#[allow(missing_debug_implementations)]
pub struct CohortParams {
    /// Protocol tuning knobs.
    pub cfg: CohortConfig,
    /// This cohort's mid.
    pub mid: Mid,
    /// The group's configuration (must contain `mid`).
    pub configuration: Configuration,
    /// The initial primary (bootstrap view; must be a configuration
    /// member).
    pub initial_primary: Mid,
    /// The location directory: configurations of every group this cohort
    /// may call (Section 3.1's location server, modeled as an immutable
    /// map since configurations never change; *primary* discovery remains
    /// dynamic, via probe messages).
    pub peers: BTreeMap<GroupId, Configuration>,
    /// The application module replicated by this group.
    pub module: Box<dyn Module>,
}

/// A replica of a module group (Figure 4's cohort state plus the volatile
/// coordinator, server, and view change bookkeeping).
pub struct Cohort {
    pub(crate) cfg: CohortConfig,
    pub(crate) mid: Mid,
    pub(crate) group: GroupId,
    pub(crate) configuration: Configuration,
    pub(crate) peers: BTreeMap<GroupId, Configuration>,
    pub(crate) module: Box<dyn Module>,

    // --- stable storage (survives crashes; Section 4.2) ---
    pub(crate) stable_viewid: ViewId,

    // --- volatile protocol state (Figure 4) ---
    pub(crate) status: Status,
    pub(crate) up_to_date: bool,
    pub(crate) cur_viewid: ViewId,
    pub(crate) cur_view: View,
    pub(crate) max_viewid: ViewId,
    pub(crate) history: History,
    pub(crate) gstate: GroupState,
    pub(crate) locks: LockTable,
    pub(crate) buffer: Option<CommBuffer<ForceReason>>,

    // --- failure detection ---
    pub(crate) last_heard: BTreeMap<Mid, Tick>,

    // --- server-side volatile state ---
    pub(crate) waiting_calls: Vec<WaitingCall>,
    pub(crate) prepared: BTreeSet<Aid>,
    pub(crate) last_activity: BTreeMap<Aid, Tick>,

    // --- coordinator-side volatile state ---
    pub(crate) coord: BTreeMap<Aid, CoordTxn>,
    /// Delegated transactions from unreplicated clients (Section 3.5):
    /// aid -> client mid, from begin until the commit decision.
    pub(crate) delegated: BTreeMap<Aid, Mid>,
    /// Delegated transactions with an outstanding client liveness ping.
    pub(crate) ping_pending: BTreeSet<Aid>,
    pub(crate) resumed: BTreeMap<Aid, BTreeSet<GroupId>>,
    pub(crate) next_txn_seq: u64,
    pub(crate) cache: BTreeMap<GroupId, (ViewId, View)>,

    // --- snapshots & state transfer ---
    /// Recently materialized (or fetched) snapshots, oldest first;
    /// bounded by [`SNAP_RETAIN`]. Served to peers via `GetChunk`.
    pub(crate) snaps: Vec<std::sync::Arc<Snapshot>>,
    /// The newest stable snapshot reference — what this cohort's newview
    /// records anchor their deltas on when it becomes primary.
    pub(crate) last_snap: Option<SnapshotRef>,
    /// Event records applied since `last_snap` (the would-be newview
    /// delta). Maintained only when `snapshot_interval > 0`; may span
    /// views. Never contains newview records.
    pub(crate) delta_log: Vec<EventRecord>,
    /// An in-progress chunked snapshot fetch, if any.
    pub(crate) fetch: Option<FetchState>,

    // --- durability bookkeeping ---
    /// Event records applied since the last checkpoint persist effect;
    /// drives [`CohortConfig::checkpoint_interval`].
    pub(crate) records_since_checkpoint: u64,
    /// How many log records the last [`Cohort::recover`] replayed (0 for
    /// a paper-minimum recovery); read by harness metrics.
    pub(crate) records_replayed: u64,

    // --- pipelined handler passes ---
    /// Whether a harness-driven handler pass is open (see
    /// [`Cohort::begin_pass`]). While open, the immediate buffer
    /// flushes that `primary_add`/`primary_force` would emit are
    /// coalesced into one flush at [`Cohort::end_pass`].
    pub(crate) pass_active: bool,
    /// A flush was requested during the open pass and is owed at
    /// `end_pass`.
    pub(crate) flush_deferred: bool,

    // --- view change volatile state ---
    pub(crate) vc: VcState,
    /// Heartbeats spent deferring to a higher-priority manager candidate
    /// (Section 4.1's churn-avoidance policy).
    pub(crate) manager_deferrals: u32,
    /// Consecutive failed view formations; drives the manager-retry
    /// backoff. Reset whenever the cohort rejoins an active view.
    pub(crate) manager_attempts: u32,

    // --- read leases ---
    /// Primary-side table of live lease grants (empty unless this cohort
    /// is an active primary with `lease_ticks > 0`).
    pub(crate) lease: LeaseHolder,
    /// Highest viewid each peer has explicitly revoked its leases for
    /// (from `LeaseRevoke` broadcasts). Lets a new primary skip the
    /// skew-adjusted wait when the old primary relinquished gracefully.
    pub(crate) lease_revokes: BTreeMap<Mid, ViewId>,
    /// When `Some`, this new primary is waiting out the previous
    /// primary's maximum possible lease before processing commit-point
    /// traffic (see [`LeaseWaitState`]).
    pub(crate) lease_wait: Option<LeaseWaitState>,
    /// Prepare/commit/query-reply messages queued during a lease wait,
    /// replayed in arrival order when the wait ends. Bounded; overflow
    /// is dropped (senders retry).
    pub(crate) lease_deferred: Vec<Message>,
}

/// A new primary's wait on the previous primary's outstanding lease:
/// commit-point traffic (prepares, commits, outcome replies) is deferred
/// until either `Timer::LeaseWait` fires or the previous primary's
/// explicit `LeaseRevoke` arrives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct LeaseWaitState {
    /// The view whose start is gated.
    pub(crate) viewid: ViewId,
    /// The primary of the latest previous active view — the only cohort
    /// that could still hold a lease.
    pub(crate) prev_primary: Mid,
    /// That previous view's id; a revocation covering it ends the wait.
    pub(crate) prev_viewid: ViewId,
}

impl std::fmt::Debug for Cohort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cohort")
            .field("mid", &self.mid)
            .field("group", &self.group)
            .field("status", &self.status)
            .field("cur_viewid", &self.cur_viewid)
            .field("up_to_date", &self.up_to_date)
            .finish_non_exhaustive()
    }
}

impl Cohort {
    /// Create a cohort at group-creation time, active in the bootstrap
    /// view (all configuration members, `initial_primary` as primary).
    ///
    /// # Panics
    ///
    /// Panics if `mid` or `initial_primary` is not a configuration member.
    pub fn new(params: CohortParams) -> Self {
        let CohortParams { cfg, mid, configuration, initial_primary, peers, module } = params;
        assert!(configuration.contains(mid), "cohort {mid} not in configuration");
        assert!(
            configuration.contains(initial_primary),
            "initial primary {initial_primary} not in configuration"
        );
        let group = configuration.group();
        let viewid = ViewId::initial(initial_primary);
        let backups: Vec<Mid> =
            configuration.members().iter().copied().filter(|&m| m != initial_primary).collect();
        let view = View::new(initial_primary, backups);
        let mut history = History::new();
        history.open_view(viewid);
        let gstate = GroupState::with_objects(module.initial_objects());
        let buffer = (mid == initial_primary)
            .then(|| CommBuffer::new(viewid, view.backups(), configuration.sub_majority()));
        Cohort {
            cfg,
            mid,
            group,
            configuration,
            peers,
            module,
            stable_viewid: viewid,
            status: Status::Active,
            up_to_date: true,
            cur_viewid: viewid,
            cur_view: view,
            max_viewid: viewid,
            history,
            gstate,
            locks: LockTable::new(),
            buffer,
            last_heard: BTreeMap::new(),
            waiting_calls: Vec::new(),
            prepared: BTreeSet::new(),
            last_activity: BTreeMap::new(),
            coord: BTreeMap::new(),
            delegated: BTreeMap::new(),
            ping_pending: BTreeSet::new(),
            resumed: BTreeMap::new(),
            next_txn_seq: 0,
            cache: BTreeMap::new(),
            snaps: Vec::new(),
            last_snap: None,
            delta_log: Vec::new(),
            fetch: None,
            records_since_checkpoint: 0,
            records_replayed: 0,
            pass_active: false,
            flush_deferred: false,
            vc: VcState::None,
            manager_deferrals: 0,
            manager_attempts: 0,
            lease: LeaseHolder::new(),
            lease_revokes: BTreeMap::new(),
            lease_wait: None,
            lease_deferred: Vec::new(),
        }
    }

    /// Re-create a cohort after a crash from whatever its stable store
    /// handed back.
    ///
    /// With the paper-minimum [`RecoveredState::viewid_only`], volatile
    /// state is gone: the cohort starts with `up_to_date = false` and
    /// status view-manager, "causing it to start a view change"
    /// (Section 4), and answers invitations with a crash-acceptance.
    ///
    /// With a *complete* recovered state (fsync-per-record store, clean
    /// scan), the checkpoint is restored and the log tail replayed
    /// through the same [`apply_gstate_record`](Self::apply_gstate_record)
    /// path the live protocol uses, after which the cohort is up to date
    /// and answers *normally* — so even a whole-group crash can re-form a
    /// view. Incomplete state (lazier fsync policies, detected
    /// corruption, or a checkpoint older than the stable viewid) is
    /// deliberately discarded: recovering partial knowledge and claiming
    /// it is current could elect a primary that lost a forced commit.
    pub fn recover(params: CohortParams, recovered: RecoveredState) -> Self {
        let mut cohort = Cohort::new_inactive(params);
        let RecoveredState { stable_viewid, checkpoint, tail, complete } = recovered;
        cohort.stable_viewid = stable_viewid;
        cohort.cur_viewid = stable_viewid;
        cohort.max_viewid = stable_viewid;
        if !complete {
            return cohort;
        }
        let Some(cp) = checkpoint else { return cohort };
        if cp.viewid < stable_viewid {
            // A newer view was entered but its checkpoint never became
            // durable; the snapshot is stale. Fail safe: viewid only.
            return cohort;
        }
        cohort.cur_viewid = cp.viewid;
        cohort.cur_view = cp.view;
        cohort.history = cp.history;
        cohort.gstate = cp.gstate;
        let mut ignored = Vec::new();
        for record in &tail {
            let Some(latest) = cohort.history.latest() else { break };
            if record.vs.id != latest.id {
                break;
            }
            if record.ts() <= latest.ts {
                continue; // already inside the checkpoint
            }
            if record.ts().0 != latest.ts.0 + 1 {
                break; // gap: trust only the contiguous prefix
            }
            if !matches!(record.kind, EventKind::NewView { .. }) {
                // Replay observations are pre-crash news; discard them.
                cohort.apply_gstate_record(record, &mut ignored);
            }
            cohort.history.advance(record.vs.id, record.ts());
            cohort.records_replayed += 1;
        }
        cohort.up_to_date = !cohort.history.is_empty();
        cohort
    }

    fn new_inactive(params: CohortParams) -> Self {
        let CohortParams { cfg, mid, configuration, peers, module, .. } = params;
        assert!(configuration.contains(mid), "cohort {mid} not in configuration");
        let group = configuration.group();
        let viewid = ViewId::initial(mid);
        Cohort {
            cfg,
            mid,
            group,
            configuration,
            peers,
            module,
            stable_viewid: viewid,
            status: Status::ViewManager,
            up_to_date: false,
            cur_viewid: viewid,
            cur_view: View::new(mid, Vec::new()),
            max_viewid: viewid,
            history: History::new(),
            gstate: GroupState::new(),
            locks: LockTable::new(),
            buffer: None,
            last_heard: BTreeMap::new(),
            waiting_calls: Vec::new(),
            prepared: BTreeSet::new(),
            last_activity: BTreeMap::new(),
            coord: BTreeMap::new(),
            delegated: BTreeMap::new(),
            ping_pending: BTreeSet::new(),
            resumed: BTreeMap::new(),
            next_txn_seq: 0,
            cache: BTreeMap::new(),
            snaps: Vec::new(),
            last_snap: None,
            delta_log: Vec::new(),
            fetch: None,
            records_since_checkpoint: 0,
            records_replayed: 0,
            pass_active: false,
            flush_deferred: false,
            vc: VcState::None,
            manager_deferrals: 0,
            manager_attempts: 0,
            lease: LeaseHolder::new(),
            lease_revokes: BTreeMap::new(),
            lease_wait: None,
            lease_deferred: Vec::new(),
        }
    }

    /// Arm the initial timers; for a recovered cohort, also begin the view
    /// change. Call exactly once, right after construction.
    pub fn start(&mut self, now: Tick) -> Vec<Effect> {
        let mut out = Vec::new();
        if self.status == Status::Active && self.up_to_date {
            // The bootstrap view is entered at construction, not through
            // `start_view`, so its stable-storage write happens here —
            // otherwise a store would hold no trace of the initial view.
            out.push(Effect::Persist(DurableEvent::StableViewId(self.cur_viewid)));
            out.push(Effect::Persist(DurableEvent::Checkpoint(Checkpoint {
                viewid: self.cur_viewid,
                view: self.cur_view.clone(),
                history: self.history.clone(),
                gstate: self.gstate.clone(),
            })));
        }
        out.push(Effect::SetTimer { after: self.cfg.heartbeat_interval, timer: Timer::Heartbeat });
        if self.is_active_primary() {
            self.arm_flush(&mut out);
        }
        // Seed the failure detector for every *configuration* member,
        // not just the current view's: a recovered cohort restarts with
        // a placeholder view of itself alone, and without this grace a
        // view change it manages writes off every peer it has not heard
        // from since the restart — forming a bare-majority view that
        // excludes healthy cohorts (which then need a whole second view
        // change to rejoin, and in the meantime cannot grant leases).
        // Everyone gets one suspect_timeout to prove themselves.
        for &m in self.configuration.members() {
            if m != self.mid {
                self.last_heard.insert(m, now);
            }
        }
        if self.status == Status::ViewManager {
            self.start_view_change(now, &mut out);
        }
        out
    }

    // ------------------------------------------------------------------
    // accessors
    // ------------------------------------------------------------------

    /// Backoff-and-jitter delay for retry number `attempt` of a timer of
    /// the given [`retry_kind`]; mixes this cohort's mid into the jitter
    /// salt so cohorts retrying the same thing desynchronize.
    pub(crate) fn retry_delay(&self, base: u64, attempt: u32, kind: u64) -> u64 {
        self.cfg.retry_delay(base, attempt, self.mid.0.rotate_left(16) ^ kind)
    }

    /// This cohort's mid.
    pub fn mid(&self) -> Mid {
        self.mid
    }

    /// The group this cohort replicates.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// Current status (active / view-manager / underling).
    pub fn status(&self) -> Status {
        self.status
    }

    /// The current viewid.
    pub fn cur_viewid(&self) -> ViewId {
        self.cur_viewid
    }

    /// The current view.
    pub fn cur_view(&self) -> &View {
        &self.cur_view
    }

    /// The acceptance this cohort would send in response to a
    /// view-change invitation right now: normal (with its latest
    /// viewstamp) if up to date, crash-accept otherwise. Exposed so
    /// harness liveness oracles can apply [`formation_possible`] to a
    /// group's surviving state.
    pub fn acceptance(&self) -> Acceptance {
        self.own_acceptance()
    }

    /// Whether this cohort is the active primary of its group.
    pub fn is_active_primary(&self) -> bool {
        self.status == Status::Active && self.cur_view.primary() == self.mid
    }

    /// Whether this cohort's group state is meaningful (Figure 4's
    /// `up-to-date` flag; false after crash recovery until a newview
    /// record is installed).
    pub fn is_up_to_date(&self) -> bool {
        self.up_to_date
    }

    /// The group state (read-only; for checkers and tests).
    pub fn gstate(&self) -> &GroupState {
        &self.gstate
    }

    /// The history (read-only).
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The viewid last written to stable storage (what survives a crash).
    pub fn stable_viewid(&self) -> ViewId {
        self.stable_viewid
    }

    /// How many log records the constructing [`Cohort::recover`] replayed
    /// (0 for a paper-minimum viewid-only recovery). For harness metrics.
    pub fn records_replayed(&self) -> u64 {
        self.records_replayed
    }

    /// The group's configuration.
    pub fn configuration(&self) -> &Configuration {
        &self.configuration
    }

    /// Number of records currently held in the communication buffer
    /// (`None` when this cohort is not a primary). Bounded over long
    /// views because fully-acknowledged records are garbage-collected.
    pub fn buffer_len(&self) -> Option<usize> {
        self.buffer.as_ref().map(|b| b.len())
    }

    /// How many snapshots this cohort currently retains for serving
    /// chunked state transfers (bounded by the retention window).
    pub fn snapshot_count(&self) -> usize {
        self.snaps.len()
    }

    /// The newest stable snapshot reference, if one exists.
    pub fn last_snapshot(&self) -> Option<SnapshotRef> {
        self.last_snap
    }

    /// Whether a chunked snapshot fetch is currently in progress.
    pub fn fetch_in_progress(&self) -> bool {
        self.fetch.is_some()
    }

    /// The event records applied since the newest stable snapshot — the
    /// delta a newview started right now would carry instead of a full
    /// state clone. Exposed for harness assertions and the payload-size
    /// experiment (A5).
    pub fn delta_log(&self) -> &[EventRecord] {
        &self.delta_log
    }

    /// Coordinator transactions currently in flight on this cohort.
    /// The pipelined harnesses sample this into the in-flight
    /// histogram; nothing in the protocol bounds it to 1 — per-txn
    /// force reasons in the communication buffer keep interleaved
    /// timestamps correct (see DESIGN.md §15).
    pub fn inflight_txns(&self) -> usize {
        self.coord.len()
    }

    // ------------------------------------------------------------------
    // pipelined handler passes
    // ------------------------------------------------------------------

    /// Open a handler pass. Until [`end_pass`](Cohort::end_pass), the
    /// immediate `BufferSend` flushes that `primary_add` (in
    /// immediate-flush mode) and `primary_force` would emit are
    /// coalesced: the pass sets a deferred-flush flag instead, and
    /// `end_pass` emits *one* flush whose per-backup payload covers
    /// every record since that backup's ack watermark. Correct because
    /// a `BufferSend` for watermark `w` subsumes any earlier send for
    /// `w' ≥ w` — suppressing the intermediate sends is
    /// indistinguishable from message loss, which the protocol already
    /// tolerates. Harnesses that process inputs one at a time never
    /// need to call this; effects then flush exactly as before.
    pub fn begin_pass(&mut self) {
        self.pass_active = true;
    }

    /// Close the pass opened by [`begin_pass`](Cohort::begin_pass) and
    /// return the coalesced flush effects (empty when no flush was
    /// deferred or this cohort stopped being an active primary
    /// mid-pass — the buffer it would have flushed is gone).
    pub fn end_pass(&mut self) -> Vec<Effect> {
        self.pass_active = false;
        let mut out = Vec::new();
        if core::mem::take(&mut self.flush_deferred) && self.is_active_primary() {
            self.flush_buffer(&mut out);
        }
        out
    }

    // ------------------------------------------------------------------
    // input dispatch
    // ------------------------------------------------------------------

    /// Deliver a message from `from`, producing effects.
    pub fn on_message(&mut self, now: Tick, from: Mid, msg: Message) -> Vec<Effect> {
        let mut out = Vec::new();
        if from != self.mid {
            self.last_heard.insert(from, now);
        }
        // A new primary waiting out the previous primary's lease defers
        // all commit-point traffic: nothing may install a new version
        // while the old leaseholder could still be serving reads.
        if self.lease_wait.is_some()
            && matches!(
                msg,
                Message::Prepare { .. } | Message::Commit { .. } | Message::QueryReply { .. }
            )
        {
            if self.lease_deferred.len() < MAX_LEASE_DEFERRED {
                self.lease_deferred.push(msg);
            }
            return out;
        }
        match msg {
            // transaction processing — server side
            Message::Call { viewid, call_id, proc, args } => {
                self.on_call(now, from, viewid, call_id, proc, args, &mut out)
            }
            Message::Prepare { aid, pset, coordinator } => {
                self.on_prepare(now, aid, pset, coordinator, &mut out)
            }
            Message::Commit { aid, coordinator } => {
                self.on_commit(now, aid, Some(coordinator), &mut out)
            }
            Message::Abort { aid } => self.on_abort_msg(now, aid, &mut out),
            Message::Query { aid, reply_to } => self.on_query(aid, reply_to, &mut out),
            Message::ClientBegin { req, reply_to } => self.on_client_begin(req, reply_to, &mut out),
            Message::ClientCommit { aid, pset, reply_to } => {
                self.on_client_commit(now, aid, pset, reply_to, &mut out)
            }
            Message::ClientAbort { aid } => self.on_client_abort(aid, &mut out),
            Message::ClientPong { aid } => self.on_client_pong(aid),
            // These two are handled by the unreplicated client agent, not
            // by cohorts; a cohort receiving one ignores it.
            Message::ClientBeginAck { .. }
            | Message::ClientOutcome { .. }
            | Message::ClientPing { .. } => {}
            Message::Probe { group, reply_to } => self.on_probe(group, reply_to, &mut out),

            // transaction processing — client side
            Message::CallReply { call_id, outcome } => {
                self.on_call_reply(now, call_id, outcome, &mut out)
            }
            Message::CallReject { call_id, newer } => {
                self.on_call_reject(now, call_id, newer, &mut out)
            }
            Message::PrepareOk { aid, group, read_only } => {
                self.on_prepare_ok(now, aid, group, read_only, &mut out)
            }
            Message::PrepareRefuse { aid, group } => {
                self.on_prepare_refuse(now, aid, group, &mut out)
            }
            Message::CommitDone { aid, group } => self.on_commit_done(aid, group, &mut out),
            Message::Redirect { group, newer } => self.on_redirect(now, group, newer, &mut out),
            Message::QueryReply { aid, outcome } => {
                self.on_query_reply(now, aid, outcome, &mut out)
            }
            Message::ProbeReply { group, viewid, view } => {
                self.on_probe_reply(now, group, viewid, view, &mut out)
            }

            // replication
            Message::BufferSend { viewid, from, records } => {
                self.on_buffer_send(now, viewid, from, records, &mut out)
            }
            Message::BufferAck { viewid, from, upto } => {
                self.on_buffer_ack(now, viewid, from, upto, &mut out)
            }

            // snapshot state transfer
            Message::GetChunk { digest, index, reply_to } => {
                self.on_get_chunk(digest, index, reply_to, &mut out)
            }
            Message::Chunk { digest, index, total, crc, payload } => {
                self.on_chunk(now, digest, index, total, crc, &payload, &mut out)
            }

            // read leases
            Message::LeaseGrant { viewid, from } => self.on_lease_grant(viewid, from, &mut out),
            Message::LeaseRevoke { viewid, from } => {
                self.on_lease_revoke(now, viewid, from, &mut out)
            }

            // failure detection
            Message::ImAlive { viewid, .. } => {
                // last_heard was already updated; additionally, a
                // heartbeat from a view newer than anything this cohort
                // has seen is proof that views up to `viewid` formed
                // while it was crashed or partitioned away. Fast-forward
                // the high-water mark so the next view-change attempt
                // proposes above the live view in one step — without
                // this, a recovered cohort crawls its viewid forward one
                // manager retry at a time and (with retry backoff) can
                // stay stuck outside the group for a long time.
                if viewid > self.max_viewid {
                    self.max_viewid = viewid;
                }
                // Lease renewal rides the heartbeat: an active,
                // up-to-date backup answers its current primary's
                // "I'm alive" with a fresh grant.
                if from == self.cur_view.primary() && viewid == self.cur_viewid {
                    self.maybe_grant_lease(&mut out);
                }
            }

            // view change
            Message::Invite { viewid, manager } => self.on_invite(now, viewid, manager, &mut out),
            Message::AcceptNormal { viewid, from, latest, was_primary } => self.on_accept(
                now,
                viewid,
                from,
                view_change::Acceptance::Normal { latest, was_primary },
                &mut out,
            ),
            Message::AcceptCrashed { viewid, from, stable_viewid } => self.on_accept(
                now,
                viewid,
                from,
                view_change::Acceptance::Crashed { stable_viewid },
                &mut out,
            ),
            Message::InitView { viewid, view } => self.on_init_view(now, viewid, view, &mut out),
        }
        out
    }

    /// A timer armed by an earlier [`Effect::SetTimer`] fired.
    pub fn on_timer(&mut self, now: Tick, timer: Timer) -> Vec<Effect> {
        let mut out = Vec::new();
        match timer {
            Timer::Heartbeat => self.on_heartbeat(now, &mut out),
            Timer::BufferFlush => self.on_buffer_flush(&mut out),
            Timer::CallRetry { call_id, attempt } => {
                self.on_call_retry(now, call_id, attempt, &mut out)
            }
            Timer::PrepareRetry { aid, attempt } => {
                self.on_prepare_retry(now, aid, attempt, &mut out)
            }
            Timer::CommitRetry { aid, attempt } => self.on_commit_retry(aid, attempt, &mut out),
            Timer::ForceCheck { viewid, ts } => self.on_force_check(now, viewid, ts, &mut out),
            Timer::LockWait { call_id } => self.on_lock_wait_timeout(call_id, &mut out),
            Timer::QueryTick { aid } => self.on_query_tick(aid, &mut out),
            Timer::InviteTimeout { viewid } => self.on_invite_timeout(now, viewid, &mut out),
            Timer::UnderlingTimeout { viewid } => self.on_underling_timeout(now, viewid, &mut out),
            Timer::ManagerRetry { viewid } => self.on_manager_retry(now, viewid, &mut out),
            Timer::ClientPingTimeout { aid } => self.on_client_ping_timeout(aid, &mut out),
            Timer::ChunkRetry { digest, index, attempt } => {
                self.on_chunk_retry(digest, index, attempt, &mut out)
            }
            Timer::LeaseExpiry { backup, seq } => {
                // A stale firing (the grant was renewed) is a no-op.
                self.lease.expire(backup, seq);
            }
            Timer::LeaseWait { viewid } => {
                if self.cur_viewid == viewid
                    && self.lease_wait.as_ref().is_some_and(|w| w.viewid == viewid)
                {
                    self.end_lease_wait(now, &mut out);
                }
            }
            // Agent timers never reach a cohort.
            Timer::AgentBeginRetry { .. }
            | Timer::AgentCallRetry { .. }
            | Timer::AgentCommitRetry { .. } => {}
        }
        out
    }

    /// Change Figure 1's `status`, emitting a
    /// [`Observation::StatusChanged`] so harnesses can trace every
    /// view-state transition. All transitions flow through here.
    pub(crate) fn set_status(&mut self, to: Status, out: &mut Vec<Effect>) {
        if self.status == to {
            return;
        }
        let from = self.status;
        self.status = to;
        out.push(Effect::Observe(Observation::StatusChanged {
            group: self.group,
            mid: self.mid,
            from,
            to,
        }));
    }

    // ------------------------------------------------------------------
    // primary-side buffer plumbing
    // ------------------------------------------------------------------

    /// Add an event record as the active primary: assigns a viewstamp,
    /// advances the history, applies the record to the local gstate, and
    /// (in immediate-flush mode) streams it to the backups.
    pub(crate) fn primary_add(&mut self, kind: EventKind, out: &mut Vec<Effect>) -> Viewstamp {
        debug_assert!(self.is_active_primary(), "primary_add on non-primary");
        let record_kind = kind.clone();
        let buffer = self.buffer.as_mut().expect("invariant: an active primary has a buffer");
        let vs = buffer.add(kind);
        self.history.advance(self.cur_viewid, vs.ts);
        let record = EventRecord { vs, kind: record_kind };
        // Log before use: the record must be durable before anything
        // downstream (sends, acks) makes it externally visible.
        out.push(Effect::Persist(DurableEvent::Record(record.clone())));
        self.apply_gstate_record(&record, out);
        self.note_applied(&record);
        self.checkpoint_tick(out);
        self.maybe_snapshot(vs, out);
        if self.cfg.buffer_flush_interval == 0 {
            if self.pass_active {
                self.flush_deferred = true;
            } else {
                self.flush_buffer(out);
            }
        }
        vs
    }

    /// Initiate a force as the active primary. If the force cannot
    /// complete immediately, streams the buffer at once (forces do not
    /// wait for the background flush) and arms the abandonment timer.
    /// Returns the reasons of forces that completed immediately.
    pub(crate) fn primary_force(
        &mut self,
        vs: Viewstamp,
        reason: ForceReason,
        out: &mut Vec<Effect>,
    ) -> Vec<ForceReason> {
        debug_assert!(self.is_active_primary(), "primary_force on non-primary");
        // A force is the protocol's commit point: stores running the
        // on-force fsync policy sync their log here (Section 3.7's
        // correspondence with conventional stable-storage forces).
        out.push(Effect::Persist(DurableEvent::Sync));
        let buffer = self.buffer.as_mut().expect("invariant: an active primary has a buffer");
        if buffer.force_to(vs, reason.clone()) {
            return vec![reason];
        }
        out.push(Effect::Observe(Observation::ForceBegan { group: self.group, mid: self.mid, vs }));
        out.push(Effect::SetTimer {
            after: self.cfg.force_timeout,
            timer: Timer::ForceCheck { viewid: self.cur_viewid, ts: vs.ts },
        });
        if self.pass_active {
            // The pass's single coalesced flush at `end_pass` covers
            // this force's records too; the abandonment timer above is
            // already armed, so only latency (not safety) rides on it.
            self.flush_deferred = true;
        } else {
            self.flush_buffer(out);
        }
        Vec::new()
    }

    /// Send every lagging backup the buffer records it has not yet
    /// acknowledged. Backups at the same ack watermark need the exact
    /// same record window, so one shared clone per distinct watermark
    /// serves them all instead of re-cloning per backup.
    pub(crate) fn flush_buffer(&mut self, out: &mut Vec<Effect>) {
        let Some(buffer) = self.buffer.as_ref() else { return };
        let viewid = buffer.viewid();
        let lagging: Vec<(Mid, Timestamp)> =
            buffer.lagging_backups().map(|m| (m, buffer.acked_by(m))).collect();
        let mut shared: BTreeMap<Timestamp, std::sync::Arc<[EventRecord]>> = BTreeMap::new();
        let mut sends = 0u64;
        let mut clones_saved = 0u64;
        for (backup, acked) in lagging {
            let records = match shared.get(&acked) {
                Some(records) => {
                    clones_saved += 1;
                    std::sync::Arc::clone(records)
                }
                None => {
                    let records: std::sync::Arc<[EventRecord]> = buffer.records_after(acked).into();
                    shared.insert(acked, std::sync::Arc::clone(&records));
                    records
                }
            };
            if records.is_empty() {
                continue;
            }
            sends += 1;
            out.push(Effect::Send {
                to: backup,
                msg: Message::BufferSend { viewid, from: self.mid, records },
            });
        }
        if clones_saved > 0 {
            out.push(Effect::Observe(Observation::BufferFlushed {
                group: self.group,
                mid: self.mid,
                sends,
                clones_saved,
            }));
        }
    }

    pub(crate) fn arm_flush(&self, out: &mut Vec<Effect>) {
        if self.cfg.buffer_flush_interval > 0 {
            out.push(Effect::SetTimer {
                after: self.cfg.buffer_flush_interval,
                timer: Timer::BufferFlush,
            });
        }
    }

    fn on_buffer_flush(&mut self, out: &mut Vec<Effect>) {
        if !self.is_active_primary() {
            return;
        }
        self.flush_buffer(out);
        // Records every backup has acknowledged can never need
        // retransmission; reclaim them so the buffer stays bounded over
        // long views.
        if let Some(buffer) = self.buffer.as_mut() {
            buffer.truncate_acked();
        }
        self.arm_flush(out);
    }

    fn on_buffer_ack(
        &mut self,
        now: Tick,
        viewid: ViewId,
        from: Mid,
        upto: Timestamp,
        out: &mut Vec<Effect>,
    ) {
        if !self.is_active_primary() || viewid != self.cur_viewid {
            return;
        }
        let (fired, watermark) = match self.buffer.as_mut() {
            Some(buffer) => (buffer.on_ack(from, upto), buffer.watermark()),
            None => return,
        };
        if !fired.is_empty() {
            out.push(Effect::Observe(Observation::ForceFired {
                group: self.group,
                mid: self.mid,
                vs: Viewstamp::new(self.cur_viewid, watermark),
                fired: fired.len() as u64,
            }));
        }
        for reason in fired {
            self.fire_force_reason(now, reason, out);
        }
    }

    fn on_force_check(&mut self, now: Tick, viewid: ViewId, ts: Timestamp, out: &mut Vec<Effect>) {
        if !self.is_active_primary() || viewid != self.cur_viewid {
            return;
        }
        let Some(buffer) = self.buffer.as_mut() else { return };
        let still_pending = buffer.earliest_pending_force().is_some_and(|earliest| earliest <= ts)
            && buffer.watermark() < ts;
        if !still_pending {
            return;
        }
        // "If communication with some backups is impossible, the call of
        // force-to will be abandoned, and the cohort will switch to
        // running the view change algorithm."
        out.push(Effect::Observe(Observation::ForceAbandoned {
            group: self.group,
            mid: self.mid,
            viewid: self.cur_viewid,
        }));
        let abandoned = buffer.abandon_forces();
        for reason in abandoned {
            if let ForceReason::CoordCommitted { aid } = reason {
                // The commit decision is in flight: its survival depends
                // on the coming view change, so the outcome is genuinely
                // unknown at this point.
                if let Some(txn) = self.coord.remove(&aid) {
                    out.push(Effect::TxnResult {
                        req_id: txn.req_id,
                        aid: Some(aid),
                        outcome: TxnOutcome::Unresolved,
                    });
                }
            }
        }
        self.start_view_change(now, out);
    }

    /// Run the continuation of a completed force.
    pub(crate) fn fire_force_reason(
        &mut self,
        now: Tick,
        reason: ForceReason,
        out: &mut Vec<Effect>,
    ) {
        match reason {
            ForceReason::PrepareVote { aid, coordinator, read_only } => {
                self.send_prepare_vote(now, aid, coordinator, read_only, out)
            }
            ForceReason::CommitAck { aid, coordinator } => out.push(Effect::Send {
                to: coordinator,
                msg: Message::CommitDone { aid, group: self.group },
            }),
            ForceReason::CoordCommitted { aid } => self.on_commit_decided(aid, out),
            ForceReason::CallReply { call_id, to } => {
                if let Some(record) = self.gstate.find_call(call_id) {
                    let outcome = server::reply_from_record(self.group, record);
                    out.push(Effect::Send { to, msg: Message::CallReply { call_id, outcome } });
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // backup-side record application
    // ------------------------------------------------------------------

    fn on_buffer_send(
        &mut self,
        now: Tick,
        viewid: ViewId,
        from: Mid,
        records: std::sync::Arc<[EventRecord]>,
        out: &mut Vec<Effect>,
    ) {
        // Unilateral view adjustment (Section 4.1): an active backup
        // follows its *current primary* directly into a higher view —
        // the newview record arrives on the ordinary buffer stream with
        // no invitation round.
        if self.status == Status::Active
            && self.cur_view.primary() == from
            && self.cur_view.primary() != self.mid
            && viewid > self.cur_viewid
            && viewid >= self.max_viewid
        {
            if let Some(first) = records.first() {
                if let EventKind::NewView { view, .. } = &first.kind {
                    if view.primary() == from && view.contains(self.mid) {
                        self.max_viewid = viewid;
                        if !self.install_from_newview(now, viewid, first, from, out) {
                            // Missing the base snapshot: a chunk fetch is
                            // under way and installation is deferred. No
                            // ack — the primary keeps retransmitting.
                            return;
                        }
                        // Fall through to apply the rest below.
                    }
                }
            }
        }
        // An underling waiting on `max_viewid` becomes active when the
        // newview record arrives (Figure 5, await_view).
        if self.status == Status::Underling && viewid == self.max_viewid {
            let Some(first) = records.first() else { return };
            if !matches!(first.kind, EventKind::NewView { .. }) {
                return;
            }
            if !self.install_from_newview(now, viewid, first, from, out) {
                return;
            }
            // Fall through to apply the rest of the records below.
        }
        if self.status != Status::Active
            || viewid != self.cur_viewid
            || self.cur_view.primary() == self.mid
        {
            return;
        }
        if self.cur_view.primary() != from {
            return;
        }
        let mut known = self.history.ts_for(self.cur_viewid).unwrap_or(Timestamp::ZERO);
        for record in records.iter() {
            if record.ts().0 <= known.0 {
                continue; // duplicate
            }
            if record.ts().0 != known.0 + 1 {
                break; // gap; the primary will retransmit from our ack
            }
            // Log before ack: the BufferAck below is what lets this
            // record count toward a sub-majority, so it must be durable
            // first.
            out.push(Effect::Persist(DurableEvent::Record(record.clone())));
            let is_newview = matches!(record.kind, EventKind::NewView { .. });
            if !is_newview {
                self.apply_gstate_record(record, out);
                self.note_applied(record);
            }
            known = record.ts();
            self.history.advance(self.cur_viewid, known);
            self.checkpoint_tick(out);
            if !is_newview {
                // Same boundary rule as the primary's `add` path, so
                // replicas materialize identical snapshots in lockstep.
                self.maybe_snapshot(record.vs, out);
            }
        }
        out.push(Effect::Send {
            to: from,
            msg: Message::BufferAck { viewid: self.cur_viewid, from: self.mid, upto: known },
        });
        // Lease renewal rides the ack: the backup just processed its
        // primary's buffer stream, so the primary is alive and current.
        self.maybe_grant_lease(out);
    }

    /// Emit a periodic checkpoint persist effect every
    /// `checkpoint_interval` applied records, so a store can bound its
    /// log replay (and garbage-collect old segments).
    pub(crate) fn checkpoint_tick(&mut self, out: &mut Vec<Effect>) {
        if self.cfg.checkpoint_interval == 0 {
            return;
        }
        self.records_since_checkpoint += 1;
        if self.records_since_checkpoint < self.cfg.checkpoint_interval {
            return;
        }
        self.records_since_checkpoint = 0;
        out.push(Effect::Persist(DurableEvent::Checkpoint(Checkpoint {
            viewid: self.cur_viewid,
            view: self.cur_view.clone(),
            history: self.history.clone(),
            gstate: self.gstate.clone(),
        })));
    }

    // ------------------------------------------------------------------
    // snapshots & chunked state transfer
    // ------------------------------------------------------------------

    /// Track an applied record in the delta log (the records a future
    /// newview from this cohort would ship on top of `last_snap`). A
    /// no-op when boundary snapshots are disabled — then every newview
    /// ships an ad-hoc snapshot reference with an empty delta and the
    /// log must not grow.
    fn note_applied(&mut self, record: &EventRecord) {
        if self.cfg.snapshot_interval > 0 {
            self.delta_log.push(record.clone());
        }
    }

    /// At a snapshot boundary (`ts % snapshot_interval == 0`),
    /// materialize a snapshot of the current state. Runs identically at
    /// the primary (add time) and backups (delivery time), so replicas
    /// produce byte-identical snapshots with equal digests, in lockstep.
    ///
    /// Snapshot stability drives compaction: the same boundary emits a
    /// WAL checkpoint, so the store never replays (or retains) records
    /// the snapshot already covers, and the delta log restarts here.
    fn maybe_snapshot(&mut self, vs: Viewstamp, out: &mut Vec<Effect>) {
        let interval = self.cfg.snapshot_interval;
        if interval == 0 || vs.ts.0 == 0 || !vs.ts.0.is_multiple_of(interval) {
            return;
        }
        self.take_snapshot(vs, out);
        self.records_since_checkpoint = 0;
        out.push(Effect::Persist(DurableEvent::Checkpoint(Checkpoint {
            viewid: self.cur_viewid,
            view: self.cur_view.clone(),
            history: self.history.clone(),
            gstate: self.gstate.clone(),
        })));
    }

    /// Materialize a snapshot of the current state, retain it for
    /// serving, and make it the anchor for future newview deltas.
    pub(crate) fn take_snapshot(&mut self, vs: Viewstamp, out: &mut Vec<Effect>) -> SnapshotRef {
        let snap = Snapshot::materialize(vs, &self.history, &self.gstate);
        let snap_ref = snap.to_ref();
        out.push(Effect::Observe(Observation::SnapshotTaken {
            group: self.group,
            mid: self.mid,
            vs,
            bytes: snap.bytes.len() as u64,
        }));
        self.store_snapshot(snap);
        self.last_snap = Some(snap_ref);
        self.delta_log.clear();
        snap_ref
    }

    /// Insert a snapshot into the bounded retention window (oldest out).
    fn store_snapshot(&mut self, snap: std::sync::Arc<Snapshot>) {
        if self.snaps.iter().any(|s| s.digest == snap.digest) {
            return;
        }
        self.snaps.push(snap);
        while self.snaps.len() > SNAP_RETAIN {
            self.snaps.remove(0);
        }
    }

    /// Try to install the view carried by a newview record.
    ///
    /// Returns `true` if the installation happened (the caller's record
    /// loop then persists, advances past, and acknowledges the newview
    /// record itself). Returns `false` when the base snapshot is missing
    /// and a chunked fetch was started (or is already running) — the
    /// installation is deferred to [`Self::finish_fetch`] and the caller
    /// must not acknowledge anything.
    fn install_from_newview(
        &mut self,
        now: Tick,
        viewid: ViewId,
        first: &EventRecord,
        from: Mid,
        out: &mut Vec<Effect>,
    ) -> bool {
        let EventKind::NewView { view, history, base, delta } = &first.kind else {
            return false;
        };
        // Already fetching exactly this installation? Stay the course.
        if let Some(f) = &self.fetch {
            if f.pending.viewid == viewid && f.asm.digest() == base.digest {
                return false;
            }
        }
        // (a) Do we hold the base snapshot (boundary or previously
        // fetched)?
        let mut resolved = self.snaps.iter().find(|s| s.digest == base.digest).cloned();
        // (b) A caught-up cohort *is* the snapshot: materialize the
        // current state and compare digests. This is the common no-op
        // view change — nothing was lost, so the base the new primary
        // snapshotted equals our own state and we install with zero
        // transfer.
        if resolved.is_none() && self.up_to_date {
            if let Some(vs) = self.history.latest() {
                let own = Snapshot::materialize(vs, &self.history, &self.gstate);
                if own.digest == base.digest {
                    resolved = Some(own);
                }
            }
        }
        match resolved {
            Some(snap) => {
                self.fetch = None;
                let (view, history) = (view.clone(), history.clone());
                let (base, delta) = (*base, std::sync::Arc::clone(delta));
                self.install_resolved(now, viewid, view, history, &snap, base, &delta, out);
                true
            }
            None => {
                // (c) Genuinely behind: fetch the snapshot bytes in
                // bounded, CRC-checked chunks from whoever sent us the
                // record, then install.
                self.fetch = Some(FetchState {
                    asm: vsr_snap::Assembler::new(base.digest, self.cfg.snapshot_chunk_bytes),
                    source: from,
                    started_at: now,
                    attempts: 0,
                    pending: PendingInstall { viewid, record: first.clone() },
                });
                self.request_chunk(0, out);
                false
            }
        }
    }

    /// Install a new view whose base snapshot is in hand: reconstruct
    /// the group state as `base.gstate + delta`, switch views, and
    /// re-anchor the delta log.
    #[allow(clippy::too_many_arguments)]
    fn install_resolved(
        &mut self,
        now: Tick,
        viewid: ViewId,
        view: View,
        history: History,
        snap: &std::sync::Arc<Snapshot>,
        base: SnapshotRef,
        delta: &[EventRecord],
        out: &mut Vec<Effect>,
    ) {
        let mut gstate = snap.gstate.clone();
        for r in delta {
            // Pure replay: reconstructing the primary's state must not
            // re-emit the observations the original application emitted.
            gstate.apply_record(&r.kind);
        }
        self.store_snapshot(std::sync::Arc::clone(snap));
        self.install_new_view(now, viewid, view, history, gstate, out);
        if self.cfg.snapshot_interval > 0 {
            self.last_snap = Some(base);
            self.delta_log = delta.to_vec();
        } else {
            self.last_snap = None;
            self.delta_log.clear();
        }
    }

    /// Serve one chunk of a retained snapshot. Unknown digests and
    /// out-of-range indexes are ignored (stale requests; the fetching
    /// side recovers through its retry timer and view-change timeouts).
    fn on_get_chunk(&self, digest: SnapDigest, index: u32, reply_to: Mid, out: &mut Vec<Effect>) {
        let Some(snap) = self.snaps.iter().find(|s| s.digest == digest) else { return };
        let Some(c) = vsr_snap::chunk(&snap.bytes, index, self.cfg.snapshot_chunk_bytes) else {
            return;
        };
        out.push(Effect::Send {
            to: reply_to,
            msg: Message::Chunk {
                digest,
                index: c.index,
                total: c.total,
                crc: c.crc,
                payload: c.payload.to_vec(),
            },
        });
    }

    /// A snapshot chunk arrived for an in-progress fetch.
    #[allow(clippy::too_many_arguments)] // mirrors Message::Chunk's fields
    fn on_chunk(
        &mut self,
        now: Tick,
        digest: SnapDigest,
        index: u32,
        total: u32,
        crc: u32,
        payload: &[u8],
        out: &mut Vec<Effect>,
    ) {
        use vsr_snap::{ChunkError, Progress};
        let Some(fetch) = self.fetch.as_mut() else { return };
        if fetch.asm.digest() != digest {
            return; // stray chunk from an abandoned transfer
        }
        match fetch.asm.accept(index, total, crc, payload) {
            Ok(Progress::Need(next)) => {
                fetch.attempts = 0;
                self.request_chunk(next, out);
            }
            Ok(Progress::Complete(bytes)) => {
                let fetch = self.fetch.take().expect("invariant: fetch presence checked above");
                // Digest-verified bytes that still fail to decode mean
                // the snapshot itself was malformed at the source;
                // abandon the fetch and let the view-change timeouts
                // drive recovery.
                if let Ok(snap) = Snapshot::decode(&bytes) {
                    self.finish_fetch(now, fetch, snap, out);
                }
            }
            Err(ChunkError::Corrupt) => {
                // CRC mismatch: drop the chunk. The retry timer armed
                // with the request will re-request this index.
                out.push(Effect::Observe(Observation::ChunkCorruptDropped {
                    group: self.group,
                    mid: self.mid,
                }));
            }
            Err(ChunkError::DigestMismatch) => {
                // Every per-chunk CRC passed but the assembled bytes do
                // not hash to the requested digest (an adversarial relay
                // fixing CRCs, or a source serving wrong bytes). The
                // assembler has reset the transfer; start over.
                out.push(Effect::Observe(Observation::ChunkCorruptDropped {
                    group: self.group,
                    mid: self.mid,
                }));
                self.request_chunk(0, out);
            }
            // Duplicate, reordered, or size-violating chunks: drop.
            Err(ChunkError::WrongIndex | ChunkError::BadTotal | ChunkError::BadSize) => {}
        }
    }

    /// Send a `GetChunk` for `index` and arm its retry timer.
    fn request_chunk(&mut self, index: u32, out: &mut Vec<Effect>) {
        let Some(fetch) = self.fetch.as_ref() else { return };
        let digest = fetch.asm.digest();
        let attempt = fetch.attempts;
        out.push(Effect::Send {
            to: fetch.source,
            msg: Message::GetChunk { digest, index, reply_to: self.mid },
        });
        out.push(Effect::SetTimer {
            after: self.retry_delay(self.cfg.chunk_retry_interval, attempt + 1, retry_kind::CHUNK),
            timer: Timer::ChunkRetry { digest, index, attempt },
        });
    }

    /// A chunk request went unanswered. Stale firings (progress was
    /// made, the transfer moved on, or a newer retry is armed) are
    /// recognized by digest/index/attempt mismatch and ignored.
    fn on_chunk_retry(
        &mut self,
        digest: SnapDigest,
        index: u32,
        attempt: u32,
        out: &mut Vec<Effect>,
    ) {
        let Some(fetch) = self.fetch.as_ref() else { return };
        if fetch.asm.digest() != digest
            || fetch.asm.next_index() != index
            || fetch.attempts != attempt
        {
            return;
        }
        if attempt + 1 >= MAX_CHUNK_ATTEMPTS {
            // The source stopped answering. Abandon the transfer; the
            // underling/suspect timeouts stay armed and will drive a
            // fresh view change with a fresh newview to fetch against.
            self.fetch = None;
            return;
        }
        if let Some(f) = self.fetch.as_mut() {
            f.attempts += 1;
        }
        out.push(Effect::Observe(Observation::ChunkRetried { group: self.group, mid: self.mid }));
        self.request_chunk(index, out);
    }

    /// A chunked transfer completed: install the fetched snapshot plus
    /// the deferred newview record, then acknowledge it.
    fn finish_fetch(
        &mut self,
        now: Tick,
        fetch: FetchState,
        snap: std::sync::Arc<Snapshot>,
        out: &mut Vec<Effect>,
    ) {
        let FetchState { pending, started_at, .. } = fetch;
        let PendingInstall { viewid, record } = pending;
        // The world may have moved on while chunks were in flight.
        if viewid != self.max_viewid {
            return;
        }
        if self.status == Status::Active && self.cur_viewid == viewid {
            return; // already installed by other means
        }
        let EventKind::NewView { view, history, base, delta } = &record.kind else {
            debug_assert!(false, "pending install holds a non-newview record");
            return;
        };
        let (view, history) = (view.clone(), history.clone());
        let (base, delta) = (*base, std::sync::Arc::clone(delta));
        let chunks = vsr_snap::chunk_count(snap.bytes.len(), self.cfg.snapshot_chunk_bytes);
        self.install_resolved(now, viewid, view.clone(), history, &snap, base, &delta, out);
        // Persist, advance past, and acknowledge the newview record
        // itself — exactly what the immediate path's record loop does.
        out.push(Effect::Persist(DurableEvent::Record(record.clone())));
        self.history.advance(viewid, record.ts());
        self.checkpoint_tick(out);
        out.push(Effect::Observe(Observation::SnapshotInstalled {
            group: self.group,
            mid: self.mid,
            chunks,
            ticks: now.saturating_sub(started_at),
        }));
        out.push(Effect::Send {
            to: view.primary(),
            msg: Message::BufferAck { viewid, from: self.mid, upto: record.ts() },
        });
    }

    /// Apply an event record's gstate transition. Used identically by the
    /// primary (at `add` time) and the backups (at delivery time), which
    /// is what keeps replica states convergent.
    pub(crate) fn apply_gstate_record(&mut self, record: &EventRecord, out: &mut Vec<Effect>) {
        match &record.kind {
            EventKind::CompletedCall { aid, record: call } => {
                self.gstate.store_call(*aid, call.clone());
            }
            EventKind::Committing { aid, plist } => {
                self.gstate.set_status(
                    *aid,
                    crate::gstate::TxnStatus::Committing { plist: plist.clone() },
                );
            }
            EventKind::Committed { aid } => {
                let accesses = self.gstate.install_commit(*aid);
                out.push(Effect::Observe(Observation::TxnCommitted {
                    group: self.group,
                    mid: self.mid,
                    aid: *aid,
                    accesses,
                }));
            }
            EventKind::Aborted { aid } => {
                self.gstate.discard_abort(*aid);
                out.push(Effect::Observe(Observation::TxnAborted {
                    group: self.group,
                    mid: self.mid,
                    aid: *aid,
                }));
            }
            EventKind::Done { aid } => {
                // Phase two is complete: every participant acknowledged
                // the outcome, so no protocol-relevant query for this
                // transaction can still arrive. Retire its status entry
                // instead of storing `Done` — this is what keeps the
                // status map from growing without bound.
                if self.gstate.retire(*aid) {
                    out.push(Effect::Observe(Observation::StatusesGced {
                        group: self.group,
                        mid: self.mid,
                        n: 1,
                    }));
                }
            }
            EventKind::CallsDropped { aid, dropped } => {
                self.gstate.drop_calls(*aid, dropped);
            }
            EventKind::NewView { .. } => {
                debug_assert!(false, "newview records are installed, not applied");
            }
        }
    }

    // ------------------------------------------------------------------
    // heartbeats and failure detection
    // ------------------------------------------------------------------

    fn on_heartbeat(&mut self, now: Tick, out: &mut Vec<Effect>) {
        for &m in self.configuration.members() {
            if m != self.mid {
                out.push(Effect::Send {
                    to: m,
                    msg: Message::ImAlive { from: self.mid, viewid: self.cur_viewid },
                });
            }
        }
        if self.status == Status::Active {
            let is_silent = |m: Mid| {
                let heard = self.last_heard.get(&m).copied().unwrap_or(0);
                now.saturating_sub(heard) > self.cfg.suspect_timeout
            };
            let suspect = self.cur_view.members().any(|m| m != self.mid && is_silent(m));
            // Section 4.1 optimization: the primary excludes silent
            // backups unilaterally when a majority remains — no
            // invitation round needed.
            if suspect && self.cfg.unilateral_exclusion && self.is_active_primary() {
                let silent: Vec<Mid> =
                    self.cur_view.backups().iter().copied().filter(|&m| is_silent(m)).collect();
                let remaining = self.cur_view.len() - silent.len();
                if remaining >= self.configuration.majority() {
                    self.unilateral_exclude(now, &silent, out);
                    out.push(Effect::SetTimer {
                        after: self.cfg.heartbeat_interval,
                        timer: Timer::Heartbeat,
                    });
                    return;
                }
            }
            if suspect {
                // Churn avoidance (Section 4.1): "the cohorts could be
                // ordered, and a cohort would become a manager only if
                // all higher-priority cohorts appear to be inaccessible."
                // Lower mid = higher priority; defer a few heartbeats to
                // a live higher-priority member, then manage anyway (in
                // case it never noticed the problem).
                let higher_priority_alive =
                    self.cur_view.members().any(|m| m < self.mid && !is_silent(m));
                if higher_priority_alive && self.manager_deferrals < self.cfg.manager_deference {
                    self.manager_deferrals += 1;
                } else {
                    self.manager_deferrals = 0;
                    self.start_view_change(now, out);
                }
            } else {
                self.manager_deferrals = 0;
                if self.is_active_primary() {
                    self.sweep_stale_txns(now, out);
                }
            }
        }
        out.push(Effect::SetTimer { after: self.cfg.heartbeat_interval, timer: Timer::Heartbeat });
    }

    /// Query the coordinator about transactions that have held locks for a
    /// long time without progress — their abort message may have been
    /// lost ("recovery from lost messages is done by using queries",
    /// Section 4.1).
    fn sweep_stale_txns(&mut self, now: Tick, out: &mut Vec<Effect>) {
        let stale: Vec<Aid> = self
            .gstate
            .pending_txns()
            .map(|(aid, _)| aid)
            .filter(|aid| {
                // Our own coordinated transactions are not swept.
                aid.group != self.group
                    && !self.prepared.contains(aid)
                    && now.saturating_sub(self.last_activity.get(aid).copied().unwrap_or(0))
                        > self.cfg.stale_txn_timeout
            })
            .collect();
        for aid in stale {
            self.last_activity.insert(aid, now);
            self.send_outcome_query(aid, out);
        }
    }

    /// Send an outcome query to every member of the transaction's
    /// coordinator group ("a cohort that needs to know whether an abort
    /// occurred sends a query to another cohort that might know",
    /// Section 3.4).
    pub(crate) fn send_outcome_query(&self, aid: Aid, out: &mut Vec<Effect>) {
        let Some(config) = self.peers.get(&aid.coordinator_group()) else {
            return;
        };
        for &m in config.members() {
            if m != self.mid {
                out.push(Effect::Send { to: m, msg: Message::Query { aid, reply_to: self.mid } });
            }
        }
    }

    fn on_probe(&self, group: GroupId, reply_to: Mid, out: &mut Vec<Effect>) {
        if group != self.group || self.status != Status::Active {
            return;
        }
        out.push(Effect::Send {
            to: reply_to,
            msg: Message::ProbeReply {
                group,
                viewid: self.cur_viewid,
                view: self.cur_view.clone(),
            },
        });
    }

    /// The redirect payload a non-primary cohort attaches to rejections
    /// (Section 3.3: "contains information about the current viewid and
    /// primary if the cohort knows them").
    pub(crate) fn known_view(&self) -> Option<(ViewId, View)> {
        (self.status == Status::Active).then(|| (self.cur_viewid, self.cur_view.clone()))
    }

    // ------------------------------------------------------------------
    // read leases
    // ------------------------------------------------------------------

    /// Whether this cohort may serve a leased read right now: an active
    /// primary with leases enabled, no lease wait in progress, and live
    /// grants from a sub-majority of the configuration (so the primary
    /// plus its grantors form a majority — no view can form without a
    /// granting backup).
    pub fn holds_lease(&self) -> bool {
        self.cfg.lease_ticks > 0
            && self.lease_wait.is_none()
            && self.is_active_primary()
            && self.lease.holds(self.configuration.sub_majority())
    }

    /// Number of backups currently extending a live lease grant to this
    /// cohort (0 unless it is a leaseholding primary). For harness
    /// assertions.
    pub fn live_lease_grants(&self) -> usize {
        self.lease.live_grants()
    }

    /// Whether this new primary is still waiting out the previous
    /// primary's maximum outstanding lease. For harness assertions.
    pub fn lease_wait_in_progress(&self) -> bool {
        self.lease_wait.is_some()
    }

    /// Send a lease grant to the current primary if this cohort is in a
    /// position to promise: an active, up-to-date backup of the current
    /// view with no state transfer in progress. A fetching or stale
    /// cohort must not grant — its promise would let the primary serve
    /// reads the backup cannot vouch for (§14 interaction: a rejoining
    /// backup grants only after its chunked fetch completes and it is
    /// active again).
    pub(crate) fn maybe_grant_lease(&mut self, out: &mut Vec<Effect>) {
        if self.cfg.lease_ticks == 0
            || self.status != Status::Active
            || self.cur_view.primary() == self.mid
            || !self.up_to_date
            || self.fetch.is_some()
        {
            return;
        }
        out.push(Effect::Send {
            to: self.cur_view.primary(),
            msg: Message::LeaseGrant { viewid: self.cur_viewid, from: self.mid },
        });
    }

    /// A backup granted (or renewed) this primary's lease.
    fn on_lease_grant(&mut self, viewid: ViewId, from: Mid, out: &mut Vec<Effect>) {
        if self.cfg.lease_ticks == 0
            || !self.is_active_primary()
            || viewid != self.cur_viewid
            || !self.cur_view.contains(from)
            || from == self.mid
        {
            return;
        }
        let (seq, renewal) = self.lease.grant(from);
        if renewal {
            out.push(Effect::Observe(Observation::LeaseRenewed {
                group: self.group,
                mid: self.mid,
            }));
        }
        out.push(Effect::SetTimer {
            after: self.cfg.lease_ticks,
            timer: Timer::LeaseExpiry { backup: from, seq },
        });
    }

    /// The old primary of `viewid` voided every lease it held. Record it
    /// (a later `start_view` consults the map) and, if this cohort is a
    /// new primary currently waiting on exactly that lease, end the wait
    /// immediately.
    fn on_lease_revoke(&mut self, now: Tick, viewid: ViewId, from: Mid, out: &mut Vec<Effect>) {
        if self.cfg.lease_ticks == 0 {
            return;
        }
        let entry = self.lease_revokes.entry(from).or_insert(viewid);
        if viewid > *entry {
            *entry = viewid;
        }
        if let Some(w) = &self.lease_wait {
            if w.prev_primary == from && viewid >= w.prev_viewid && self.cur_viewid == w.viewid {
                self.end_lease_wait(now, out);
            }
        }
    }

    /// Relinquish any leases this cohort holds as it leaves active
    /// primaryship (view change started, invitation accepted, or a new
    /// view installed). If grants were live, broadcast the revocation so
    /// the next primary can skip the skew-adjusted wait. Must run while
    /// `cur_viewid` still names the view the grants were made in.
    pub(crate) fn relinquish_lease(&mut self, out: &mut Vec<Effect>) {
        if self.cfg.lease_ticks == 0 {
            return;
        }
        if self.lease.relinquish() {
            for &m in self.configuration.members() {
                if m != self.mid {
                    out.push(Effect::Send {
                        to: m,
                        msg: Message::LeaseRevoke { viewid: self.cur_viewid, from: self.mid },
                    });
                }
            }
            // Record our own revocation too: if this cohort becomes the
            // next primary it must not wait on itself.
            let entry = self.lease_revokes.entry(self.mid).or_insert(self.cur_viewid);
            if self.cur_viewid > *entry {
                *entry = self.cur_viewid;
            }
        }
        // Any deferred commit-point traffic belongs to a view start that
        // is now obsolete; drop it (the senders retry).
        self.lease_wait = None;
        self.lease_deferred.clear();
    }

    /// Whether an explicit revocation covering the previous view's
    /// primary has been seen — the graceful-handover escape from the
    /// skew-adjusted wait.
    pub(crate) fn lease_revoke_covers(&self, prev_primary: Mid, prev_viewid: ViewId) -> bool {
        self.lease_revokes.get(&prev_primary).is_some_and(|&v| v >= prev_viewid)
    }

    /// The lease wait is over (timer fired or revocation arrived):
    /// replay the deferred commit-point messages in arrival order.
    fn end_lease_wait(&mut self, now: Tick, out: &mut Vec<Effect>) {
        self.lease_wait = None;
        for msg in std::mem::take(&mut self.lease_deferred) {
            match msg {
                Message::Prepare { aid, pset, coordinator } => {
                    self.on_prepare(now, aid, pset, coordinator, out)
                }
                Message::Commit { aid, coordinator } => {
                    self.on_commit(now, aid, Some(coordinator), out)
                }
                Message::QueryReply { aid, outcome } => self.on_query_reply(now, aid, outcome, out),
                // vsr-lint: allow(wildcard_match, reason = "the deferral filter in on_message queues exactly these three commit-point variants; anything else here is a bug the debug_assert catches")
                _ => debug_assert!(false, "only commit-point messages are deferred"),
            }
        }
    }
}
