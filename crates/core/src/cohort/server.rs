//! Server-side transaction processing: remote calls, prepare, commit, and
//! abort handling at the active primary of a server group (Section 3.2,
//! 3.3, Figure 3), plus query answering (Section 3.4).

use super::{Cohort, Effect, ForceReason, Observation, Status, Timer, WaitingCall};
use crate::event::EventKind;
use crate::gstate::{CompletedCall, LockMode, TxnStatus, Value};
use crate::messages::{CallOutcome, CallRefusal, Message, QueryOutcome};
use crate::module::{ModuleError, TxnCtx};
use crate::pset::PSet;
use crate::types::{Aid, CallId, GroupId, Mid, Tick, ViewId, Viewstamp};

/// Build the reply for a (possibly duplicate) call from its stored
/// completed-call record: the result plus the pset pair for this group and
/// any nested-call pairs.
pub(crate) fn reply_from_record(group: GroupId, record: &CompletedCall) -> CallOutcome {
    let mut pset = PSet::new();
    pset.insert(group, record.vs);
    for &(g, vs) in &record.nested {
        pset.insert(g, vs);
    }
    CallOutcome::Ok { result: record.result.0.clone(), pset }
}

impl Cohort {
    // ------------------------------------------------------------------
    // remote calls (Figure 3, "Processing a call")
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_call(
        &mut self,
        now: Tick,
        from: Mid,
        viewid: ViewId,
        call_id: CallId,
        proc: String,
        args: Vec<u8>,
        out: &mut Vec<Effect>,
    ) {
        if self.status != Status::Active || self.cur_view.primary() != self.mid {
            // "Cohorts that are not active primaries reject messages sent
            // to them by other module groups" (Section 3.3).
            out.push(Effect::Send {
                to: from,
                msg: Message::CallReject { call_id, newer: self.known_view() },
            });
            return;
        }
        // Duplicate suppression: the network may duplicate messages and
        // the client re-sends a call after a rejection proves it was not
        // executed in the new view. If a record for this exact call id
        // survived (possibly from an earlier view), re-reply from the
        // record instead of re-executing — this is the "connection
        // information that enables [the delivery system] to not deliver
        // duplicate messages" that Section 3.1 assumes, implemented at the
        // protocol layer.
        if let Some(record) = self.gstate.find_call(call_id) {
            let outcome = reply_from_record(self.group, record);
            out.push(Effect::Send { to: from, msg: Message::CallReply { call_id, outcome } });
            return;
        }
        // A late duplicate of an aborted call-subaction (Section 3.6)
        // must never execute: its replacement generation may already have
        // run.
        if self.gstate.is_dropped_call(call_id) {
            return;
        }
        // "If the viewid in the call message is not equal to the
        // primary's cur-viewid, send back a rejection message containing
        // the new viewid and view" (Figure 3 step 1).
        if viewid != self.cur_viewid {
            out.push(Effect::Send {
                to: from,
                msg: Message::CallReject {
                    call_id,
                    newer: Some((self.cur_viewid, self.cur_view.clone())),
                },
            });
            return;
        }
        // Call-subaction redo (Section 3.6): before executing this
        // generation, durably drop any surviving records of *earlier*
        // generations of the same op — their subactions were aborted by
        // the client. This guarantees exactly one generation's effects
        // can commit, and that the redo does not observe the orphan's
        // tentative writes.
        self.drop_orphan_generations(call_id, out);
        self.execute_or_park(now, WaitingCall { from, viewid, call_id, proc, args }, true, out);
    }

    /// Drop stored records (and parked executions) of other generations
    /// of the same logical call.
    fn drop_orphan_generations(&mut self, call_id: CallId, out: &mut Vec<Effect>) {
        use super::client::call_op_index;
        let aid = call_id.aid;
        let orphans: Vec<CallId> = self
            .gstate
            .pending_calls(aid)
            .iter()
            .map(|r| r.call_id)
            .filter(|&c| c != call_id && call_op_index(c.seq) == call_op_index(call_id.seq))
            .collect();
        // Also discard parked attempts of other generations silently.
        self.waiting_calls.retain(|w| {
            !(w.call_id != call_id
                && w.call_id.aid == aid
                && call_op_index(w.call_id.seq) == call_op_index(call_id.seq))
        });
        if orphans.is_empty() {
            return;
        }
        self.primary_add(EventKind::CallsDropped { aid, dropped: orphans }, out);
        // Rebuild this transaction's locks from its remaining records.
        self.locks.release_all(aid);
        let remaining: Vec<crate::gstate::CompletedCall> = self.gstate.pending_calls(aid).to_vec();
        for record in &remaining {
            for access in &record.accesses {
                match access.mode {
                    LockMode::Read => self.locks.acquire_read(aid, access.oid),
                    LockMode::Write => self.locks.acquire_write(aid, access.oid),
                }
                if let Some(value) = &access.written {
                    self.locks.set_tentative(aid, access.oid, value.clone());
                }
            }
        }
    }

    /// Try to run a call; on a lock conflict, park it (if `may_park`) for
    /// retry when locks are released.
    fn execute_or_park(
        &mut self,
        now: Tick,
        call: WaitingCall,
        may_park: bool,
        out: &mut Vec<Effect>,
    ) {
        let aid = call.call_id.aid;
        let mut ctx = TxnCtx::new(&self.gstate, &self.locks, aid);
        match self.module.execute(&call.proc, &call.args, &mut ctx) {
            Ok(result) => {
                let accesses = ctx.into_accesses();
                // Acquire the staged locks for real and create the
                // tentative versions.
                for access in &accesses {
                    match access.mode {
                        LockMode::Read => self.locks.acquire_read(aid, access.oid),
                        LockMode::Write => self.locks.acquire_write(aid, access.oid),
                    }
                    if let Some(value) = &access.written {
                        self.locks.set_tentative(aid, access.oid, value.clone());
                    }
                }
                // "When the call finishes, add a <"completed-call",
                // object-list, aid> record to the buffer" (Figure 3).
                let record = CompletedCall {
                    vs: Viewstamp::default(), // assigned below
                    call_id: call.call_id,
                    accesses,
                    result: Value(result.0.clone()),
                    nested: Vec::new(),
                };
                let mut record_for_event = record;
                // Assign the viewstamp by adding to the buffer; the add
                // advances the timestamp generator atomically.
                let vs_placeholder = self
                    .buffer
                    .as_ref()
                    .expect("invariant: an active primary has a buffer")
                    .latest_ts()
                    .next();
                record_for_event.vs = Viewstamp::new(self.cur_viewid, vs_placeholder);
                let vs = self
                    .primary_add(EventKind::CompletedCall { aid, record: record_for_event }, out);
                debug_assert_eq!(vs.ts, vs_placeholder);
                self.last_activity.insert(aid, now);
                if self.cfg.eager_force_calls {
                    // Section 6 tradeoff: "if completed call records were
                    // forced to the backups before the call returned,
                    // there would be no aborts due to view changes, but
                    // calls would be processed more slowly."
                    let reason = ForceReason::CallReply { call_id: call.call_id, to: call.from };
                    for fired in self.primary_force(vs, reason, out) {
                        self.fire_force_reason(now, fired, out);
                    }
                } else {
                    let mut pset = PSet::new();
                    pset.insert(self.group, vs);
                    out.push(Effect::Send {
                        to: call.from,
                        msg: Message::CallReply {
                            call_id: call.call_id,
                            outcome: CallOutcome::Ok { result: result.0, pset },
                        },
                    });
                }
            }
            Err(ModuleError::Conflict(_)) => {
                if may_park {
                    out.push(Effect::SetTimer {
                        after: self.cfg.lock_wait_timeout,
                        timer: Timer::LockWait { call_id: call.call_id },
                    });
                    self.waiting_calls.push(call);
                } else {
                    self.waiting_calls.push(call);
                }
            }
            Err(err @ (ModuleError::UnknownProcedure(_) | ModuleError::App(_))) => {
                out.push(Effect::Send {
                    to: call.from,
                    msg: Message::CallReply {
                        call_id: call.call_id,
                        outcome: CallOutcome::Refused(CallRefusal::Application(err.to_string())),
                    },
                });
            }
        }
    }

    /// Retry calls parked on lock conflicts; called after any lock
    /// release.
    pub(crate) fn retry_waiting_calls(&mut self, now: Tick, out: &mut Vec<Effect>) {
        if !self.is_active_primary() {
            return;
        }
        let parked = std::mem::take(&mut self.waiting_calls);
        for call in parked {
            if call.viewid != self.cur_viewid {
                out.push(Effect::Send {
                    to: call.from,
                    msg: Message::CallReject {
                        call_id: call.call_id,
                        newer: Some((self.cur_viewid, self.cur_view.clone())),
                    },
                });
                continue;
            }
            // A retried call keeps its original lock-wait timer; if it
            // conflicts again it is re-parked without a new timer.
            self.execute_or_park(now, call, false, out);
        }
    }

    pub(crate) fn on_lock_wait_timeout(&mut self, call_id: CallId, out: &mut Vec<Effect>) {
        let Some(pos) = self.waiting_calls.iter().position(|c| c.call_id == call_id) else {
            return;
        };
        let call = self.waiting_calls.remove(pos);
        out.push(Effect::Send {
            to: call.from,
            msg: Message::CallReply {
                call_id,
                outcome: CallOutcome::Refused(CallRefusal::LockTimeout),
            },
        });
    }

    // ------------------------------------------------------------------
    // prepare (Figure 3, "Processing a prepare message")
    // ------------------------------------------------------------------

    pub(crate) fn on_prepare(
        &mut self,
        now: Tick,
        aid: Aid,
        pset: PSet,
        coordinator: Mid,
        out: &mut Vec<Effect>,
    ) {
        if self.status != Status::Active || self.cur_view.primary() != self.mid {
            out.push(Effect::Send {
                to: coordinator,
                msg: Message::Redirect { group: self.group, newer: self.known_view() },
            });
            return;
        }
        match self.gstate.status(aid) {
            Some(TxnStatus::Aborted) => {
                out.push(Effect::Send {
                    to: coordinator,
                    msg: Message::PrepareRefuse { aid, group: self.group },
                });
                return;
            }
            Some(_) => {
                // Already committed-family (duplicate prepare after a
                // decision): re-vote yes.
                out.push(Effect::Send {
                    to: coordinator,
                    msg: Message::PrepareOk { aid, group: self.group, read_only: false },
                });
                return;
            }
            None => {}
        }
        // "If compatible(pset, history, mygroupid), perform a
        // force_to(vs_max(pset, mygroupid)), release read locks held by
        // the transaction, and then reply prepared."
        if !self.history.compatible(&pset, self.group) {
            out.push(Effect::Send {
                to: coordinator,
                msg: Message::PrepareRefuse { aid, group: self.group },
            });
            self.abort_participant(now, aid, out);
            return;
        }
        let read_only = self
            .gstate
            .pending_calls(aid)
            .iter()
            .all(|r| r.accesses.iter().all(|a| a.mode == LockMode::Read));
        let Some(vs_max) = pset.vs_max(self.group) else {
            // The pset names us as a participant but contains no entry
            // for our group — a coordinator bug; refuse defensively.
            out.push(Effect::Send {
                to: coordinator,
                msg: Message::PrepareRefuse { aid, group: self.group },
            });
            return;
        };
        self.last_activity.insert(aid, now);
        let reason = ForceReason::PrepareVote { aid, coordinator, read_only };
        let fired = self.primary_force(vs_max, reason, out);
        let waited = fired.is_empty();
        out.push(Effect::Observe(Observation::PrepareProcessed { group: self.group, aid, waited }));
        for reason in fired {
            self.fire_force_reason(now, reason, out);
        }
    }

    /// Continuation once the prepare's force has completed: release read
    /// locks and vote yes; a read-only participant commits immediately
    /// ("If the transaction is read-only, add a <"committed", aid> record
    /// to the buffer", Figure 3).
    pub(crate) fn send_prepare_vote(
        &mut self,
        now: Tick,
        aid: Aid,
        coordinator: Mid,
        read_only: bool,
        out: &mut Vec<Effect>,
    ) {
        if !self.is_active_primary() {
            return;
        }
        self.locks.release_reads(aid);
        out.push(Effect::Send {
            to: coordinator,
            msg: Message::PrepareOk { aid, group: self.group, read_only },
        });
        if read_only {
            self.locks.release_all(aid);
            self.primary_add(EventKind::Committed { aid }, out);
            self.retry_waiting_calls(now, out);
        } else {
            self.prepared.insert(aid);
            out.push(Effect::SetTimer {
                after: self.cfg.query_interval,
                timer: Timer::QueryTick { aid },
            });
        }
    }

    // ------------------------------------------------------------------
    // commit / abort (Figure 3)
    // ------------------------------------------------------------------

    /// Handle a commit message (or a query reply reporting the commit).
    /// `ack_to` is the coordinator primary to send the done message to.
    pub(crate) fn on_commit(
        &mut self,
        now: Tick,
        aid: Aid,
        ack_to: Option<Mid>,
        out: &mut Vec<Effect>,
    ) {
        if self.status != Status::Active || self.cur_view.primary() != self.mid {
            if let Some(to) = ack_to {
                out.push(Effect::Send {
                    to,
                    msg: Message::Redirect { group: self.group, newer: self.known_view() },
                });
            }
            return;
        }
        self.prepared.remove(&aid);
        if let Some(status) = self.gstate.status(aid) {
            if status.is_committed() {
                // Duplicate commit: just re-acknowledge.
                if let Some(to) = ack_to {
                    out.push(Effect::Send {
                        to,
                        msg: Message::CommitDone { aid, group: self.group },
                    });
                }
                return;
            }
            // Aborted locally but the coordinator decided commit: this
            // would be a protocol violation — the coordinator only
            // commits after our yes vote, and we only abort locally after
            // a refusal or an abort message.
            debug_assert!(false, "commit received for locally aborted transaction {aid}");
            return;
        }
        // "Release locks and install versions held by the transaction.
        // Add a <"committed", aid> record to the buffer, do a
        // force-to(new-vs), and send a done message to the coordinator."
        self.locks.release_all(aid);
        let vs = self.primary_add(EventKind::Committed { aid }, out);
        if let Some(coordinator) = ack_to {
            let reason = ForceReason::CommitAck { aid, coordinator };
            for fired in self.primary_force(vs, reason, out) {
                self.fire_force_reason(now, fired, out);
            }
        }
        self.last_activity.remove(&aid);
        self.retry_waiting_calls(now, out);
    }

    pub(crate) fn on_abort_msg(&mut self, now: Tick, aid: Aid, out: &mut Vec<Effect>) {
        if !self.is_active_primary() {
            return;
        }
        self.abort_participant(now, aid, out);
    }

    /// Abort a transaction at this participant: "discard locks and
    /// versions held by the aborted transaction and add an <"aborted",
    /// aid> record to the buffer" (Figure 3).
    pub(crate) fn abort_participant(&mut self, now: Tick, aid: Aid, out: &mut Vec<Effect>) {
        self.prepared.remove(&aid);
        if self.gstate.status(aid).is_some_and(|s| !matches!(s, TxnStatus::Aborted)) {
            // Already decided; never roll back a commit.
            return;
        }
        if !self.locks.holds_any(aid) && self.gstate.pending_calls(aid).is_empty() {
            return; // nothing to do, avoid noise records
        }
        self.locks.release_all(aid);
        self.primary_add(EventKind::Aborted { aid }, out);
        self.last_activity.remove(&aid);
        self.retry_waiting_calls(now, out);
    }

    // ------------------------------------------------------------------
    // queries (Section 3.4)
    // ------------------------------------------------------------------

    pub(crate) fn on_query(&mut self, aid: Aid, reply_to: Mid, out: &mut Vec<Effect>) {
        let outcome = self.answer_query(aid);
        if outcome != QueryOutcome::Unknown {
            out.push(Effect::Send { to: reply_to, msg: Message::QueryReply { aid, outcome } });
        }
        // "In answering a query about a transaction that appears to
        // still be active, it would check with the client" (Section 3.5).
        if outcome == QueryOutcome::Active && self.delegated.contains_key(&aid) {
            self.ping_delegated_client(aid, out);
        }
    }

    /// What this cohort knows about the transaction's outcome. "We allow
    /// any cohort to respond to a query whenever it knows the answer."
    pub(crate) fn answer_query(&self, aid: Aid) -> QueryOutcome {
        // An active coordinator entry means the transaction is running —
        // checked first because it also covers transactions created in an
        // older view by a primary that survived the view change.
        if self.coord.contains_key(&aid) || self.delegated.contains_key(&aid) {
            return QueryOutcome::Active;
        }
        if let Some(status) = self.gstate.status(aid) {
            return if status.is_committed() {
                QueryOutcome::Committed
            } else {
                QueryOutcome::Aborted
            };
        }
        // Automatic abort: "a view change at the coordinator that leads
        // to a new primary will cause any of the group's transactions to
        // abort automatically" (Section 3.1). Only the active primary of
        // the coordinator group may assert this, and only for
        // transactions from views older than its current one.
        if self.is_active_primary()
            && self.up_to_date
            && aid.coordinator_group() == self.group
            && aid.view < self.cur_viewid
        {
            return QueryOutcome::Aborted;
        }
        QueryOutcome::Unknown
    }

    pub(crate) fn on_query_tick(&mut self, aid: Aid, out: &mut Vec<Effect>) {
        if !self.is_active_primary() || !self.prepared.contains(&aid) {
            return;
        }
        self.send_outcome_query(aid, out);
        out.push(Effect::SetTimer {
            after: self.cfg.query_interval,
            timer: Timer::QueryTick { aid },
        });
    }

    pub(crate) fn on_query_reply(
        &mut self,
        now: Tick,
        aid: Aid,
        outcome: QueryOutcome,
        out: &mut Vec<Effect>,
    ) {
        if !self.is_active_primary() {
            return;
        }
        match outcome {
            QueryOutcome::Committed => {
                // Learn the commit through the query path; acknowledge to
                // the coordinator group's cached primary so it can finish
                // phase two.
                let ack_to =
                    self.cache.get(&aid.coordinator_group()).map(|(_, view)| view.primary());
                if self.gstate.status(aid).is_none() {
                    self.on_commit(now, aid, ack_to, out);
                }
            }
            QueryOutcome::Aborted => self.abort_participant(now, aid, out),
            QueryOutcome::Active | QueryOutcome::Unknown => {}
        }
    }
}
