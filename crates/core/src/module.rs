//! The application module interface (Section 1's model of computation).
//!
//! "Each module contains within it both data objects and code that
//! manipulates the objects … each module provides procedures that can be
//! used to access its objects; modules communicate by means of remote
//! procedure calls."
//!
//! A [`Module`] implementation is the *deterministic* procedure code of a
//! replicated module; the replication layer executes it only at the
//! primary and propagates its effects through completed-call event
//! records. Procedures access objects through a [`TxnCtx`], which enforces
//! strict two-phase locking and stages effects so that a lock conflict
//! rolls back the partial call cleanly (the cohort then parks the call and
//! retries when locks are released).

use crate::gstate::{GroupState, LockMode, ObjectAccess, Value};
use crate::locks::LockTable;
use crate::types::{Aid, ObjectId};
use std::collections::BTreeMap;
use std::fmt;

/// Why a procedure invocation could not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModuleError {
    /// A lock conflict: the call must wait for another transaction. The
    /// cohort discards the call's staged effects and parks it.
    Conflict(ObjectId),
    /// The module does not export the named procedure.
    UnknownProcedure(String),
    /// An application-level failure (bad arguments, insufficient funds,
    /// …). The call is refused and the client aborts the transaction.
    App(String),
}

impl fmt::Display for ModuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModuleError::Conflict(oid) => write!(f, "lock conflict on {oid}"),
            ModuleError::UnknownProcedure(p) => write!(f, "unknown procedure {p:?}"),
            ModuleError::App(msg) => write!(f, "application error: {msg}"),
        }
    }
}

impl std::error::Error for ModuleError {}

/// The execution context handed to a procedure: reads and writes atomic
/// objects under strict two-phase locking, staging all effects until the
/// call completes.
///
/// Reads observe, in priority order: this call's own staged writes, the
/// transaction's earlier tentative versions, then the committed base
/// version. A read of the base version records the version number
/// observed, for the one-copy-serializability checker.
#[derive(Debug)]
pub struct TxnCtx<'a> {
    gstate: &'a GroupState,
    locks: &'a LockTable,
    aid: Aid,
    staged_writes: BTreeMap<ObjectId, Value>,
    staged_reads: BTreeMap<ObjectId, Option<u64>>,
}

impl<'a> TxnCtx<'a> {
    /// Create a context for one procedure invocation on behalf of `aid`.
    pub fn new(gstate: &'a GroupState, locks: &'a LockTable, aid: Aid) -> Self {
        TxnCtx { gstate, locks, aid, staged_writes: BTreeMap::new(), staged_reads: BTreeMap::new() }
    }

    /// The transaction on whose behalf this call runs.
    pub fn aid(&self) -> Aid {
        self.aid
    }

    /// Read object `oid`, acquiring (staging) a read lock.
    ///
    /// Returns `None` for an object that does not exist yet.
    ///
    /// # Errors
    ///
    /// Returns [`ModuleError::Conflict`] if another transaction holds a
    /// conflicting (write) lock.
    pub fn read(&mut self, oid: ObjectId) -> Result<Option<Value>, ModuleError> {
        if let Some(v) = self.staged_writes.get(&oid) {
            return Ok(Some(v.clone()));
        }
        if let Some(v) = self.locks.tentative(self.aid, oid) {
            // Reading the transaction's own earlier tentative version:
            // the lock is already held, no new read lock needed, and the
            // read does not observe a base version.
            self.staged_reads.entry(oid).or_insert(None);
            return Ok(Some(v.clone()));
        }
        if !self.locks.can_read(self.aid, oid) {
            return Err(ModuleError::Conflict(oid));
        }
        let (version, value) = match self.gstate.object(oid) {
            Some(obj) => (obj.version, Some(obj.value.clone())),
            None => (0, None),
        };
        self.staged_reads.entry(oid).or_insert(Some(version));
        Ok(value)
    }

    /// Write object `oid`, acquiring (staging) a write lock and creating a
    /// tentative version.
    ///
    /// # Errors
    ///
    /// Returns [`ModuleError::Conflict`] if another transaction holds any
    /// lock on the object.
    pub fn write(&mut self, oid: ObjectId, value: Value) -> Result<(), ModuleError> {
        if !self.locks.can_write(self.aid, oid) {
            return Err(ModuleError::Conflict(oid));
        }
        self.staged_writes.insert(oid, value);
        Ok(())
    }

    /// Consume the context, producing the access list for the
    /// completed-call event record.
    ///
    /// An object both read and written appears once with
    /// [`LockMode::Write`] (the stronger lock), retaining the observed
    /// read version.
    pub fn into_accesses(self) -> Vec<ObjectAccess> {
        let mut accesses: BTreeMap<ObjectId, ObjectAccess> = BTreeMap::new();
        for (oid, read_version) in self.staged_reads {
            accesses.insert(
                oid,
                ObjectAccess { oid, mode: LockMode::Read, written: None, read_version },
            );
        }
        for (oid, value) in self.staged_writes {
            let entry = accesses.entry(oid).or_insert(ObjectAccess {
                oid,
                mode: LockMode::Write,
                written: None,
                read_version: None,
            });
            entry.mode = LockMode::Write;
            entry.written = Some(value);
        }
        accesses.into_values().collect()
    }
}

/// A replicated application module: deterministic procedures over atomic
/// objects.
///
/// Implementations must be deterministic functions of `(proc, args,
/// observed object values)` — the primary executes them once and backups
/// replay only their recorded *effects*, so nondeterminism would diverge
/// on re-reply after duplicate calls.
///
/// # Examples
///
/// ```
/// use vsr_core::gstate::Value;
/// use vsr_core::module::{Module, ModuleError, TxnCtx};
/// use vsr_core::types::ObjectId;
///
/// /// A module exporting a single `put` procedure.
/// struct PutOnly;
///
/// impl Module for PutOnly {
///     fn execute(
///         &self,
///         proc: &str,
///         args: &[u8],
///         ctx: &mut TxnCtx<'_>,
///     ) -> Result<Value, ModuleError> {
///         match proc {
///             "put" => {
///                 ctx.write(ObjectId(0), Value::from(args))?;
///                 Ok(Value::empty())
///             }
///             other => Err(ModuleError::UnknownProcedure(other.to_string())),
///         }
///     }
/// }
/// ```
pub trait Module: Send {
    /// Execute procedure `proc` with `args`, reading and writing objects
    /// through `ctx`.
    ///
    /// # Errors
    ///
    /// * [`ModuleError::Conflict`] — propagate lock conflicts from `ctx`
    ///   (usually via `?`); the cohort parks and retries the call.
    /// * [`ModuleError::UnknownProcedure`] / [`ModuleError::App`] — the
    ///   call is refused and the client aborts the transaction.
    fn execute(&self, proc: &str, args: &[u8], ctx: &mut TxnCtx<'_>) -> Result<Value, ModuleError>;

    /// The initial objects of a freshly created group (default: none).
    fn initial_objects(&self) -> Vec<(ObjectId, Value)> {
        Vec::new()
    }
}

/// A module with no procedures, for groups that act only as transaction
/// coordinators (pure clients, Section 3.5's coordinator-server).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullModule;

impl Module for NullModule {
    fn execute(
        &self,
        proc: &str,
        _args: &[u8],
        _ctx: &mut TxnCtx<'_>,
    ) -> Result<Value, ModuleError> {
        Err(ModuleError::UnknownProcedure(proc.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{GroupId, Mid, ViewId};

    fn aid(seq: u64) -> Aid {
        Aid { group: GroupId(1), view: ViewId::initial(Mid(0)), seq }
    }

    const O1: ObjectId = ObjectId(1);

    #[test]
    fn read_sees_base_and_records_version() {
        let g = GroupState::with_objects([(O1, Value::from(&b"base"[..]))]);
        let locks = LockTable::new();
        let mut ctx = TxnCtx::new(&g, &locks, aid(0));
        assert_eq!(ctx.read(O1).unwrap(), Some(Value::from(&b"base"[..])));
        let accesses = ctx.into_accesses();
        assert_eq!(accesses.len(), 1);
        assert_eq!(accesses[0].mode, LockMode::Read);
        assert_eq!(accesses[0].read_version, Some(0));
    }

    #[test]
    fn read_own_staged_write() {
        let g = GroupState::new();
        let locks = LockTable::new();
        let mut ctx = TxnCtx::new(&g, &locks, aid(0));
        ctx.write(O1, Value::from(&b"mine"[..])).unwrap();
        assert_eq!(ctx.read(O1).unwrap(), Some(Value::from(&b"mine"[..])));
        let accesses = ctx.into_accesses();
        assert_eq!(accesses.len(), 1);
        assert_eq!(accesses[0].mode, LockMode::Write);
        assert_eq!(accesses[0].written, Some(Value::from(&b"mine"[..])));
    }

    #[test]
    fn read_own_tentative_from_earlier_call() {
        let g = GroupState::new();
        let mut locks = LockTable::new();
        locks.acquire_write(aid(0), O1);
        locks.set_tentative(aid(0), O1, Value::from(&b"earlier"[..]));
        let mut ctx = TxnCtx::new(&g, &locks, aid(0));
        assert_eq!(ctx.read(O1).unwrap(), Some(Value::from(&b"earlier"[..])));
        let accesses = ctx.into_accesses();
        // Own-tentative read: no base version observed.
        assert_eq!(accesses[0].read_version, None);
    }

    #[test]
    fn conflict_on_foreign_write_lock() {
        let g = GroupState::new();
        let mut locks = LockTable::new();
        locks.acquire_write(aid(1), O1);
        let mut ctx = TxnCtx::new(&g, &locks, aid(0));
        assert_eq!(ctx.read(O1), Err(ModuleError::Conflict(O1)));
        assert_eq!(ctx.write(O1, Value::empty()), Err(ModuleError::Conflict(O1)));
    }

    #[test]
    fn conflict_on_foreign_read_lock_for_write() {
        let g = GroupState::new();
        let mut locks = LockTable::new();
        locks.acquire_read(aid(1), O1);
        let mut ctx = TxnCtx::new(&g, &locks, aid(0));
        assert!(ctx.read(O1).is_ok(), "shared read allowed");
        assert_eq!(ctx.write(O1, Value::empty()), Err(ModuleError::Conflict(O1)));
    }

    #[test]
    fn read_then_write_merges_to_write_access() {
        let g = GroupState::with_objects([(O1, Value::from(&b"base"[..]))]);
        let locks = LockTable::new();
        let mut ctx = TxnCtx::new(&g, &locks, aid(0));
        ctx.read(O1).unwrap();
        ctx.write(O1, Value::from(&b"new"[..])).unwrap();
        let accesses = ctx.into_accesses();
        assert_eq!(accesses.len(), 1);
        assert_eq!(accesses[0].mode, LockMode::Write);
        assert_eq!(accesses[0].read_version, Some(0), "read version retained");
        assert_eq!(accesses[0].written, Some(Value::from(&b"new"[..])));
    }

    #[test]
    fn missing_object_reads_none() {
        let g = GroupState::new();
        let locks = LockTable::new();
        let mut ctx = TxnCtx::new(&g, &locks, aid(0));
        assert_eq!(ctx.read(O1).unwrap(), None);
        let accesses = ctx.into_accesses();
        assert_eq!(accesses[0].read_version, Some(0));
    }

    #[test]
    fn null_module_rejects_everything() {
        let g = GroupState::new();
        let locks = LockTable::new();
        let mut ctx = TxnCtx::new(&g, &locks, aid(0));
        assert!(matches!(
            NullModule.execute("anything", &[], &mut ctx),
            Err(ModuleError::UnknownProcedure(_))
        ));
        assert!(NullModule.initial_objects().is_empty());
    }
}
