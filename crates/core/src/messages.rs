//! The wire protocol: every message exchanged between cohorts.
//!
//! Messages fall into four families, mirroring the paper's structure:
//! remote calls and two-phase commit (Section 3, Figures 2 and 3),
//! queries (Section 3.4), buffer replication between a primary and its
//! backups (Section 2), and the view change protocol (Section 4,
//! Figure 5).

use crate::event::EventRecord;
use crate::pset::PSet;
use crate::snapshot::SnapDigest;
use crate::types::{Aid, CallId, GroupId, Mid, Timestamp, ViewId, Viewstamp};
use crate::view::View;
use serde::{Deserialize, Serialize};

/// The answer a cohort gives to an outcome query (Section 3.4): "we allow
/// any cohort to respond to a query whenever it knows the answer."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryOutcome {
    /// The transaction's commit decision was reached.
    Committed,
    /// The transaction aborted (including "aborted automatically" by a
    /// view change at the coordinator that led to a new primary).
    Aborted,
    /// The transaction is still running at its coordinator.
    Active,
    /// The answering cohort does not know; ask again or ask elsewhere.
    Unknown,
}

/// Why a call was refused without being executed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CallRefusal {
    /// The call could not acquire its locks within the lock-wait timeout.
    LockTimeout,
    /// The module rejected the call (unknown procedure or application
    /// error).
    Application(String),
}

/// The result of a remote call carried in the reply message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CallOutcome {
    /// The call completed; `result` is the procedure's return value and
    /// `pset` records "`<groupid, viewstamp>` pairs for this call and any
    /// further remote calls made in processing it" (Section 3.1).
    Ok {
        /// Procedure return value.
        result: Vec<u8>,
        /// pset entries contributed by this call.
        pset: PSet,
    },
    /// The call was refused; the client aborts the transaction.
    Refused(CallRefusal),
}

/// A protocol message.
///
/// Every message carries enough identity (viewids, aids, call ids,
/// attempt counters where needed) to be safely ignored when stale; the
/// network may lose, delay, duplicate, and reorder arbitrarily.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Message {
    // ------------------------------------------------------ remote calls
    /// Client primary → server primary: run a procedure (Figure 2 step 1).
    Call {
        /// The viewid of the server group obtained from the client's
        /// cache; the server rejects the call if it differs from its
        /// current viewid (Figure 3 step 1).
        viewid: ViewId,
        /// Unique call id "to prevent duplicate processing of a single
        /// call".
        call_id: CallId,
        /// Procedure name.
        proc: String,
        /// Procedure arguments (opaque to the protocol).
        args: Vec<u8>,
    },
    /// Server primary → client primary: the call's reply.
    CallReply {
        /// Echoes the call id for matching.
        call_id: CallId,
        /// Result or refusal.
        outcome: CallOutcome,
    },
    /// Server cohort → client primary: the call was rejected before
    /// execution because the viewid did not match (or the receiver is not
    /// an active primary). "The response to the rejected message contains
    /// information about the current viewid and primary if the cohort
    /// knows them" (Section 3.3).
    CallReject {
        /// Echoes the call id.
        call_id: CallId,
        /// The rejecting cohort's knowledge of the current view, if any.
        newer: Option<(ViewId, View)>,
    },

    // -------------------------------------------------- two-phase commit
    /// Coordinator → participant primary: phase one (Figure 2 step 1 of
    /// two-phase commit). Carries the pset "to allow each participant to
    /// determine whether it knows all events of the preparing
    /// transaction".
    Prepare {
        /// The preparing transaction.
        aid: Aid,
        /// The transaction's full pset.
        pset: PSet,
        /// The coordinator primary to reply to.
        coordinator: Mid,
    },
    /// Participant → coordinator: vote yes. `read_only` indicates the
    /// participant held only read locks and need not take part in phase
    /// two.
    PrepareOk {
        /// The transaction.
        aid: Aid,
        /// The voting participant group.
        group: GroupId,
        /// Whether the transaction was read-only at this participant.
        read_only: bool,
    },
    /// Participant → coordinator: vote no (the pset was incompatible with
    /// the participant's history, i.e. a call event was lost in a view
    /// change).
    PrepareRefuse {
        /// The transaction.
        aid: Aid,
        /// The refusing participant group.
        group: GroupId,
    },
    /// Coordinator → participant: phase two commit.
    Commit {
        /// The committed transaction.
        aid: Aid,
        /// The coordinator primary to acknowledge.
        coordinator: Mid,
    },
    /// Participant → coordinator: phase two acknowledgement ("send a done
    /// message to the coordinator", Figure 3).
    CommitDone {
        /// The transaction.
        aid: Aid,
        /// The acknowledging participant group.
        group: GroupId,
    },
    /// Coordinator → participant: abort (best effort; "delivery of abort
    /// messages is not guaranteed in any case", Section 4.1).
    Abort {
        /// The aborted transaction.
        aid: Aid,
    },
    /// A cohort that is not an active primary rejects a transaction
    /// message, redirecting the sender (Section 3.3).
    Redirect {
        /// The group whose primary was sought.
        group: GroupId,
        /// The rejecting cohort's knowledge of the current view, if any.
        newer: Option<(ViewId, View)>,
    },

    // ------------------------------------------------------------ queries
    /// Ask about a transaction's outcome (Section 3.4).
    Query {
        /// The transaction in question.
        aid: Aid,
        /// Where to send the answer.
        reply_to: Mid,
    },
    /// Answer to a [`Message::Query`].
    QueryReply {
        /// The transaction.
        aid: Aid,
        /// What the answering cohort knows.
        outcome: QueryOutcome,
    },

    // --------------------------------- coordinator-server (Section 3.5)
    /// Unreplicated client → coordinator-server primary: start a
    /// transaction on the client's behalf ("The client communicates with
    /// such a server when it starts a transaction").
    ClientBegin {
        /// Client-chosen request identifier (echoed in the ack).
        req: u64,
        /// The client to answer.
        reply_to: Mid,
    },
    /// Coordinator-server → client: the transaction id assigned; "its
    /// groupid is part of the transaction's aid, so that participants
    /// know who it is."
    ClientBeginAck {
        /// Echoed request id.
        req: u64,
        /// The assigned transaction id.
        aid: Aid,
    },
    /// Client → coordinator-server: commit the transaction; the
    /// coordinator-server "carries out two-phase commit as described
    /// above on the client's behalf" using the client's collected pset.
    ClientCommit {
        /// The transaction.
        aid: Aid,
        /// The client's pset (participants derive from it).
        pset: PSet,
        /// The client to answer.
        reply_to: Mid,
    },
    /// Client → coordinator-server: abort the transaction.
    ClientAbort {
        /// The transaction.
        aid: Aid,
    },
    /// Coordinator-server → client: the final outcome of a delegated
    /// transaction.
    ClientOutcome {
        /// The transaction.
        aid: Aid,
        /// Whether the transaction committed.
        committed: bool,
    },
    /// Coordinator-server → client: liveness check while answering a
    /// query about a still-active transaction ("it would check with the
    /// client, but if no reply is forthcoming, it can abort the
    /// transaction unilaterally").
    ClientPing {
        /// The transaction in question.
        aid: Aid,
        /// Where to send the pong.
        reply_to: Mid,
    },
    /// Client → coordinator-server: the client is alive and the
    /// transaction is still wanted.
    ClientPong {
        /// The transaction.
        aid: Aid,
    },

    // ------------------------------------------------------------ probing
    /// Ask a cohort for its group's current view (the client-side cache
    /// initialization of Section 3.1: "communicates with members of the
    /// configuration to determine the current primary and viewid").
    Probe {
        /// The group being probed.
        group: GroupId,
        /// Where to send the answer.
        reply_to: Mid,
    },
    /// Answer to a [`Message::Probe`] from a cohort in an active view.
    ProbeReply {
        /// The group.
        group: GroupId,
        /// Its current viewid.
        viewid: ViewId,
        /// Its current view.
        view: View,
    },

    // ------------------------------------------- buffer replication (§2)
    /// Primary → backup: a timestamp-ordered slice of the communication
    /// buffer, starting right after what the backup last acknowledged.
    BufferSend {
        /// The view these records belong to.
        viewid: ViewId,
        /// The sending primary.
        from: Mid,
        /// Event records in timestamp order. Shared (`Arc`) so the
        /// primary can fan the same retransmission window out to every
        /// backup at a given ack watermark without re-cloning it.
        records: std::sync::Arc<[EventRecord]>,
    },
    /// Backup → primary: cumulative acknowledgement of buffer records.
    BufferAck {
        /// The view being acknowledged.
        viewid: ViewId,
        /// The acknowledging backup.
        from: Mid,
        /// All records with timestamps up to this are known.
        upto: Timestamp,
    },

    // ------------------------------------------------- failure detection
    /// Periodic liveness beacon ("Cohorts send periodic 'I'm Alive'
    /// messages to other cohorts in the configuration", Section 4).
    ImAlive {
        /// The sender.
        from: Mid,
        /// The sender's current viewid (lets peers notice divergence).
        viewid: ViewId,
    },

    // ------------------------------------------------ view change (Fig 5)
    /// Manager → all cohorts: invitation to join a new view.
    Invite {
        /// The proposed (new, unique) viewid.
        viewid: ViewId,
        /// The inviting manager.
        manager: Mid,
    },
    /// Cohort → manager: normal acceptance — the cohort is up to date and
    /// reports "its current viewstamp and an indication of whether it is
    /// the primary in the current view" (Section 4).
    AcceptNormal {
        /// The invitation being accepted.
        viewid: ViewId,
        /// The accepting cohort.
        from: Mid,
        /// The cohort's latest viewstamp.
        latest: Viewstamp,
        /// Whether the cohort is the primary of the view `latest.id`.
        was_primary: bool,
    },
    /// Cohort → manager: crashed acceptance — the cohort recovered from a
    /// crash and "has forgotten its gstate"; "this response contains only
    /// its viewid" (from stable storage).
    AcceptCrashed {
        /// The invitation being accepted.
        viewid: ViewId,
        /// The accepting cohort.
        from: Mid,
        /// The viewid last written to the cohort's stable storage.
        stable_viewid: ViewId,
    },
    /// Manager → chosen primary: "sends an 'init view' message to the new
    /// primary" (Section 4). The recipient starts the view if the viewid
    /// equals its `max_viewid`.
    InitView {
        /// The new view's id.
        viewid: ViewId,
        /// The new view's membership.
        view: View,
    },

    // ----------------------------------- snapshot state transfer (§4 +)
    /// Fetching cohort → snapshot holder: request one chunk of the
    /// snapshot named by `digest`. Sent when a newview record references
    /// a base snapshot the receiver does not hold; transfers proceed
    /// stop-and-wait, one outstanding chunk at a time.
    GetChunk {
        /// Content digest of the wanted snapshot.
        digest: SnapDigest,
        /// Zero-based chunk index being requested.
        index: u32,
        /// Where to send the chunk.
        reply_to: Mid,
    },
    /// Snapshot holder → fetching cohort: one bounded, CRC-checked chunk
    /// of a snapshot's canonical bytes. Corrupt or out-of-order chunks
    /// are dropped by the receiver's assembler; the retry timer
    /// re-requests.
    Chunk {
        /// Content digest of the snapshot the chunk belongs to.
        digest: SnapDigest,
        /// Zero-based chunk index.
        index: u32,
        /// Total number of chunks in the transfer.
        total: u32,
        /// CRC-32C of `payload`.
        crc: u32,
        /// The chunk's bytes (at most the group's configured chunk size).
        payload: Vec<u8>,
    },

    // ------------------------------------------------------- read leases
    /// Backup → primary: grant (or renew) a read lease of
    /// `CohortConfig::lease_ticks`, piggybacked on existing traffic —
    /// sent whenever an active, up-to-date backup processes a
    /// `BufferSend` or a heartbeat from its current primary. The primary
    /// serves read-only transactions locally while it holds live grants
    /// from a sub-majority of backups.
    LeaseGrant {
        /// The view the grant is valid in; the primary discards grants
        /// for any other view.
        viewid: ViewId,
        /// The granting backup.
        from: Mid,
    },
    /// Relinquishing primary → all view members: every lease it held for
    /// `viewid` is void. Broadcast when a leaseholder joins a view
    /// change; a new primary that has seen the old primary's revocation
    /// can skip the skew-adjusted lease wait.
    LeaseRevoke {
        /// The view whose leases are revoked.
        viewid: ViewId,
        /// The relinquishing (old) primary.
        from: Mid,
    },
}

impl Message {
    /// A short name for metrics and tracing.
    pub fn name(&self) -> &'static str {
        match self {
            Message::Call { .. } => "call",
            Message::CallReply { .. } => "call-reply",
            Message::CallReject { .. } => "call-reject",
            Message::Prepare { .. } => "prepare",
            Message::PrepareOk { .. } => "prepare-ok",
            Message::PrepareRefuse { .. } => "prepare-refuse",
            Message::Commit { .. } => "commit",
            Message::CommitDone { .. } => "commit-done",
            Message::Abort { .. } => "abort",
            Message::Redirect { .. } => "redirect",
            Message::ClientBegin { .. } => "client-begin",
            Message::ClientBeginAck { .. } => "client-begin-ack",
            Message::ClientCommit { .. } => "client-commit",
            Message::ClientAbort { .. } => "client-abort",
            Message::ClientOutcome { .. } => "client-outcome",
            Message::ClientPing { .. } => "client-ping",
            Message::ClientPong { .. } => "client-pong",
            Message::Query { .. } => "query",
            Message::QueryReply { .. } => "query-reply",
            Message::Probe { .. } => "probe",
            Message::ProbeReply { .. } => "probe-reply",
            Message::BufferSend { .. } => "buffer-send",
            Message::BufferAck { .. } => "buffer-ack",
            Message::ImAlive { .. } => "im-alive",
            Message::Invite { .. } => "invite",
            Message::AcceptNormal { .. } => "accept-normal",
            Message::AcceptCrashed { .. } => "accept-crashed",
            Message::InitView { .. } => "init-view",
            Message::GetChunk { .. } => "get-chunk",
            Message::Chunk { .. } => "chunk",
            Message::LeaseGrant { .. } => "lease-grant",
            Message::LeaseRevoke { .. } => "lease-revoke",
        }
    }

    /// Whether this message is part of the view change protocol.
    pub fn is_view_change(&self) -> bool {
        matches!(
            self,
            Message::Invite { .. }
                | Message::AcceptNormal { .. }
                | Message::AcceptCrashed { .. }
                | Message::InitView { .. }
        )
    }

    /// Whether this message is background replication traffic (buffer
    /// streaming, heartbeats, or snapshot state transfer) rather than
    /// foreground request traffic.
    pub fn is_background(&self) -> bool {
        matches!(
            self,
            Message::BufferSend { .. }
                | Message::BufferAck { .. }
                | Message::ImAlive { .. }
                | Message::GetChunk { .. }
                | Message::Chunk { .. }
                | Message::LeaseGrant { .. }
                | Message::LeaseRevoke { .. }
        )
    }

    /// A rough wire-size estimate in bytes, used by the experiments to
    /// compare information flow across replication schemes (E9).
    pub fn wire_size(&self) -> usize {
        const HDR: usize = 16; // message tag + framing
        const ID: usize = 8;
        const VIEWID: usize = 16;
        const VS: usize = 24;
        const AID: usize = 32;
        match self {
            Message::Call { proc, args, .. } => HDR + VIEWID + AID + ID + proc.len() + args.len(),
            Message::CallReply { outcome, .. } => {
                HDR + AID
                    + ID
                    + match outcome {
                        CallOutcome::Ok { result, pset } => result.len() + pset.wire_size(),
                        CallOutcome::Refused(_) => 16,
                    }
            }
            Message::CallReject { .. } => HDR + AID + ID + VIEWID,
            Message::Prepare { pset, .. } => HDR + AID + ID + pset.wire_size(),
            Message::PrepareOk { .. } | Message::PrepareRefuse { .. } => HDR + AID + ID + 1,
            Message::Commit { .. } | Message::Abort { .. } => HDR + AID + ID,
            Message::CommitDone { .. } => HDR + AID + ID,
            Message::Redirect { .. } => HDR + ID + VIEWID,
            Message::Query { .. } | Message::QueryReply { .. } => HDR + AID + ID,
            Message::ClientBegin { .. } | Message::ClientBeginAck { .. } => HDR + AID + ID,
            Message::ClientCommit { pset, .. } => HDR + AID + ID + pset.wire_size(),
            Message::ClientAbort { .. }
            | Message::ClientOutcome { .. }
            | Message::ClientPing { .. }
            | Message::ClientPong { .. } => HDR + AID + ID,
            Message::Probe { .. } => HDR + ID + ID,
            Message::ProbeReply { view, .. } => HDR + ID + VIEWID + 8 * view.len(),
            Message::BufferSend { records, .. } => {
                HDR + VIEWID
                    + ID
                    + records
                        .iter()
                        .map(|_r| VS + 64) // record header + typical payload
                        .sum::<usize>()
            }
            Message::BufferAck { .. } => HDR + VIEWID + ID + 8,
            Message::ImAlive { .. } => HDR + ID + VIEWID,
            Message::Invite { .. } => HDR + VIEWID + ID,
            Message::AcceptNormal { .. } => HDR + VIEWID + ID + VS + 1,
            Message::AcceptCrashed { .. } => HDR + VIEWID + ID + VIEWID,
            Message::InitView { view, .. } => HDR + VIEWID + 8 * view.len(),
            Message::GetChunk { .. } => HDR + 16 + ID + ID,
            Message::Chunk { payload, .. } => HDR + 16 + 3 * ID + payload.len(),
            Message::LeaseGrant { .. } | Message::LeaseRevoke { .. } => HDR + VIEWID + ID,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Mid;

    fn aid() -> Aid {
        Aid { group: GroupId(1), view: ViewId::initial(Mid(0)), seq: 0 }
    }

    #[test]
    fn names_are_unique() {
        let msgs: Vec<Message> = vec![
            Message::Call {
                viewid: ViewId::initial(Mid(0)),
                call_id: CallId { aid: aid(), seq: 0 },
                proc: "p".into(),
                args: vec![],
            },
            Message::Abort { aid: aid() },
            Message::Query { aid: aid(), reply_to: Mid(0) },
            Message::ImAlive { from: Mid(0), viewid: ViewId::initial(Mid(0)) },
            Message::Invite { viewid: ViewId::initial(Mid(0)), manager: Mid(0) },
            Message::LeaseGrant { viewid: ViewId::initial(Mid(0)), from: Mid(1) },
            Message::LeaseRevoke { viewid: ViewId::initial(Mid(0)), from: Mid(0) },
        ];
        let names: std::collections::BTreeSet<_> = msgs.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), msgs.len());
    }

    #[test]
    fn classification() {
        let invite = Message::Invite { viewid: ViewId::initial(Mid(0)), manager: Mid(0) };
        assert!(invite.is_view_change());
        assert!(!invite.is_background());
        let hb = Message::ImAlive { from: Mid(0), viewid: ViewId::initial(Mid(0)) };
        assert!(hb.is_background());
        assert!(!hb.is_view_change());
        let abort = Message::Abort { aid: aid() };
        assert!(!abort.is_background());
        assert!(!abort.is_view_change());
        let chunk = Message::GetChunk { digest: SnapDigest::of(b"s"), index: 0, reply_to: Mid(1) };
        assert!(chunk.is_background());
        assert!(!chunk.is_view_change());
        let grant = Message::LeaseGrant { viewid: ViewId::initial(Mid(0)), from: Mid(1) };
        assert!(grant.is_background());
        assert!(!grant.is_view_change());
        let revoke = Message::LeaseRevoke { viewid: ViewId::initial(Mid(0)), from: Mid(0) };
        assert!(revoke.is_background());
        assert!(!revoke.is_view_change());
    }

    #[test]
    fn wire_size_scales_with_payload() {
        let small = Message::Call {
            viewid: ViewId::initial(Mid(0)),
            call_id: CallId { aid: aid(), seq: 0 },
            proc: "p".into(),
            args: vec![0; 10],
        };
        let big = Message::Call {
            viewid: ViewId::initial(Mid(0)),
            call_id: CallId { aid: aid(), seq: 0 },
            proc: "p".into(),
            args: vec![0; 1000],
        };
        assert!(big.wire_size() > small.wire_size());
    }
}
