//! Tunable protocol parameters.
//!
//! All durations are in abstract [`Tick`](crate::types::Tick)s; the
//! deterministic simulator interprets a tick as one simulated time unit
//! (roughly "one millisecond" in the experiments) and the live runtime maps
//! ticks onto milliseconds.

use serde::{Deserialize, Serialize};

/// Tuning knobs for a cohort.
///
/// The defaults are sized for a simulated LAN where one-way message delay
/// is a few ticks. Two knobs are *experiment levers* called out in the
/// paper:
///
/// * [`eager_force_calls`](CohortConfig::eager_force_calls) — Section 6:
///   "if completed call records were forced to the backups before the call
///   returned, there would be no aborts due to view changes, but calls
///   would be processed more slowly" (experiment E5).
/// * [`buffer_flush_interval`](CohortConfig::buffer_flush_interval) — how
///   lazily the primary streams the communication buffer in background
///   mode; governs how often a prepare must wait for a force
///   (Section 3.7, experiment E8).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CohortConfig {
    /// Interval between "I'm alive" messages (Section 4).
    pub heartbeat_interval: u64,
    /// Silence from a view member longer than this triggers a view change.
    /// The paper advises "a fairly long timeout" to avoid churn.
    pub suspect_timeout: u64,
    /// How long the primary waits between background buffer sends to
    /// backups. `0` means every `add` is sent immediately.
    pub buffer_flush_interval: u64,
    /// If a force has not reached a sub-majority within this long, the
    /// force is abandoned and the cohort switches to the view change
    /// algorithm (Section 3, footnote 1).
    pub force_timeout: u64,
    /// Client-side: how long to wait for a call reply before re-sending.
    pub call_retry_interval: u64,
    /// Client-side: number of call (re)sends before the transaction is
    /// aborted ("no reply at all (after a sufficient number of probes)",
    /// Section 3.1) — or, with call-subactions enabled, before the call
    /// subaction is aborted and redone.
    pub call_attempts: u32,
    /// Client-side: number of times an unanswered call may be aborted as
    /// a subaction and redone as a new one (Section 3.6: "we can abort
    /// just the subaction, and then do the call again as a new
    /// subaction"). `0` restores the flat-transaction behavior where any
    /// unanswered call aborts the whole transaction.
    pub call_redo_attempts: u32,
    /// Coordinator: how long to wait for prepare votes before re-sending.
    pub prepare_retry_interval: u64,
    /// Coordinator: number of prepare rounds before aborting.
    pub prepare_attempts: u32,
    /// Coordinator: interval between commit-message retransmissions while
    /// waiting for participant acknowledgements (phase two runs in
    /// background).
    pub commit_retry_interval: u64,
    /// Participant: a call that cannot acquire its locks within this long
    /// is refused, causing the client to abort the transaction.
    pub lock_wait_timeout: u64,
    /// Participant: a prepared transaction with no outcome after this long
    /// starts sending queries to the coordinator group (Section 3.4).
    pub query_interval: u64,
    /// Participant: an *unprepared* transaction holding locks with no
    /// activity for this long is investigated with a query (it may have
    /// been aborted by a coordinator whose abort message was lost —
    /// "delivery of abort messages is not guaranteed", Section 4.1).
    pub stale_txn_timeout: u64,
    /// View manager: how long to wait for invitation responses before
    /// attempting to form a view with whatever has arrived.
    pub invite_timeout: u64,
    /// View manager: delay before retrying after a failed view formation
    /// ("the cohort attempts another view formation later", Section 4).
    pub manager_retry_delay: u64,
    /// Underling: how long to await the new view before becoming a manager
    /// ("an underling should use a fairly long timeout", Section 4.1).
    pub underling_timeout: u64,
    /// Churn avoidance (Section 4.1): how many heartbeats a cohort defers
    /// to a live higher-priority (lower-mid) manager candidate before
    /// managing a view change itself. `0` = every suspicious cohort
    /// manages immediately (the paper's tolerated-but-slower concurrent
    /// managers).
    pub manager_deference: u32,
    /// Retry hardening: when `true` (the default), every retry timer —
    /// call, prepare, commit, view-manager, and agent retries — backs
    /// off exponentially (`base << min(attempt - 1,
    /// retry_backoff_doublings)`) with a deterministic per-cohort
    /// jitter, so repeated losses do not produce synchronized retry
    /// storms. `false` restores the original fixed-interval retries
    /// (kept as an experiment baseline).
    pub retry_backoff: bool,
    /// Cap on the exponential backoff: a retry delay never exceeds
    /// `base << retry_backoff_doublings`.
    pub retry_backoff_doublings: u32,
    /// Jitter span in permille of the backed-off delay. The jitter
    /// added is a hash of (cohort mid, timer kind, attempt) modulo the
    /// span — deterministic, so simulated runs stay reproducible, but
    /// different per cohort, which desynchronizes cohorts that would
    /// otherwise retry in lockstep (e.g. concurrent view managers).
    pub retry_jitter_permille: u16,
    /// Force completed-call records to a sub-majority *before* replying to
    /// the client (the Section 6 tradeoff; `false` is the paper's design).
    pub eager_force_calls: bool,
    /// The Section 4.1 optimization: "when an active primary notices
    /// that it cannot communicate with a backup, but it still has a
    /// sub-majority of other backups … the primary can unilaterally
    /// exclude the inaccessible backup from the view" — no invitation
    /// round at all. Off by default so measurements reflect the base
    /// protocol.
    pub unilateral_exclusion: bool,
    /// Durability: emit a periodic [`Checkpoint`](crate::durable) persist
    /// effect every this many event records applied mid-view, bounding
    /// how much log a store must replay on recovery. `0` (the default)
    /// checkpoints only at view changes — the paper's protocol emits no
    /// mid-view snapshots, and runtimes without a store ignore persist
    /// effects entirely.
    pub checkpoint_interval: u64,
    /// Snapshots: materialize a content-addressed snapshot of the group
    /// state whenever an applied record's timestamp is a multiple of this
    /// interval. Snapshot boundaries are derived purely from viewstamps,
    /// so every replica materializes byte-identical snapshots without
    /// coordination; newview records then reference the snapshot digest
    /// and carry only the delta of records since it. `0` disables
    /// boundary snapshots — each view change ships an ad-hoc snapshot
    /// reference with an empty delta, and backups that match the digest
    /// install with zero transfer.
    pub snapshot_interval: u64,
    /// State transfer: payload size bound for one snapshot chunk, in
    /// bytes. Must agree across the group (the requester's assembler and
    /// the server's chunker both use their local value).
    pub snapshot_chunk_bytes: usize,
    /// State transfer: how long a fetching cohort waits for a requested
    /// chunk before re-requesting it (with the standard retry backoff).
    pub chunk_retry_interval: u64,
    /// Read leases: how long a backup's lease grant is valid, measured
    /// on the *primary's* clock from grant receipt. While the primary
    /// holds live grants from a sub-majority of backups it serves
    /// read-only transactions locally — no communication-buffer record,
    /// no persist, no force. `0` (the default) disables leases entirely;
    /// the protocol behaves exactly as before.
    pub lease_ticks: u64,
    /// Read leases: the worst-case clock-rate ratio between any two
    /// cohorts the deployment tolerates (the sim injects skews via
    /// `set_timer_skew` with factors up to 2). A new primary that cannot
    /// produce an explicit revocation from the previous primary must
    /// wait `lease_ticks * lease_skew_bound^2` on its own clock before
    /// accepting prepares/commits: the holder's clock may run
    /// `lease_skew_bound`× slow (stretching its lease in real time) and
    /// the waiter's may run `lease_skew_bound`× fast (shrinking its
    /// wait), so the bound appears squared.
    pub lease_skew_bound: u64,
}

impl CohortConfig {
    /// Defaults sized for a simulated LAN with one-way delays of 1–5
    /// ticks.
    pub fn new() -> Self {
        CohortConfig {
            heartbeat_interval: 20,
            suspect_timeout: 100,
            buffer_flush_interval: 2,
            force_timeout: 120,
            call_retry_interval: 50,
            call_attempts: 3,
            call_redo_attempts: 2,
            prepare_retry_interval: 60,
            prepare_attempts: 3,
            commit_retry_interval: 60,
            lock_wait_timeout: 200,
            query_interval: 150,
            stale_txn_timeout: 600,
            invite_timeout: 40,
            manager_retry_delay: 60,
            underling_timeout: 120,
            manager_deference: 2,
            retry_backoff: true,
            retry_backoff_doublings: 3,
            retry_jitter_permille: 250,
            eager_force_calls: false,
            unilateral_exclusion: false,
            checkpoint_interval: 0,
            snapshot_interval: 64,
            snapshot_chunk_bytes: vsr_snap::DEFAULT_CHUNK_BYTES,
            chunk_retry_interval: 40,
            lease_ticks: 0,
            lease_skew_bound: 2,
        }
    }

    /// How long a new primary that lacks an explicit revocation must
    /// wait before accepting work: the maximum outstanding lease under
    /// the worst tolerated clock skew (see
    /// [`lease_skew_bound`](CohortConfig::lease_skew_bound)).
    pub fn lease_wait_ticks(&self) -> u64 {
        self.lease_ticks.saturating_mul(self.lease_skew_bound).saturating_mul(self.lease_skew_bound)
    }

    /// The delay before retry number `attempt` (1-based: the first arm
    /// of a retry timer is attempt 1) of a timer whose fixed interval is
    /// `base`: capped exponential backoff plus deterministic jitter.
    ///
    /// `salt` distinguishes jitter streams — callers mix in the cohort
    /// mid and a per-timer-kind constant so distinct cohorts (and
    /// distinct timers of one cohort) desynchronize instead of sharing
    /// a draw. With [`retry_backoff`](CohortConfig::retry_backoff) off
    /// this returns `base` unchanged.
    pub fn retry_delay(&self, base: u64, attempt: u32, salt: u64) -> u64 {
        if !self.retry_backoff || base == 0 {
            return base;
        }
        let doublings = attempt.saturating_sub(1).min(self.retry_backoff_doublings).min(32);
        let delay = base.saturating_mul(1u64 << doublings);
        let span = delay.saturating_mul(u64::from(self.retry_jitter_permille)) / 1000;
        if span == 0 {
            return delay;
        }
        delay
            + splitmix64(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(u64::from(attempt)))
                % span
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed hash for jitter draws.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Default for CohortConfig {
    fn default() -> Self {
        CohortConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = CohortConfig::new();
        assert!(c.suspect_timeout > c.heartbeat_interval);
        assert!(c.force_timeout > c.buffer_flush_interval);
        assert!(c.call_attempts >= 1);
        assert!(!c.eager_force_calls, "paper default is background mode");
        assert!(c.snapshot_chunk_bytes > 0, "zero chunk size would stall transfers");
        assert!(c.snapshot_interval >= 2, "a newview record (ts 1) must never be a boundary");
        assert_eq!(c.lease_ticks, 0, "leases are an opt-in fast path");
        assert!(c.lease_skew_bound >= 2, "sim skews run up to 2x");
        assert_eq!(c, CohortConfig::default());
    }

    #[test]
    fn lease_wait_covers_skewed_lease() {
        let c = CohortConfig { lease_ticks: 50, ..CohortConfig::new() };
        // Holder clock 2x slow => lease lasts 100 real ticks; waiter
        // clock 2x fast => a 200-tick timer fires after 100 real ticks.
        // The wait must still cover the stretched lease.
        assert_eq!(c.lease_wait_ticks(), 200);
        assert!(c.lease_wait_ticks() / c.lease_skew_bound >= c.lease_ticks * c.lease_skew_bound);
    }

    #[test]
    fn retry_delay_backs_off_and_caps() {
        let c = CohortConfig::new();
        let base = 60;
        let d1 = c.retry_delay(base, 1, 7);
        let d2 = c.retry_delay(base, 2, 7);
        let d3 = c.retry_delay(base, 3, 7);
        let d9 = c.retry_delay(base, 9, 7);
        // Each delay sits in [base << doublings, (base << doublings) * 1.25).
        assert!((60..75).contains(&d1), "{d1}");
        assert!((120..150).contains(&d2), "{d2}");
        assert!((240..300).contains(&d3), "{d3}");
        // Capped at retry_backoff_doublings = 3 → factor 8.
        assert!((480..600).contains(&d9), "{d9}");
    }

    #[test]
    fn retry_delay_jitter_is_deterministic_and_salted() {
        let c = CohortConfig::new();
        assert_eq!(c.retry_delay(60, 2, 1), c.retry_delay(60, 2, 1));
        // Different salts (cohorts) should usually draw different jitter;
        // check a handful of salts produce at least two distinct delays.
        let distinct: std::collections::BTreeSet<u64> =
            (0..8u64).map(|salt| c.retry_delay(60, 2, salt)).collect();
        assert!(distinct.len() > 1, "jitter never varied: {distinct:?}");
    }

    #[test]
    fn retry_delay_legacy_mode_is_fixed() {
        let c = CohortConfig { retry_backoff: false, ..CohortConfig::new() };
        for attempt in 1..10 {
            assert_eq!(c.retry_delay(60, attempt, 42), 60);
        }
    }
}
