//! Views and group configurations (Section 2).
//!
//! A *configuration* is the full set of cohorts in a module group, fixed at
//! group creation. A *view* is a subset of the configuration that contains
//! at least a majority of group members, together with an indication of
//! which cohort is the primary.

use crate::types::{GroupId, Mid};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The full membership of a module group, fixed when the group is created
/// ("the program can indicate the number of cohorts when the group is
/// created", Section 2).
///
/// # Examples
///
/// ```
/// use vsr_core::types::{GroupId, Mid};
/// use vsr_core::view::Configuration;
///
/// let config = Configuration::new(GroupId(1), vec![Mid(1), Mid(2), Mid(3)]);
/// assert_eq!(config.majority(), 2);
/// assert_eq!(config.sub_majority(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Configuration {
    group: GroupId,
    members: Vec<Mid>,
}

impl Configuration {
    /// Create a configuration for `group` with the given cohort mids.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or contains duplicates.
    pub fn new(group: GroupId, mut members: Vec<Mid>) -> Self {
        assert!(!members.is_empty(), "configuration must have at least one cohort");
        members.sort();
        let before = members.len();
        members.dedup();
        assert_eq!(before, members.len(), "configuration members must be distinct");
        Configuration { group, members }
    }

    /// The group this configuration describes.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// All cohort mids, in sorted order.
    pub fn members(&self) -> &[Mid] {
        &self.members
    }

    /// Whether `mid` is a member of the group.
    pub fn contains(&self, mid: Mid) -> bool {
        self.members.binary_search(&mid).is_ok()
    }

    /// Total number of cohorts.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the configuration is empty (never true for a constructed
    /// configuration).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The size of a majority of the configuration: `⌊n/2⌋ + 1`.
    pub fn majority(&self) -> usize {
        self.members.len() / 2 + 1
    }

    /// The paper's *sub-majority*: "one less than a majority of the
    /// configuration; if a sub-majority of backups knows about an event,
    /// then a majority of the cohorts in the configuration knows about that
    /// event" (counting the primary itself) — Section 3.
    pub fn sub_majority(&self) -> usize {
        self.majority() - 1
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.group)?;
        for (i, m) in self.members.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "}}")
    }
}

/// A view: `<primary: int, backups: {int}>` (Figure 1).
///
/// A view is a set of cohorts that are (or were) capable of communicating
/// with each other, together with an indication of which cohort is the
/// primary; it must contain a majority of group members (Section 2).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct View {
    primary: Mid,
    backups: Vec<Mid>,
}

impl View {
    /// Create a view with the given primary and backups.
    ///
    /// # Panics
    ///
    /// Panics if `backups` contains the primary or duplicates.
    pub fn new(primary: Mid, mut backups: Vec<Mid>) -> Self {
        backups.sort();
        let before = backups.len();
        backups.dedup();
        assert_eq!(before, backups.len(), "view backups must be distinct");
        assert!(!backups.contains(&primary), "primary cannot also be a backup");
        View { primary, backups }
    }

    /// The primary cohort of this view.
    pub fn primary(&self) -> Mid {
        self.primary
    }

    /// The backup cohorts of this view, in sorted order.
    pub fn backups(&self) -> &[Mid] {
        &self.backups
    }

    /// All members (primary + backups).
    pub fn members(&self) -> impl Iterator<Item = Mid> + '_ {
        std::iter::once(self.primary).chain(self.backups.iter().copied())
    }

    /// Whether `mid` belongs to the view.
    pub fn contains(&self, mid: Mid) -> bool {
        self.primary == mid || self.backups.contains(&mid)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        1 + self.backups.len()
    }

    /// Views are never empty: they always contain at least the primary.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether this view contains a majority of `config`'s members — the
    /// validity condition for an active view (Section 2).
    pub fn is_majority_of(&self, config: &Configuration) -> bool {
        let in_config = self.members().filter(|m| config.contains(*m)).count();
        in_config >= config.majority()
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<primary:{}, backups:[", self.primary)?;
        for (i, m) in self.backups.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "]>")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(n: u64) -> Configuration {
        Configuration::new(GroupId(1), (0..n).map(Mid).collect())
    }

    #[test]
    fn majority_and_sub_majority() {
        assert_eq!(config(1).majority(), 1);
        assert_eq!(config(1).sub_majority(), 0);
        assert_eq!(config(3).majority(), 2);
        assert_eq!(config(3).sub_majority(), 1);
        assert_eq!(config(4).majority(), 3);
        assert_eq!(config(5).majority(), 3);
        assert_eq!(config(5).sub_majority(), 2);
        assert_eq!(config(7).majority(), 4);
        assert_eq!(config(7).sub_majority(), 3);
    }

    #[test]
    fn view_membership() {
        let v = View::new(Mid(1), vec![Mid(2), Mid(0)]);
        assert_eq!(v.primary(), Mid(1));
        assert_eq!(v.backups(), &[Mid(0), Mid(2)]);
        assert!(v.contains(Mid(0)));
        assert!(v.contains(Mid(1)));
        assert!(!v.contains(Mid(3)));
        assert_eq!(v.len(), 3);
        assert_eq!(v.members().count(), 3);
    }

    #[test]
    fn view_majority_check() {
        let c = config(5);
        let maj = View::new(Mid(0), vec![Mid(1), Mid(2)]);
        let minority = View::new(Mid(0), vec![Mid(1)]);
        assert!(maj.is_majority_of(&c));
        assert!(!minority.is_majority_of(&c));
    }

    #[test]
    fn view_majority_ignores_non_members() {
        let c = config(3);
        // Mids 10, 11 are not in the configuration and must not count.
        let v = View::new(Mid(0), vec![Mid(10), Mid(11)]);
        assert!(!v.is_majority_of(&c));
    }

    #[test]
    #[should_panic(expected = "primary cannot also be a backup")]
    fn primary_not_backup() {
        View::new(Mid(1), vec![Mid(1)]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn config_rejects_duplicates() {
        Configuration::new(GroupId(1), vec![Mid(1), Mid(1)]);
    }

    #[test]
    fn config_contains() {
        let c = config(3);
        assert!(c.contains(Mid(2)));
        assert!(!c.contains(Mid(3)));
        assert_eq!(c.group(), GroupId(1));
    }
}
