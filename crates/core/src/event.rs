//! Event records: the information the primary writes to its communication
//! buffer (Section 2).
//!
//! "The primary generates a new timestamp each time it needs to
//! communicate information to its backups; we refer to each such
//! occurrence as an event. … An event record identifies the type of the
//! event, and contains other relevant information about the event."

use crate::gstate::CompletedCall;
use crate::history::History;
use crate::types::{Aid, GroupId, Timestamp, Viewstamp};
use crate::view::View;
use serde::{Deserialize, Serialize};

/// The payload of an event record.
///
/// Section 3.7 points out the one-to-one correspondence with the records a
/// conventional transaction system forces to stable storage; the only
/// difference is the absence of a *prepare* record (the history plus the
/// pset in the prepare message substitute for it) and the addition of the
/// *newview* record that starts each view.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A remote call finished processing at the server ("completed-call",
    /// Figure 3); equivalent to the data records of a conventional system.
    CompletedCall {
        /// The transaction on whose behalf the call ran.
        aid: Aid,
        /// Everything needed to re-create locks and versions.
        record: CompletedCall,
    },
    /// Coordinator commit decision ("committing", Figure 2). Forcing this
    /// record to a sub-majority *is* the commit point.
    Committing {
        /// The committing transaction.
        aid: Aid,
        /// Non-read-only participants that must take part in phase two.
        plist: Vec<GroupId>,
    },
    /// A participant (or read-only participant at prepare) committed the
    /// transaction locally ("committed", Figure 3).
    Committed {
        /// The committed transaction.
        aid: Aid,
    },
    /// The transaction aborted ("aborted"/"abort", Figures 2 and 3); not
    /// strictly required for safety but useful for query processing
    /// (Section 3.1).
    Aborted {
        /// The aborted transaction.
        aid: Aid,
    },
    /// Coordinator phase two finished ("done", Figure 2).
    Done {
        /// The finished transaction.
        aid: Aid,
    },
    /// The records of aborted call-subactions were dropped (Section 3.6:
    /// "we can abort just the subaction, and then do the call again as a
    /// new subaction"). Written by the primary before executing a redone
    /// call so that exactly one generation's effects survive.
    CallsDropped {
        /// The transaction.
        aid: Aid,
        /// The dropped calls.
        dropped: Vec<crate::types::CallId>,
    },
    /// The first record of every view ("newview", Section 4): carries the
    /// new view and history, plus a content-addressed reference to a base
    /// snapshot and the delta of event records applied since it, so that
    /// backups — including recovered cohorts with `up_to_date = false` —
    /// can install the latest state.
    ///
    /// The paper ships the full group state here; we ship `base + delta`
    /// instead. A cohort holding the base snapshot (or whose own state
    /// digests to it) reconstructs the group state by replaying the delta;
    /// one that is missing it fetches the snapshot bytes in CRC-checked
    /// chunks (`Message::GetChunk` / `Message::Chunk`) before installing.
    NewView {
        /// The new view.
        view: View,
        /// The new primary's history (already containing the new view's
        /// entry).
        history: History,
        /// The base snapshot the delta applies on top of.
        base: crate::snapshot::SnapshotRef,
        /// Event records applied since `base`, in viewstamp order. Shared
        /// behind `Arc` so buffering, persisting, and retransmitting the
        /// record never re-clones the payload. Never contains nested
        /// newview records.
        delta: std::sync::Arc<[EventRecord]>,
    },
}

impl EventKind {
    /// The transaction this event concerns, if any.
    pub fn aid(&self) -> Option<Aid> {
        match self {
            EventKind::CompletedCall { aid, .. }
            | EventKind::Committing { aid, .. }
            | EventKind::Committed { aid }
            | EventKind::Aborted { aid }
            | EventKind::Done { aid }
            | EventKind::CallsDropped { aid, .. } => Some(*aid),
            EventKind::NewView { .. } => None,
        }
    }

    /// Short name for tracing and metrics.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::CompletedCall { .. } => "completed-call",
            EventKind::Committing { .. } => "committing",
            EventKind::Committed { .. } => "committed",
            EventKind::Aborted { .. } => "aborted",
            EventKind::Done { .. } => "done",
            EventKind::CallsDropped { .. } => "calls-dropped",
            EventKind::NewView { .. } => "newview",
        }
    }
}

/// An event record with its assigned viewstamp.
///
/// Records are written to the communication buffer and delivered to all
/// backups in timestamp order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventRecord {
    /// The viewstamp assigned by the primary's `add` operation.
    pub vs: Viewstamp,
    /// What happened.
    pub kind: EventKind,
}

impl EventRecord {
    /// The timestamp within the record's view.
    pub fn ts(&self) -> Timestamp {
        self.vs.ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Mid, ViewId};

    fn aid() -> Aid {
        Aid { group: GroupId(1), view: ViewId::initial(Mid(0)), seq: 0 }
    }

    #[test]
    fn aid_extraction() {
        assert_eq!(EventKind::Committed { aid: aid() }.aid(), Some(aid()));
        assert_eq!(EventKind::Aborted { aid: aid() }.aid(), Some(aid()));
        let snap = crate::snapshot::Snapshot::materialize(
            Viewstamp::default(),
            &History::new(),
            &crate::gstate::GroupState::new(),
        );
        assert_eq!(
            EventKind::NewView {
                view: View::new(Mid(0), vec![]),
                history: History::new(),
                base: snap.to_ref(),
                delta: std::sync::Arc::from(Vec::new()),
            }
            .aid(),
            None
        );
    }

    #[test]
    fn names_are_distinct() {
        let kinds = [
            EventKind::Committing { aid: aid(), plist: vec![] },
            EventKind::Committed { aid: aid() },
            EventKind::Aborted { aid: aid() },
            EventKind::Done { aid: aid() },
        ];
        let names: std::collections::BTreeSet<_> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), kinds.len());
    }
}
