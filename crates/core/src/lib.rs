//! # Viewstamped Replication — protocol core
//!
//! A faithful implementation of *"Viewstamped Replication: A New Primary
//! Copy Method to Support Highly-Available Distributed Systems"* (Brian
//! M. Oki and Barbara H. Liskov, PODC 1988).
//!
//! The paper's protocol replicates *module groups*: one cohort is the
//! primary and executes remote procedure calls; backups receive a stream
//! of *event records* through a communication buffer. *Viewstamps* —
//! `(viewid, timestamp)` pairs — let the system determine cheaply which
//! events survived a *view change* (the reorganization run when cohorts
//! crash, recover, or partition). Transactions commit through two-phase
//! commit, with the forced "committing" record at the coordinator taking
//! the place of stable storage.
//!
//! ## Structure
//!
//! * [`types`] — mids, groupids, viewids, timestamps,
//!   [viewstamps](types::Viewstamp), transaction ids.
//! * [`history`] — per-cohort event-knowledge summaries and the
//!   `compatible` predicate.
//! * [`pset`] — the per-transaction `(groupid, viewstamp)` set.
//! * [`view`] / [`config`] — views, configurations, tuning knobs.
//! * [`gstate`] / [`locks`] — atomic objects, stored call records,
//!   strict two-phase locking with tentative versions.
//! * [`event`] / [`buffer`] — event records and the primary's
//!   communication buffer (`add` / `force_to`).
//! * [`durable`] / [`wire`] — the stable-storage contract (Section 4.2
//!   and beyond): durable events, checkpoints, recovered state, and the
//!   binary codec runtimes use to log them.
//! * [`module`] — the application interface: deterministic procedures
//!   over atomic objects.
//! * [`messages`] — the wire protocol.
//! * [`lease`] — the primary-side read-lease table backing the leased
//!   read fast path (grants from a sub-majority of backups let the
//!   primary answer read-only transactions locally).
//! * [`cohort`] — the replica state machine: transaction processing
//!   (Figures 2 and 3), the view change algorithm (Figure 5), queries,
//!   and failure detection. Sans-I/O: drive it with
//!   [`Cohort::on_message`](cohort::Cohort::on_message),
//!   [`Cohort::on_timer`](cohort::Cohort::on_timer) and
//!   [`Cohort::begin_transaction`](cohort::Cohort::begin_transaction);
//!   execute the returned [`Effect`](cohort::Effect)s.
//!
//! ## Example
//!
//! Build a three-cohort group and inspect its bootstrap view:
//!
//! ```
//! use std::collections::BTreeMap;
//! use vsr_core::cohort::{Cohort, CohortParams};
//! use vsr_core::config::CohortConfig;
//! use vsr_core::module::NullModule;
//! use vsr_core::types::{GroupId, Mid};
//! use vsr_core::view::Configuration;
//!
//! let config = Configuration::new(GroupId(1), vec![Mid(0), Mid(1), Mid(2)]);
//! let mut cohort = Cohort::new(CohortParams {
//!     cfg: CohortConfig::new(),
//!     mid: Mid(0),
//!     configuration: config.clone(),
//!     initial_primary: Mid(0),
//!     peers: BTreeMap::new(),
//!     module: Box::new(NullModule),
//! });
//! let effects = cohort.start(0);
//! assert!(cohort.is_active_primary());
//! assert!(!effects.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod agent;
pub mod buffer;
pub mod cohort;
pub mod config;
pub mod durable;
pub mod event;
pub mod gstate;
pub mod history;
pub mod lease;
pub mod locks;
pub mod messages;
pub mod module;
pub mod pset;
pub mod snapshot;
pub mod types;
pub mod view;
pub mod wire;
