//! Criterion bench for the store WAL (experiment A4's wall-clock half).
//!
//! Measures raw append throughput per fsync policy — on the in-memory
//! `SimDisk` and on a real `FileStore` (where `every-record` pays a real
//! fsync per append) — and the end-to-end commit batch with and without
//! durability. The final section prints the acceptance check: with the
//! `on-stable-viewid-only` policy (the paper's Section 4.2 minimum) the
//! commit batch must run within 5% of the in-memory baseline.

use std::time::Instant;

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use vsr_bench::experiments::a4;
use vsr_bench::helpers::{run_sequential_batch, write_ops};
use vsr_core::durable::DurableEvent;
use vsr_core::event::{EventKind, EventRecord};
use vsr_core::types::{Aid, GroupId, Mid, Timestamp, ViewId, Viewstamp};
use vsr_store::{FileStore, FsyncPolicy, SimDisk, Store};

const POLICIES: [FsyncPolicy; 3] =
    [FsyncPolicy::EveryRecord, FsyncPolicy::OnForce, FsyncPolicy::OnStableViewIdOnly];

fn sample_record(ts: u64) -> EventRecord {
    let vid = ViewId { counter: 1, manager: Mid(1) };
    EventRecord {
        vs: Viewstamp::new(vid, Timestamp(ts)),
        kind: EventKind::Committed { aid: Aid { group: GroupId(2), view: vid, seq: ts } },
    }
}

fn bench_simdisk_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_append_simdisk");
    group.sample_size(10_000);
    for policy in POLICIES {
        group.bench_with_input(BenchmarkId::new("policy", policy.name()), &policy, |b, &policy| {
            let mut disk = SimDisk::new(policy);
            let mut ts = 0u64;
            b.iter(|| {
                ts += 1;
                disk.persist(black_box(&DurableEvent::Record(sample_record(ts)))).unwrap();
            });
        });
    }
    group.finish();
}

fn bench_filestore_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_append_filestore");
    group.sample_size(50);
    for policy in POLICIES {
        group.bench_with_input(BenchmarkId::new("policy", policy.name()), &policy, |b, &policy| {
            let dir = std::env::temp_dir().join(format!(
                "vsr-wal-bench-{}-{}",
                std::process::id(),
                policy.name()
            ));
            let mut store = FileStore::open(&dir, policy).expect("open bench WAL dir");
            let mut ts = 0u64;
            b.iter(|| {
                ts += 1;
                store.persist(black_box(&DurableEvent::Record(sample_record(ts)))).unwrap();
            });
            drop(store);
            let _ = std::fs::remove_dir_all(&dir);
        });
    }
    group.finish();
}

/// One 10-commit batch through a fresh 3-cohort world; the unit the
/// throughput comparison below times.
fn commit_batch(policy: Option<FsyncPolicy>) -> u64 {
    let mut world = a4::durable_world(42, policy, 0);
    run_sequential_batch(&mut world, 10, write_ops).committed
}

fn bench_commit_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit_batch_n3_10_txns");
    group.sample_size(10);
    group.bench_function("in_memory", |b| b.iter(|| black_box(commit_batch(None))));
    for policy in POLICIES {
        group.bench_with_input(
            BenchmarkId::new("durable", policy.name()),
            &policy,
            |b, &policy| b.iter(|| black_box(commit_batch(Some(policy)))),
        );
    }
    group.finish();
}

/// The acceptance check from the issue: the lazy policy's commit batch
/// must run within 5% of the in-memory baseline, wall clock. Measured
/// over enough rounds to steady the numbers; printed, not asserted, so a
/// loaded CI machine cannot turn scheduler noise into a hard failure.
fn throughput_regression_check() {
    const ROUNDS: u32 = 30;
    let time = |policy: Option<FsyncPolicy>| -> f64 {
        // Warmup round absorbs lazy one-time costs (allocator, page-in).
        commit_batch(policy);
        let start = Instant::now();
        for _ in 0..ROUNDS {
            assert_eq!(commit_batch(policy), 10, "every batch must fully commit");
        }
        start.elapsed().as_secs_f64() / f64::from(ROUNDS)
    };
    let baseline = time(None);
    let durable = time(Some(FsyncPolicy::OnStableViewIdOnly));
    let regression = (durable / baseline - 1.0) * 100.0;
    println!(
        "check: commit throughput, on-stable-viewid-only vs in-memory: \
         {:.3} ms vs {:.3} ms per batch ({:+.2}% — target < +5%): {}",
        durable * 1e3,
        baseline * 1e3,
        regression,
        if regression < 5.0 { "PASS" } else { "MARGINAL (rerun on a quiet machine)" },
    );
}

criterion_group!(benches, bench_simdisk_append, bench_filestore_append, bench_commit_batch);

fn main() {
    benches();
    throughput_regression_check();
}
