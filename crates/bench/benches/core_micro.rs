//! Criterion micro-benchmarks of the protocol hot paths: the
//! communication buffer's `add`/`force_to`/ack cycle, the lock table,
//! history/pset compatibility checks, and the view formation rule.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use vsr_core::buffer::CommBuffer;
use vsr_core::event::EventKind;
use vsr_core::gstate::Value;
use vsr_core::history::History;
use vsr_core::locks::LockTable;
use vsr_core::pset::PSet;
use vsr_core::types::{Aid, GroupId, Mid, ObjectId, Timestamp, ViewId, Viewstamp};

fn aid(seq: u64) -> Aid {
    Aid { group: GroupId(1), view: ViewId::initial(Mid(0)), seq }
}

fn bench_buffer(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer");
    for n in [3u64, 5, 7] {
        let backups: Vec<Mid> = (1..n).map(Mid).collect();
        let sub_majority = (n as usize) / 2;
        group.bench_with_input(BenchmarkId::new("add", n), &n, |b, _| {
            b.iter_batched(
                || CommBuffer::<u32>::new(ViewId::initial(Mid(0)), &backups, sub_majority),
                |mut buf| {
                    for s in 0..100 {
                        black_box(buf.add(EventKind::Committed { aid: aid(s) }));
                    }
                    buf
                },
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("force_ack_cycle", n), &n, |b, _| {
            b.iter_batched(
                || CommBuffer::<u32>::new(ViewId::initial(Mid(0)), &backups, sub_majority),
                |mut buf| {
                    for s in 0..50 {
                        let vs = buf.add(EventKind::Committed { aid: aid(s) });
                        buf.force_to(vs, s as u32);
                        for &m in &backups {
                            black_box(buf.on_ack(m, vs.ts));
                        }
                    }
                    buf
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_locks(c: &mut Criterion) {
    c.bench_function("locks/acquire_release_100", |b| {
        b.iter_batched(
            LockTable::new,
            |mut locks| {
                for i in 0..100u64 {
                    let a = aid(i);
                    locks.acquire_read(a, ObjectId(i % 10));
                    locks.acquire_write(a, ObjectId(100 + i));
                    locks.set_tentative(a, ObjectId(100 + i), Value::from(&b"v"[..]));
                    locks.release_all(a);
                }
                locks
            },
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("locks/conflict_check", |b| {
        let mut locks = LockTable::new();
        for i in 0..100u64 {
            locks.acquire_write(aid(i), ObjectId(i));
        }
        b.iter(|| {
            let mut free = 0;
            for i in 0..200u64 {
                if locks.can_write(aid(999), ObjectId(i)) {
                    free += 1;
                }
            }
            black_box(free)
        })
    });
}

fn bench_history_pset(c: &mut Criterion) {
    let vid = ViewId::initial(Mid(0));
    let mut history = History::new();
    history.open_view(vid);
    history.advance(vid, Timestamp(1_000));
    let group = GroupId(1);
    let pset: PSet =
        (0..20).map(|i| (group, Viewstamp::new(vid, Timestamp(i * 37 % 1_000)))).collect();
    c.bench_function("history/compatible_20_entries", |b| {
        b.iter(|| black_box(history.compatible(&pset, group)))
    });
    c.bench_function("pset/vs_max_20_entries", |b| b.iter(|| black_box(pset.vs_max(group))));
    c.bench_function("pset/merge_20_entries", |b| {
        b.iter_batched(
            PSet::new,
            |mut target| {
                target.merge(&pset);
                target
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_form_view(c: &mut Criterion) {
    // The formation rule is crate-internal; benchmark it through the
    // full message path instead: deliver acceptances to a manager
    // cohort. Here we benchmark its dominant input: building the
    // response map and scanning for maxima, via an equivalent
    // computation on public types.
    let mut group = c.benchmark_group("view_change");
    for n in [3usize, 5, 7, 15] {
        group.bench_with_input(BenchmarkId::new("scan_acceptances", n), &n, |b, &n| {
            let responses: BTreeMap<Mid, Viewstamp> = (0..n as u64)
                .map(|i| (Mid(i), Viewstamp::new(ViewId::initial(Mid(0)), Timestamp(i * 13 % 97))))
                .collect();
            b.iter(|| {
                let max = responses.iter().max_by_key(|(_, vs)| **vs);
                black_box(max)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_buffer, bench_locks, bench_history_pset, bench_form_view);
criterion_main!(benches);
