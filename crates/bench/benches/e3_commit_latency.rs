//! Criterion bench for experiment E3: the simulated-latency comparison
//! between VR's forced buffer and the unreplicated baseline's forced
//! stable storage, across the disk-latency sweep.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use vsr_bench::experiments::e3;

fn bench_commit_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_commit_latency");
    group.sample_size(10);
    group.bench_function("vr_n3_30_txns", |b| b.iter(|| black_box(e3::vr_latency(1))));
    for disk in [1u64, 10, 100] {
        group.bench_with_input(
            BenchmarkId::new("unreplicated_30_txns_disk", disk),
            &disk,
            |b, &disk| b.iter(|| black_box(e3::unreplicated_latency(disk))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_commit_latency);
criterion_main!(benches);
