//! Criterion bench for experiment E1: full end-to-end transactions
//! through the deterministic simulator (client primary → server primary
//! → execute → force → two-phase commit), measuring wall-clock cost of
//! the whole protocol stack per committed transaction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vsr_bench::helpers::{read_ops, run_sequential_batch, vr_world, write_ops};
use vsr_core::config::CohortConfig;
use vsr_simnet::NetConfig;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_end_to_end");
    group.sample_size(10);
    for n in [3u64, 5, 7] {
        group.bench_with_input(BenchmarkId::new("write_txns_x20", n), &n, |b, &n| {
            b.iter(|| {
                let mut world = vr_world(n, n, NetConfig::reliable(n), CohortConfig::new());
                let cost = run_sequential_batch(&mut world, 20, write_ops);
                assert_eq!(cost.committed, 20);
                cost
            })
        });
        group.bench_with_input(BenchmarkId::new("read_txns_x20", n), &n, |b, &n| {
            b.iter(|| {
                let mut world = vr_world(n, n, NetConfig::reliable(n), CohortConfig::new());
                let cost = run_sequential_batch(&mut world, 20, read_ops);
                assert_eq!(cost.committed, 20);
                cost
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
