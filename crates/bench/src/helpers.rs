//! Shared measurement helpers for the experiments.

use vsr_app::counter;
use vsr_core::cohort::CallOp;
use vsr_core::config::CohortConfig;
use vsr_core::module::NullModule;
use vsr_core::types::{GroupId, Mid};
use vsr_sim::world::{World, WorldBuilder};
use vsr_simnet::NetConfig;

/// The client group id used by the standard measurement worlds.
pub const CLIENT: GroupId = GroupId(1);
/// The server group id used by the standard measurement worlds.
pub const SERVER: GroupId = GroupId(2);

/// Build a standard measurement world: one single-cohort client group
/// and one `n`-cohort counter server group.
pub fn vr_world(seed: u64, n: u64, net: NetConfig, cfg: CohortConfig) -> World {
    let server_mids: Vec<Mid> = (1..=n).map(Mid).collect();
    WorldBuilder::new(seed)
        .net(net)
        .cohorts(cfg)
        .group(CLIENT, &[Mid(100)], || Box::new(NullModule))
        .group(SERVER, &server_mids, || Box::new(counter::CounterModule))
        .build()
}

/// The mids of the server group in a [`vr_world`].
pub fn server_mids(n: u64) -> Vec<Mid> {
    (1..=n).map(Mid).collect()
}

/// Measured costs of a batch of sequential transactions.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchCost {
    /// Mean commit latency in ticks.
    pub mean_latency: f64,
    /// Messages per transaction: all traffic during the measurement
    /// window *except heartbeats* (whose rate is constant and
    /// load-independent), divided by commits. Includes the background
    /// replication stream.
    pub msgs_per_txn: f64,
    /// Foreground (request/response) messages per transaction.
    pub fg_msgs_per_txn: f64,
    /// Committed count.
    pub committed: u64,
}

/// Run `n_txns` transactions sequentially (each to completion) through
/// `world`, building each script with `make_ops`, and return the batch
/// cost. A warmup transaction is excluded from the measurement.
pub fn run_sequential_batch(
    world: &mut World,
    n_txns: usize,
    mut make_ops: impl FnMut(usize) -> Vec<CallOp>,
) -> BatchCost {
    // Warmup: populate caches (location lookups) outside the window.
    let warm = world.submit(CLIENT, make_ops(usize::MAX));
    world.run_for(2_000);
    assert!(world.result(warm).is_some(), "warmup must complete");

    let heartbeats = |w: &World| w.metrics().msgs.get("im-alive").copied().unwrap_or(0);
    let msgs0 = world.metrics().total_msgs() - heartbeats(world);
    let fg0 = world.metrics().foreground_msgs;
    let commits0 = world.metrics().committed;
    let lat0 = world.metrics().commit_latency.clone();
    for i in 0..n_txns {
        world.submit(CLIENT, make_ops(i));
        world.run_for(1_500);
    }
    let msgs1 = world.metrics().total_msgs() - heartbeats(world);
    let m = world.metrics();
    let committed = m.committed - commits0;
    // Latencies recorded inside the window: histogram delta against
    // the pre-window snapshot. The delta's sum/count are exact, so the
    // mean matches the old vec-slice computation exactly.
    let lats = m.commit_latency.since(&lat0);
    BatchCost {
        mean_latency: lats.mean().unwrap_or(f64::NAN),
        msgs_per_txn: (msgs1 - msgs0) as f64 / committed.max(1) as f64,
        fg_msgs_per_txn: (m.foreground_msgs - fg0) as f64 / committed.max(1) as f64,
        committed,
    }
}

/// A counter-increment script (a write transaction).
pub fn write_ops(_: usize) -> Vec<CallOp> {
    vec![counter::incr(SERVER, 0, 1)]
}

/// A counter-read script (a read-only transaction).
pub fn read_ops(_: usize) -> Vec<CallOp> {
    vec![counter::read(SERVER, 0)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_measurement_works() {
        let mut world = vr_world(1, 3, NetConfig::reliable(1), CohortConfig::new());
        let cost = run_sequential_batch(&mut world, 5, write_ops);
        assert_eq!(cost.committed, 5);
        assert!(cost.mean_latency > 0.0);
        assert!(cost.msgs_per_txn > 0.0);
        assert!(cost.fg_msgs_per_txn <= cost.msgs_per_txn);
    }
}
