//! E9 — Information flow: VR psets vs Isis piggybacking (Section 5).
//!
//! Claim: "Unlike our pset, however, piggybacked information in Isis
//! cannot be discarded when transactions commit. A disadvantage of Isis
//! is the large amount of extra information flowing on every message,
//! and the difficulty in garbage collecting that information. Our method
//! avoids these problems…"
//!
//! We run the same sequence of transactions through both systems and
//! sample the bytes each one attaches per operation early and late in
//! the run. VR's pset holds only the current transaction's
//! `(groupid, viewstamp)` pairs and is discarded at commit, so its
//! per-transaction bytes are flat; the Isis-like model's piggyback grows
//! with history.

use crate::helpers::{vr_world, CLIENT, SERVER};
use crate::table::{f2, Table};
use vsr_app::counter;
use vsr_core::config::CohortConfig;
use vsr_simnet::NetConfig;

/// Per-window measurement of bytes per transaction.
#[derive(Debug, Clone, Copy)]
pub struct WindowBytes {
    /// Early window (transactions 1–10).
    pub early: f64,
    /// Late window (transactions 41–50).
    pub late: f64,
}

/// Measure VR foreground (client-path) bytes per transaction in the
/// early and late windows of a 50-transaction run. Foreground traffic —
/// calls, replies, prepares, commits — is what carries the pset, so it
/// is the apples-to-apples comparison against the Isis model's
/// piggyback-carrying client messages.
pub fn vr_window_bytes(seed: u64) -> WindowBytes {
    let mut world = vr_world(seed, 3, NetConfig::reliable(seed), CohortConfig::new());
    let mut per_txn = Vec::new();
    for i in 0..50u64 {
        let before: u64 = world.metrics().foreground_bytes;
        world.submit(CLIENT, vec![counter::incr(SERVER, i % 4, 1)]);
        world.run_for(1_500);
        per_txn.push((world.metrics().foreground_bytes - before) as f64);
    }
    WindowBytes {
        early: per_txn[0..10].iter().sum::<f64>() / 10.0,
        late: per_txn[40..50].iter().sum::<f64>() / 10.0,
    }
}

/// Measure the Isis-like model's bytes per operation in the same
/// windows.
pub fn isis_window_bytes() -> (WindowBytes, usize) {
    let mut isis = vsr_baselines::isis_like::IsisLike::new(NetConfig::reliable(1), 3);
    let mut per_op = Vec::new();
    for _ in 0..50 {
        let stats = isis.write_call(2).stats().expect("completes");
        per_op.push(stats.bytes as f64);
    }
    (
        WindowBytes {
            early: per_op[0..10].iter().sum::<f64>() / 10.0,
            late: per_op[40..50].iter().sum::<f64>() / 10.0,
        },
        isis.piggyback_bytes(),
    )
}

/// Run the experiment, returning the rendered table.
pub fn run() -> String {
    let vr = vr_window_bytes(4);
    let (isis, final_piggyback) = isis_window_bytes();
    let mut table = Table::new(
        "E9 — Bytes per operation over a 50-transaction run",
        &["system", "txns 1-10 (bytes/txn)", "txns 41-50 (bytes/txn)", "growth"],
    );
    table.row([
        "VR (pset, discarded at commit)".to_string(),
        f2(vr.early),
        f2(vr.late),
        format!("{}x", f2(vr.late / vr.early)),
    ]);
    table.row([
        "Isis-like (piggyback, never discarded)".to_string(),
        f2(isis.early),
        f2(isis.late),
        format!("{}x", f2(isis.late / isis.early)),
    ]);
    table.note(&format!(
        "Claim (§5): VR's per-transaction information is bounded (the pset covers \
         only the live transaction and is dropped at commit), so bytes/txn stay \
         flat; the Isis-style piggyback grows without bound — after 50 transactions \
         every client message carries {final_piggyback} extra bytes."
    ));
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vr_bytes_stay_flat() {
        let vr = vr_window_bytes(1);
        assert!(vr.late < vr.early * 1.25, "VR bytes/txn flat: {} -> {}", vr.early, vr.late);
    }

    #[test]
    fn isis_bytes_grow() {
        let (isis, piggyback) = isis_window_bytes();
        assert!(
            isis.late > isis.early * 2.0,
            "Isis bytes/op grow: {} -> {}",
            isis.early,
            isis.late
        );
        assert!(piggyback > 1_000);
    }

    #[test]
    fn renders() {
        assert!(run().contains("E9"));
    }
}
