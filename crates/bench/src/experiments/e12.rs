//! E12 — Fencing a stale primary (Section 4.1).
//!
//! Claim: "The system performs correctly even if there are several
//! active primaries. This situation could arise when there is a
//! partition and the old primary is slow to notice the need for a view
//! change and continues to respond to client requests even after the new
//! view is formed. The old primary will not be able to prepare and
//! commit user transactions, however, since it cannot force their
//! effects to the backups."
//!
//! Two client groups are partitioned with different sides: one with the
//! stale primary, one with the majority. Every transaction routed
//! through the stale primary must fail to commit; the majority side
//! keeps committing.

use crate::table::Table;
use vsr_app::counter;
use vsr_core::cohort::TxnOutcome;

use vsr_core::module::NullModule;
use vsr_core::types::{GroupId, Mid};
use vsr_sim::world::WorldBuilder;
use vsr_simnet::NetConfig;

const CLIENT_A: GroupId = GroupId(1); // ends up with the stale primary
const CLIENT_B: GroupId = GroupId(2); // stays with the majority
const SERVER: GroupId = GroupId(3);

/// Outcome counts per side.
#[derive(Debug, Clone, Copy, Default)]
pub struct SideCounts {
    /// Commits reported to the client.
    pub committed: u64,
    /// Aborts reported.
    pub aborted: u64,
    /// Unresolved outcomes reported.
    pub unresolved: u64,
    /// No outcome by the end of the run.
    pub no_outcome: u64,
}

/// Run the scenario; returns (stale side, majority side, post-heal
/// commits on the stale client).
pub fn run_scenario(seed: u64) -> (SideCounts, SideCounts, u64) {
    let mut world = WorldBuilder::new(seed)
        .net(NetConfig::reliable(seed))
        .group(CLIENT_A, &[Mid(20)], || Box::new(NullModule))
        .group(CLIENT_B, &[Mid(21)], || Box::new(NullModule))
        .group(SERVER, &[Mid(1), Mid(2), Mid(3)], || Box::new(counter::CounterModule))
        .build();
    // Warm both clients' caches so calls go to the current primary.
    let wa = world.submit(CLIENT_A, vec![counter::incr(SERVER, 0, 1)]);
    world.run_for(2_000);
    let wb = world.submit(CLIENT_B, vec![counter::incr(SERVER, 1, 1)]);
    world.run_for(2_000);
    assert!(world.result(wa).is_some() && world.result(wb).is_some());

    let stale_primary = world.primary_of(SERVER).expect("primary");
    let rest: Vec<Mid> =
        [Mid(1), Mid(2), Mid(3), Mid(21)].into_iter().filter(|&m| m != stale_primary).collect();
    // Client A is trapped with the old primary; client B with the
    // majority.
    world.partition(&[vec![stale_primary, Mid(20)], rest]);

    let mut a_reqs = Vec::new();
    let mut b_reqs = Vec::new();
    for i in 0..10u64 {
        a_reqs.push(world.schedule_submit(
            world.now() + 200 + i * 400,
            CLIENT_A,
            vec![counter::incr(SERVER, 0, 1)],
        ));
        b_reqs.push(world.schedule_submit(
            world.now() + 200 + i * 400,
            CLIENT_B,
            vec![counter::incr(SERVER, 1, 1)],
        ));
    }
    world.run_for(15_000);

    let count = |reqs: &[u64]| {
        let mut c = SideCounts::default();
        for &r in reqs {
            match world.result(r).map(|x| &x.outcome) {
                Some(TxnOutcome::Committed { .. }) => c.committed += 1,
                Some(TxnOutcome::Aborted { .. }) => c.aborted += 1,
                Some(TxnOutcome::Unresolved) => c.unresolved += 1,
                None => c.no_outcome += 1,
            }
        }
        c
    };
    let a = count(&a_reqs);
    let b = count(&b_reqs);

    // Heal; the stale side's client can commit again via the new view.
    world.heal();
    world.run_for(8_000);
    let mut post_heal = 0;
    for _ in 0..3 {
        let req = world.submit(CLIENT_A, vec![counter::incr(SERVER, 0, 1)]);
        world.run_for(4_000);
        if matches!(world.result(req).map(|x| &x.outcome), Some(TxnOutcome::Committed { .. })) {
            post_heal += 1;
        }
    }
    world.verify().expect("safety invariants");
    (a, b, post_heal)
}

/// Run the experiment, returning the rendered table.
pub fn run() -> String {
    let (a, b, post_heal) = run_scenario(6);
    let mut table = Table::new(
        "E12 — Two active primaries after a partition (10 txns per side)",
        &["side", "committed", "aborted", "unresolved", "no outcome"],
    );
    table.row([
        "client with stale primary".to_string(),
        a.committed.to_string(),
        a.aborted.to_string(),
        a.unresolved.to_string(),
        a.no_outcome.to_string(),
    ]);
    table.row([
        "client with majority".to_string(),
        b.committed.to_string(),
        b.aborted.to_string(),
        b.unresolved.to_string(),
        b.no_outcome.to_string(),
    ]);
    table.note(&format!(
        "Claim (§4.1): the stale primary commits zero transactions — its forces \
         cannot reach a sub-majority, so every attempt aborts or stays unresolved — \
         while the majority side continues committing. After the heal the stale \
         side's client committed {post_heal}/3 follow-up transactions through the \
         new view."
    ));
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_primary_commits_nothing() {
        let (a, b, post_heal) = run_scenario(1);
        assert_eq!(a.committed, 0, "stale side must not commit");
        assert!(b.committed >= 8, "majority side keeps committing: {}", b.committed);
        assert!(post_heal >= 1, "service restored after heal");
    }

    #[test]
    fn renders() {
        assert!(run().contains("E12"));
    }
}
