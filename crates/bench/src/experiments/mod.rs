//! The paper-claim reproduction experiments (see DESIGN.md §5 for the
//! index and EXPERIMENTS.md for recorded results).
//!
//! PODC '88 papers carry no benchmark tables; the paper's evaluation is
//! a set of quantitative *claims* (Sections 3.7, 4.1, 4.2, 5, 6). Each
//! module here turns one claim into a measurable experiment with a
//! printed table; `exp_all` regenerates the full set.

pub mod a1;
pub mod a2;
pub mod a3;
pub mod a4;
pub mod a5;
pub mod a6;
pub mod a7;
pub mod e1;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e2;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod e9;

/// Run every experiment in order, returning the concatenated report.
pub fn run_all() -> String {
    let mut out = String::new();
    out.push_str(&e1::run());
    out.push_str(&e2::run());
    out.push_str(&e3::run());
    out.push_str(&e4::run());
    out.push_str(&e5::run());
    out.push_str(&e6::run());
    out.push_str(&e7::run());
    out.push_str(&e8::run());
    out.push_str(&e9::run());
    out.push_str(&e10::run());
    out.push_str(&e11::run());
    out.push_str(&e12::run());
    out.push_str(&a1::run());
    out.push_str(&a2::run());
    out.push_str(&a3::run());
    out.push_str(&a4::run());
    out.push_str(&a5::run());
    out.push_str(&a6::run());
    out.push_str(&a7::run());
    out
}
