//! A3 (ablation) — Tolerating a slow replica.
//!
//! A consequence of the sub-majority force (Section 3): the primary's
//! commit waits only for the *fastest* sub-majority of backups, so one
//! slow (e.g. remote) backup does not slow down commits. Write-all
//! voting, by contrast, waits for every replica on every write ("when
//! writes must happen at all cohorts, the loss of a single cohort can
//! cause writes to become unavailable" — and even a merely *slow* cohort
//! drags every write, Section 5).
//!
//! We make one backup's links N× slower and measure committed-write
//! latency for VR (n = 3, sub-majority 1) against write-all voting.

use crate::helpers::{run_sequential_batch, vr_world, write_ops};
use crate::table::{f2, Table};
use vsr_baselines::voting::Voting;
use vsr_core::config::CohortConfig;
use vsr_core::types::Mid;
use vsr_simnet::NetConfig;

/// Slow-link delay windows swept (base links are 1–3 ticks).
pub const SLOW_DELAYS: [(u64, u64); 4] = [(1, 3), (10, 12), (30, 35), (100, 110)];

/// VR mean write latency with one backup behind a `(min, max)` link.
///
/// The suspicion timeout is raised above the slowest link's round trip —
/// per Section 4.1's "fairly long timeout" advice — so slowness is not
/// misread as failure. (Were it not, the slow backup would simply be
/// excluded by a view change and commits would stay fast anyway.)
pub fn vr_latency_with_slow_backup(slow: (u64, u64), seed: u64) -> f64 {
    let mut cfg = CohortConfig::new();
    cfg.suspect_timeout = 400;
    let mut world = vr_world(seed, 3, NetConfig::reliable(seed), cfg);
    // Mid(1) is the bootstrap primary; slow down Mid(3)'s links to both
    // other cohorts (and the client, immaterial).
    for other in [Mid(1), Mid(2), Mid(100)] {
        world.set_link_delay(Mid(3), other, slow.0, slow.1);
    }
    run_sequential_batch(&mut world, 30, write_ops).mean_latency
}

/// Write-all voting mean write latency with one replica behind a
/// `(min, max)` link.
pub fn voting_latency_with_slow_replica(slow: (u64, u64), seed: u64) -> f64 {
    let mut voting = Voting::read_one_write_all(NetConfig::reliable(seed), 3);
    voting.set_link_delay(0, 3, slow.0, slow.1);
    let mut total = 0.0;
    for _ in 0..30 {
        total += voting.write().stats().expect("completes").latency as f64;
    }
    total / 30.0
}

/// Run the ablation, returning the rendered table.
pub fn run() -> String {
    let mut table = Table::new(
        "A3 — One slow backup: committed-write latency (n=3, base links 1-3 ticks)",
        &["slow backup link (ticks)", "VR", "voting W=all"],
    );
    for (i, slow) in SLOW_DELAYS.into_iter().enumerate() {
        table.row([
            format!("{}-{}", slow.0, slow.1),
            f2(vr_latency_with_slow_backup(slow, i as u64 + 1)),
            f2(voting_latency_with_slow_replica(slow, i as u64 + 1)),
        ]);
    }
    table.note(
        "The sub-majority force (§3) waits only for the fastest backup, so VR's \
         commit latency is flat no matter how slow the third cohort gets; a \
         write-all scheme pays the slow replica's round trip on every write. (The \
         slow backup still receives the buffer stream in background and stays \
         consistent.)",
    );
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vr_latency_flat_under_slow_backup() {
        let fast = vr_latency_with_slow_backup((1, 3), 1);
        let slow = vr_latency_with_slow_backup((100, 110), 2);
        assert!(slow < fast * 2.0, "VR insulated from the slow backup: {fast} -> {slow}");
    }

    #[test]
    fn voting_latency_tracks_slow_replica() {
        let fast = voting_latency_with_slow_replica((1, 3), 1);
        let slow = voting_latency_with_slow_replica((100, 110), 2);
        assert!(slow > fast + 100.0, "write-all waits for the slow replica: {fast} -> {slow}");
    }

    #[test]
    fn renders() {
        assert!(run().contains("A3"));
    }
}
