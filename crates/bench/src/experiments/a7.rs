//! A7 — Leased reads: read-heavy throughput with and without the
//! primary read-lease fast path, on the live thread runtime (wall
//! clock, like A6).
//!
//! DESIGN.md §16: while the primary holds lease grants from a
//! sub-majority of backups, a read-only single-group transaction is
//! served from the primary's committed state directly — no buffer
//! record, no force, no WAL append, no backup round trip. This
//! experiment measures what that buys under read-heavy closed-loop
//! load, the regime the fast path exists for:
//!
//! * committed transactions per second and p50/p99 latency, per
//!   (setup × read mix × leases on/off) cell;
//! * how much of the committed work actually rode the fast path
//!   (`leased_reads / committed`), which keeps the comparison honest —
//!   a cell where leases never formed would show a share near zero.
//!
//! `exp_a7 <path>` additionally writes the points as JSON — the
//! `BENCH_leases.json` trajectory recorded by CI. Wall-clock numbers
//! vary across machines; the claims are the *ratios* between the
//! leases-on and leases-off rows of the same setup and mix.

use super::a6::{self, Setup};
use crate::table::Table;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use vsr_app::counter;
use vsr_core::cohort::TxnOutcome;
use vsr_core::types::GroupId;

const CLIENT: GroupId = GroupId(1);
const SERVER: GroupId = GroupId(2);

/// Closed-loop client threads per cell: enough concurrency that the
/// replicated write path is actually pipelined (A6's knee), so the
/// lease speedup is measured against the *optimized* baseline, not a
/// serial strawman.
pub const CLIENTS: u32 = 8;

/// Read fractions swept: "mostly reads" and "almost only reads" — the
/// two regimes a primary-copy store with cached reads actually serves.
pub const READ_PCTS: [u32; 2] = [90, 99];

/// Lease length in cohort ticks for the leases-on cells. Long relative
/// to the heartbeat interval (20 ticks) so renewals keep the lease
/// continuously live for the whole window.
pub const LEASE_TICKS: u64 = 400;

/// Setups compared. `DurableEvery` is omitted: A6 already shows group
/// commit dominates it, so the interesting durable baseline is
/// `DurableGroup`.
pub const SETUPS: [Setup; 3] = [Setup::InMemory, Setup::DurableGroup, Setup::Networked];

/// One measured (setup, read mix, leases) cell.
#[derive(Debug, Clone, Copy)]
pub struct LeasePoint {
    /// Which cluster configuration ran.
    pub setup: &'static str,
    /// Percentage of submissions that were read-only transactions.
    pub read_pct: u32,
    /// Whether the lease fast path was enabled (`lease_ticks > 0`).
    pub leases: bool,
    /// Transactions committed inside the measurement window.
    pub committed: u64,
    /// Measurement window in milliseconds (actual, not requested).
    pub elapsed_ms: u64,
    /// Committed transactions per second.
    pub throughput: u64,
    /// Median commit latency in milliseconds (µs-resolution samples).
    pub p50_ms: f64,
    /// 99th-percentile commit latency in milliseconds (µs-resolution
    /// samples).
    pub p99_ms: f64,
    /// Read-only transactions served from the lease fast path.
    pub leased_reads: u64,
    /// Reads that asked for the fast path but fell back (no lease held
    /// at that instant).
    pub lease_read_rejected: u64,
}

fn unique_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("vsr-a7-{}-{}-{}", std::process::id(), tag, n))
}

/// Run one (setup, read mix, leases) cell: [`CLIENTS`] closed-loop
/// threads submitting a deterministic read/write interleave for
/// `window` of wall time. Writes go through the client group (the
/// coordinated two-phase path); reads are submitted straight to the
/// server group, where the primary serves them from its lease when it
/// holds one and through full replication when it does not.
pub fn measure(setup: Setup, read_pct: u32, leases: bool, window: Duration) -> LeasePoint {
    let dir = unique_dir(setup.name());
    let mut cfg = vsr_core::config::CohortConfig::new();
    if leases {
        cfg.lease_ticks = LEASE_TICKS;
    }
    let cluster = a6::build_with(setup, &dir, cfg);

    // Warm up: one committed write proves the bootstrap view formed and
    // gives every read below a value to observe.
    let mut warmed = false;
    for _ in 0..50 {
        if matches!(
            cluster.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]),
            Ok(TxnOutcome::Committed { .. })
        ) {
            warmed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(warmed, "cluster never formed its bootstrap view");
    if leases {
        // Give the first grants (piggybacked on heartbeats) a moment to
        // arrive so the window measures the steady state, not the ramp.
        std::thread::sleep(Duration::from_millis(200));
    }

    let committed = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..CLIENTS {
            let cluster = &cluster;
            let committed = &committed;
            s.spawn(move || {
                let object = u64::from(tid) + 1;
                let mut i = 0u32;
                while t0.elapsed() < window {
                    // Deterministic interleave: out of every 100
                    // submissions, `100 - read_pct` are writes.
                    let write = i % 100 < 100 - read_pct;
                    i += 1;
                    let outcome = if write {
                        cluster.submit(CLIENT, vec![counter::incr(SERVER, object, 1)])
                    } else {
                        cluster.submit(SERVER, vec![counter::read(SERVER, object)])
                    };
                    if matches!(outcome, Ok(TxnOutcome::Committed { .. })) {
                        committed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let elapsed = t0.elapsed();
    let m = cluster.metrics();
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let committed = committed.into_inner();
    let elapsed_ms = elapsed.as_millis().max(1) as u64;
    LeasePoint {
        setup: setup.name(),
        read_pct,
        leases,
        committed,
        elapsed_ms,
        throughput: committed * 1_000 / elapsed_ms,
        p50_ms: m.latency_percentile(0.50).unwrap_or(0) as f64 / 1_000.0,
        p99_ms: m.latency_percentile(0.99).unwrap_or(0) as f64 / 1_000.0,
        leased_reads: m.leased_reads,
        lease_read_rejected: m.lease_read_rejected,
    }
}

/// The full sweep: every setup × read mix × leases off/on.
pub fn measure_all(window: Duration) -> Vec<LeasePoint> {
    SETUPS
        .iter()
        .flat_map(|&setup| {
            READ_PCTS.iter().flat_map(move |&pct| {
                [false, true].into_iter().map(move |leases| measure(setup, pct, leases, window))
            })
        })
        .collect()
}

/// Render the measured points as the experiment table.
pub fn render(points: &[LeasePoint]) -> String {
    let mut table = Table::new(
        "A7 — Leased reads: read-heavy throughput with and without the primary \
         lease fast path (live runtime, wall clock)",
        &["setup", "reads", "leases", "tx/s", "p50 (ms)", "p99 (ms)", "leased reads", "rejected"],
    );
    for p in points {
        table.row([
            p.setup.to_string(),
            format!("{}%", p.read_pct),
            if p.leases { "on" } else { "off" }.to_string(),
            p.throughput.to_string(),
            format!("{:.3}", p.p50_ms),
            format!("{:.3}", p.p99_ms),
            p.leased_reads.to_string(),
            p.lease_read_rejected.to_string(),
        ]);
    }
    table.note(
        "Claim (DESIGN §16): while the primary holds grants from a sub-majority \
         of backups, read-only transactions bypass the buffer, the WAL, and the \
         backup round trip entirely, so read-heavy throughput decouples from \
         the durability and transport cost of the write path. The leases-on row \
         of each (setup, mix) pair should dominate its leases-off row, most \
         dramatically where writes are most expensive (durable-group, \
         networked) and reads most common (99%).",
    );
    table.render()
}

/// Serialize the points as the `BENCH_leases.json` trajectory.
pub fn to_json(points: &[LeasePoint]) -> String {
    let mut out = String::from(
        "{\n  \"experiment\": \"A7\",\n  \"title\": \
         \"leased reads: read-heavy throughput vs setup x mix x leases\",\n  \"points\": [\n",
    );
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"setup\": \"{}\", \"read_pct\": {}, \"leases\": {}, \
             \"committed\": {}, \"elapsed_ms\": {}, \"throughput\": {}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"leased_reads\": {}, \
             \"lease_read_rejected\": {}}}{}\n",
            p.setup,
            p.read_pct,
            p.leases,
            p.committed,
            p.elapsed_ms,
            p.throughput,
            p.p50_ms,
            p.p99_ms,
            p.leased_reads,
            p.lease_read_rejected,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Run the experiment with the standard window, returning the table.
pub fn run() -> String {
    render(&measure_all(Duration::from_millis(1_000)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leased_cell_takes_the_fast_path() {
        let p = measure(Setup::InMemory, 99, true, Duration::from_millis(500));
        assert!(p.committed > 0, "leased cell commits");
        assert!(
            p.leased_reads > 0,
            "reads must ride the lease fast path (rejected: {})",
            p.lease_read_rejected
        );
    }

    #[test]
    fn unleased_cell_never_takes_the_fast_path() {
        let p = measure(Setup::InMemory, 90, false, Duration::from_millis(300));
        assert!(p.committed > 0, "baseline cell commits");
        assert_eq!(p.leased_reads, 0, "no lease, no fast path");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let points = [measure(Setup::InMemory, 90, true, Duration::from_millis(200))];
        let json = to_json(&points);
        assert!(json.contains("\"experiment\": \"A7\""));
        assert!(json.contains("\"leases\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
