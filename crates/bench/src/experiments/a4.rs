//! A4 — Durability: fsync-policy cost and recovery time vs checkpoint
//! interval (beyond the paper: Section 4.2 argues the disk *off* the
//! critical path; the store subsystem lets us quantify the whole
//! spectrum back to a conventional forced log).
//!
//! Two questions:
//!
//! 1. What does each fsync policy cost on the commit path? In simulated
//!    time the answer is *nothing* — persists execute outside the
//!    message schedule, exactly the paper's design point — so the table
//!    reports the disk work (appends, fsyncs, bytes) each policy incurs
//!    for the same workload. Wall-clock cost is measured by the
//!    `store_wal` criterion bench.
//! 2. How does the checkpoint interval trade log-replay work against
//!    checkpoint write volume when an entire group crashes and recovers
//!    from disk?

use crate::helpers::{run_sequential_batch, write_ops, BatchCost, CLIENT, SERVER};
use crate::table::{f2, Table};
use vsr_app::counter;
use vsr_core::config::CohortConfig;
use vsr_core::module::NullModule;
use vsr_core::types::Mid;
use vsr_sim::world::{World, WorldBuilder};
use vsr_store::FsyncPolicy;

/// Checkpoint intervals swept by the recovery experiment (0 =
/// view-changes only).
pub const CHECKPOINT_INTERVALS: [u64; 5] = [0, 1, 4, 16, 64];

/// Build a 3-cohort measurement world, durable when `policy` is given.
pub fn durable_world(seed: u64, policy: Option<FsyncPolicy>, checkpoint_interval: u64) -> World {
    let mut cfg = CohortConfig::new();
    cfg.checkpoint_interval = checkpoint_interval;
    let server_mids: Vec<Mid> = (1..=3).map(Mid).collect();
    let mut builder = WorldBuilder::new(seed)
        .cohorts(cfg)
        .group(CLIENT, &[Mid(100)], || Box::new(NullModule))
        .group(SERVER, &server_mids, || Box::new(counter::CounterModule));
    if let Some(policy) = policy {
        builder = builder.durable(policy);
    }
    builder.build()
}

/// Disk work a policy incurred for a standard 30-write batch.
#[derive(Debug, Clone, Copy)]
pub struct PolicyCost {
    /// The batch measurement (latency in simulated ticks).
    pub batch: BatchCost,
    /// WAL frames appended across the group.
    pub appends: u64,
    /// Fsyncs issued across the group.
    pub fsyncs: u64,
    /// Bytes written across the group.
    pub bytes: u64,
}

/// Measure one fsync policy (or the in-memory baseline when `None`).
pub fn policy_cost(seed: u64, policy: Option<FsyncPolicy>) -> PolicyCost {
    let mut world = durable_world(seed, policy, 0);
    let batch = run_sequential_batch(&mut world, 30, write_ops);
    let m = world.metrics();
    PolicyCost {
        batch,
        appends: m.disk_appends,
        fsyncs: m.disk_fsyncs,
        bytes: m.disk_bytes_written,
    }
}

/// Outcome of a full-group crash-and-recover under one checkpoint
/// interval.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryCost {
    /// Checkpoint frames written before the crash.
    pub checkpoints: u64,
    /// Log records replayed across the three recovering cohorts.
    pub replayed: u64,
    /// Ticks from group restart until an active primary re-emerged.
    pub reform_ticks: u64,
    /// Counter value visible after recovery (must equal the txn count).
    pub recovered_value: u64,
}

/// Commit `txns` increments, crash the whole server group, recover it
/// from disk, and measure the recovery.
pub fn recovery_cost(seed: u64, checkpoint_interval: u64, txns: usize) -> RecoveryCost {
    let mut world = durable_world(seed, Some(FsyncPolicy::EveryRecord), checkpoint_interval);
    for _ in 0..txns {
        world.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]);
        world.run_for(1_500);
    }
    let checkpoints = world.metrics().checkpoints_taken;
    let mids = [Mid(1), Mid(2), Mid(3)];
    for mid in mids {
        world.crash(mid);
    }
    world.run_for(10);
    let t0 = world.now();
    for mid in mids {
        world.recover(mid);
    }
    let mut reform_ticks = u64::MAX;
    for _ in 0..600 {
        world.run_for(100);
        if world.primary_of(SERVER).is_some() {
            reform_ticks = world.now() - t0;
            break;
        }
    }
    // Read the counter back through a fresh transaction: an increment
    // that reports `txns + 1` proves every pre-crash commit survived.
    let req = world.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]);
    world.run_for(5_000);
    let recovered_value = world
        .result(req)
        .and_then(|r| match &r.outcome {
            vsr_core::cohort::TxnOutcome::Committed { results } => {
                counter::decode_value(&results[0]).ok().map(|v| v.saturating_sub(1))
            }
            _ => None,
        })
        .unwrap_or(0);
    RecoveryCost {
        checkpoints,
        replayed: world.metrics().records_replayed,
        reform_ticks,
        recovered_value,
    }
}

/// Run the experiment, returning the rendered tables.
pub fn run() -> String {
    let mut out = String::new();

    let mut policies = Table::new(
        "A4a — Fsync policy cost (n=3, 30 committed writes)",
        &["policy", "mean latency (ticks)", "appends", "fsyncs", "bytes written"],
    );
    let rows: [(&str, Option<FsyncPolicy>); 4] = [
        ("in-memory (no disk)", None),
        ("every-record", Some(FsyncPolicy::EveryRecord)),
        ("on-force", Some(FsyncPolicy::OnForce)),
        ("on-stable-viewid-only", Some(FsyncPolicy::OnStableViewIdOnly)),
    ];
    for (name, policy) in rows {
        let cost = policy_cost(7, policy);
        policies.row([
            name.to_string(),
            f2(cost.batch.mean_latency),
            cost.appends.to_string(),
            cost.fsyncs.to_string(),
            cost.bytes.to_string(),
        ]);
    }
    policies.note(
        "Commit latency is identical across policies: persists run off the \
         simulated critical path, which is exactly the Section 4.2 design point \
         (the disk never gates a commit). The policies differ in how much disk \
         work — and how much surviving state — they buy; wall-clock append cost \
         is measured by `cargo bench` (`store_wal`: SimDisk appends ~0.3–0.4 µs; \
         FileStore ~0.7 µs unsynced, ~100 µs with per-record fsync; end-to-end \
         commit batches under the default lazy policy within noise of the \
         in-memory baseline, comfortably inside the <5% budget).",
    );
    out.push_str(&policies.render());

    let mut recovery = Table::new(
        "A4b — Full-group crash: recovery vs checkpoint interval (every-record, 40 writes)",
        &["checkpoint interval", "checkpoints", "records replayed", "re-form ticks", "state kept"],
    );
    for interval in CHECKPOINT_INTERVALS {
        let r = recovery_cost(11, interval, 40);
        recovery.row([
            if interval == 0 { "view-change only".to_string() } else { interval.to_string() },
            r.checkpoints.to_string(),
            r.replayed.to_string(),
            r.reform_ticks.to_string(),
            format!("{}/40", r.recovered_value),
        ]);
    }
    recovery.note(
        "Tighter checkpoint intervals shrink the replay tail (records replayed) at \
         the cost of writing more checkpoints; re-formation time is dominated by \
         the view-change protocol, not replay, at these log sizes. Every row must \
         keep 40/40 committed transactions — durable recovery loses nothing. In \
         the paper's design this scenario is a *permanent catastrophe*: §4.2's \
         volatile cohorts would wedge forever.",
    );
    out.push_str(&recovery.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durable_commit_latency_matches_in_memory() {
        // The store sits off the simulated critical path, so the lazy
        // policy's commit latency is *identical* to no-disk — the
        // sim-time form of the "< 5% regression" acceptance bar.
        let baseline = policy_cost(3, None);
        let durable = policy_cost(3, Some(FsyncPolicy::OnStableViewIdOnly));
        assert_eq!(baseline.batch.committed, durable.batch.committed);
        assert_eq!(baseline.batch.mean_latency, durable.batch.mean_latency);
        assert_eq!(baseline.appends, 0, "no-disk world writes nothing");
        assert!(durable.appends > 0, "durable world journals records");
    }

    #[test]
    fn policies_order_by_fsync_count() {
        let every = policy_cost(5, Some(FsyncPolicy::EveryRecord));
        let force = policy_cost(5, Some(FsyncPolicy::OnForce));
        let lazy = policy_cost(5, Some(FsyncPolicy::OnStableViewIdOnly));
        assert!(every.fsyncs > force.fsyncs, "{} vs {}", every.fsyncs, force.fsyncs);
        assert!(force.fsyncs >= lazy.fsyncs, "{} vs {}", force.fsyncs, lazy.fsyncs);
    }

    #[test]
    fn checkpointing_shrinks_the_replay_tail() {
        let coarse = recovery_cost(13, 0, 12);
        let fine = recovery_cost(13, 1, 12);
        assert_eq!(coarse.recovered_value, 12, "no commit lost without checkpoints");
        assert_eq!(fine.recovered_value, 12, "no commit lost with per-record checkpoints");
        assert!(
            fine.replayed < coarse.replayed,
            "per-record checkpoints must shrink replay ({} vs {})",
            fine.replayed,
            coarse.replayed
        );
        assert!(coarse.reform_ticks < u64::MAX, "group re-formed");
        assert!(fine.reform_ticks < u64::MAX, "group re-formed");
    }

    #[test]
    fn renders() {
        let report = run();
        assert!(report.contains("A4a"));
        assert!(report.contains("A4b"));
    }
}
