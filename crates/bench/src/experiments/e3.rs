//! E3 — Commit latency: forced buffer vs forced stable storage
//! (Section 3.7).
//!
//! Claim: "For both preparing and committing, our method will be faster
//! than using non-replicated clients and servers if communication is
//! faster than writing to stable storage, which is often the case
//! provided that the number of backups is small."
//!
//! We sweep the stable-storage write latency of the unreplicated
//! baseline across a range of disk/network ratios and locate the
//! crossover against VR's (fixed) commit latency.

use crate::helpers::{run_sequential_batch, vr_world, write_ops};
use crate::table::{f2, Table};
use vsr_baselines::unreplicated::Unreplicated;
use vsr_core::config::CohortConfig;
use vsr_simnet::NetConfig;

/// Disk latencies (in ticks; network one-way delay is 1–3 ticks).
pub const DISK_LATENCIES: [u64; 7] = [1, 2, 5, 10, 20, 50, 100];

/// Measure VR's mean write-transaction latency (3 cohorts).
pub fn vr_latency(seed: u64) -> f64 {
    let mut world = vr_world(seed, 3, NetConfig::reliable(seed), CohortConfig::new());
    run_sequential_batch(&mut world, 30, write_ops).mean_latency
}

/// Measure the unreplicated baseline's mean write latency for a disk
/// latency.
pub fn unreplicated_latency(disk: u64) -> f64 {
    let mut sim = Unreplicated::new(NetConfig::reliable(3), disk);
    let mut total = 0.0;
    for _ in 0..30 {
        total += sim.write_txn().stats().expect("completes").latency as f64;
    }
    total / 30.0
}

/// Run the experiment, returning the rendered table.
pub fn run() -> String {
    let vr = vr_latency(3);
    let mut table = Table::new(
        "E3 — Committed-write latency: VR (n=3, net delay 1-3 ticks) vs unreplicated + disk",
        &["disk latency (ticks)", "unreplicated latency", "VR latency", "winner"],
    );
    for disk in DISK_LATENCIES {
        let u = unreplicated_latency(disk);
        let winner = if vr < u { "VR" } else { "unreplicated" };
        table.row([disk.to_string(), f2(u), f2(vr), winner.to_string()]);
    }
    table.note(
        "Claim (§3.7): VR wins once a stable-storage write is slower than a network \
         round trip to a sub-majority — the crossover falls where disk latency \
         passes a few network delays.",
    );
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_exists() {
        let vr = vr_latency(1);
        let fast_disk = unreplicated_latency(1);
        let slow_disk = unreplicated_latency(100);
        assert!(
            fast_disk < vr,
            "with an instant disk the unreplicated system wins ({fast_disk} vs {vr})"
        );
        assert!(vr < slow_disk, "with a slow disk VR wins ({vr} vs {slow_disk})");
    }

    #[test]
    fn unreplicated_latency_monotone_in_disk() {
        let mut last = 0.0;
        for disk in DISK_LATENCIES {
            let l = unreplicated_latency(disk);
            assert!(l >= last);
            last = l;
        }
    }

    #[test]
    fn renders() {
        assert!(run().contains("winner"));
    }
}
