//! A1 (ablation) — Failure-detection timeout tradeoff (Section 4.1).
//!
//! "To avoid such a situation, a manager should use a fairly long
//! timeout … Similarly, an underling should use a fairly long timeout
//! before it becomes a manager. In addition, it is worthwhile to mask
//! lost messages by sending duplicates, so that a lost message won't
//! trigger another view change."
//!
//! We sweep the suspicion timeout on a lossy network with one real
//! primary crash: a short timeout detects the crash quickly but
//! misfires on ordinary message loss (spurious view changes); a long
//! timeout is calm but slow to restore service.

use crate::helpers::{vr_world, CLIENT, SERVER};
use crate::table::{f2, Table};
use vsr_app::counter;
use vsr_core::cohort::TxnOutcome;
use vsr_core::config::CohortConfig;
use vsr_core::types::Mid;
use vsr_simnet::NetConfig;

/// Suspicion timeouts swept (heartbeat interval is 20 ticks).
pub const TIMEOUTS: [u64; 4] = [40, 100, 250, 600];

/// One timeout's measurements, averaged over seeds.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimeoutResult {
    /// View formations per run (1 is the necessary minimum for the
    /// injected crash; more is churn).
    pub view_formations: f64,
    /// Fraction of the 40 submissions that committed.
    pub availability: f64,
}

/// Measure one suspicion timeout over several seeds.
pub fn measure(suspect_timeout: u64, seeds: u64) -> TimeoutResult {
    let mut total = TimeoutResult::default();
    for seed in 0..seeds {
        let mut cfg = CohortConfig::new();
        cfg.suspect_timeout = suspect_timeout;
        // Lossy enough that short timeouts misfire.
        let net = NetConfig { min_delay: 1, max_delay: 12, drop_prob: 0.12, dup_prob: 0.0, seed };
        let mut world = vr_world(seed * 17 + suspect_timeout, 3, net, cfg);
        let mut reqs = Vec::new();
        for i in 0..40u64 {
            reqs.push(world.schedule_submit(
                300 + i * 500,
                CLIENT,
                vec![counter::incr(SERVER, 0, 1)],
            ));
        }
        world.schedule_crash(8_000, Mid(1));
        world.schedule_recover(16_000, Mid(1));
        world.run_until(35_000);
        let committed = reqs
            .iter()
            .filter(|&&r| {
                matches!(world.result(r).map(|x| &x.outcome), Some(TxnOutcome::Committed { .. }))
            })
            .count();
        total.view_formations += world.metrics().view_formations as f64;
        total.availability += committed as f64 / reqs.len() as f64;
    }
    TimeoutResult {
        view_formations: total.view_formations / seeds as f64,
        availability: total.availability / seeds as f64,
    }
}

/// Run the ablation, returning the rendered table.
pub fn run() -> String {
    let mut table = Table::new(
        "A1 — Suspicion timeout ablation (lossy net, one primary crash, 6 seeds)",
        &["suspect timeout (ticks)", "view formations / run", "availability"],
    );
    for timeout in TIMEOUTS {
        let r = measure(timeout, 6);
        table.row([timeout.to_string(), f2(r.view_formations), f2(r.availability)]);
    }
    table.note(
        "Claim (§4.1): short timeouts misread message loss as failure and churn \
         through needless view changes; very long timeouts keep the group calm but \
         stretch the outage after the real crash. The paper's advice — fairly long \
         timeouts plus retransmission masking — lands in the middle of this sweep.",
    );
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_timeout_churns_more() {
        let short = measure(40, 3);
        let long = measure(600, 3);
        assert!(
            short.view_formations > long.view_formations,
            "short {} vs long {}",
            short.view_formations,
            long.view_formations
        );
    }

    #[test]
    fn renders() {
        assert!(run().contains("A1"));
    }
}
