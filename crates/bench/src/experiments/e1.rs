//! E1 — Normal-case cost of replication (Section 3.7).
//!
//! Claim: "Remote calls in our system run only at the primary and need
//! not involve the backups and therefore their performance is the same
//! as in a non-replicated system."
//!
//! We measure commit latency and per-transaction messages for VR with
//! 3 and 5 cohorts against an unreplicated server (with and without
//! forced stable-storage writes). The expected shape: VR's *latency* is
//! close to the unreplicated no-disk server (the client-visible path is
//! one call round trip plus one forced buffer round trip) and clearly
//! better than an unreplicated server whose stable storage is slower
//! than the network; VR pays extra *background* messages for
//! replication.

use crate::helpers::{read_ops, run_sequential_batch, vr_world, write_ops};
use crate::table::{f2, Table};
use vsr_baselines::unreplicated::Unreplicated;
use vsr_core::config::CohortConfig;
use vsr_simnet::NetConfig;

/// Disk latency (ticks) for the "disk = 10× net" unreplicated row.
const SLOW_DISK: u64 = 20;

/// Run the experiment, returning the rendered table.
pub fn run() -> String {
    let mut table = Table::new(
        "E1 — Normal-case cost: VR vs unreplicated (50 write txns, 50 read txns)",
        &["system", "write latency", "write msgs/txn (fg)", "read latency", "read msgs/txn (fg)"],
    );

    for n in [3u64, 5] {
        let mut world = vr_world(n, n, NetConfig::reliable(n), CohortConfig::new());
        let writes = run_sequential_batch(&mut world, 50, write_ops);
        let mut world = vr_world(n + 10, n, NetConfig::reliable(n), CohortConfig::new());
        let reads = run_sequential_batch(&mut world, 50, read_ops);
        table.row([
            format!("VR n={n}"),
            f2(writes.mean_latency),
            format!("{} ({})", f2(writes.msgs_per_txn), f2(writes.fg_msgs_per_txn)),
            f2(reads.mean_latency),
            format!("{} ({})", f2(reads.msgs_per_txn), f2(reads.fg_msgs_per_txn)),
        ]);
    }

    for (label, disk) in
        [("unreplicated (ideal disk)", 1u64), ("unreplicated (disk=10x net)", SLOW_DISK)]
    {
        let mut sim = Unreplicated::new(NetConfig::reliable(1), disk);
        let mut wl = 0.0;
        let mut wm = 0.0;
        for _ in 0..50 {
            let s = sim.write_txn().stats().expect("completes");
            wl += s.latency as f64;
            wm += s.messages as f64;
        }
        let mut rl = 0.0;
        let mut rm = 0.0;
        for _ in 0..50 {
            let s = sim.read_txn().stats().expect("completes");
            rl += s.latency as f64;
            rm += s.messages as f64;
        }
        table.row([
            label.to_string(),
            f2(wl / 50.0),
            format!("{} ({})", f2(wm / 50.0), f2(wm / 50.0)),
            f2(rl / 50.0),
            format!("{} ({})", f2(rm / 50.0), f2(rm / 50.0)),
        ]);
    }

    table.note(
        "Claim (§3.7): calls execute only at the primary, so VR's client-visible \
         cost tracks the non-replicated system; commit is one forced buffer round \
         trip, beating an unreplicated system whose disk is slower than the network. \
         Background columns show the replication stream the backups receive.",
    );
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vr_write_latency_beats_slow_disk_unreplicated() {
        let mut world = vr_world(1, 3, NetConfig::reliable(1), CohortConfig::new());
        let vr = run_sequential_batch(&mut world, 20, write_ops);
        let mut unrep = Unreplicated::new(NetConfig::reliable(1), SLOW_DISK);
        let mut total = 0.0;
        for _ in 0..20 {
            total += unrep.write_txn().stats().unwrap().latency as f64;
        }
        let unrep_mean = total / 20.0;
        assert!(
            vr.mean_latency < unrep_mean,
            "VR ({}) should beat slow-disk unreplicated ({unrep_mean})",
            vr.mean_latency
        );
    }

    #[test]
    fn vr_read_only_txns_are_cheaper_than_writes() {
        let mut world = vr_world(2, 3, NetConfig::reliable(1), CohortConfig::new());
        let writes = run_sequential_batch(&mut world, 20, write_ops);
        let mut world = vr_world(3, 3, NetConfig::reliable(1), CohortConfig::new());
        let reads = run_sequential_batch(&mut world, 20, read_ops);
        assert!(reads.fg_msgs_per_txn < writes.fg_msgs_per_txn);
    }

    #[test]
    fn render_contains_all_rows() {
        let s = run();
        assert!(s.contains("VR n=3"));
        assert!(s.contains("VR n=5"));
        assert!(s.contains("unreplicated (ideal disk)"));
    }
}
