//! E4 — View change cost (Sections 4.1 and 5).
//!
//! Claims: "One round of messages is all that is needed when the manager
//! is also the primary in the last active view; otherwise, one round
//! plus one message is needed." And: "The virtual partitions protocol
//! requires three phases … Our view change protocol is a simplification
//! and modification of this protocol and has better performance."
//!
//! Two VR scenarios are measured from the real protocol:
//!
//! * a backup crashes → the *old primary* manages the change and remains
//!   primary (one round);
//! * the primary crashes → a backup manages, sends one `init-view`
//!   message to the chosen primary (one round + one message).
//!
//! The virtual-partitions baseline runs its three phases over the same
//! network.

use crate::helpers::{server_mids, vr_world, CLIENT, SERVER};
use crate::table::{f2, Table};
use vsr_app::counter;
use vsr_baselines::virtual_partitions::VirtualPartitions;
use vsr_core::cohort::Observation;
use vsr_core::config::CohortConfig;
use vsr_simnet::NetConfig;

/// One measured view change.
#[derive(Debug, Clone, Copy)]
pub struct ViewChangeCost {
    /// Ticks from the first `ViewChangeStarted` after the fault to the
    /// new primary's `ViewChanged`.
    pub latency: u64,
    /// View change protocol messages sent (invites, acceptances,
    /// init-view).
    pub messages: u64,
}

/// Measure a VR view change: crash the primary (`crash_primary`) or a
/// backup (`!crash_primary`) and observe the reorganization.
pub fn measure_vr(n: u64, crash_primary: bool, seed: u64) -> ViewChangeCost {
    measure_vr_with(n, crash_primary, seed, false)
}

/// Like [`measure_vr`] with the Section 4.1 unilateral-exclusion
/// optimization toggled.
pub fn measure_vr_with(n: u64, crash_primary: bool, seed: u64, unilateral: bool) -> ViewChangeCost {
    let mut cfg = CohortConfig::new();
    cfg.unilateral_exclusion = unilateral;
    let mut world = vr_world(seed, n, NetConfig::reliable(seed), cfg);
    // Commit something first so the group is warm.
    world.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]);
    world.run_for(2_000);
    let primary = world.primary_of(SERVER).expect("primary exists");
    let victim = if crash_primary {
        primary
    } else {
        *server_mids(n).iter().find(|&&m| m != primary).expect("backup exists")
    };
    let crash_at = world.now();
    let msgs_before = world.metrics().view_change_msgs;
    world.crash(victim);
    world.run_for(10_000);
    // With unilateral exclusion there is no ViewChangeStarted event;
    // measure from the crash itself minus the detection delay by using
    // the primary's ViewChanged directly in that case.
    let started = world
        .observations()
        .iter()
        .find(|(t, o)| *t >= crash_at && matches!(o, Observation::ViewChangeStarted { .. }))
        .map(|(t, _)| *t);
    let formed = world
        .observations()
        .iter()
        .find(|(t, o)| {
            *t >= crash_at && matches!(o, Observation::ViewChanged { is_primary: true, .. })
        })
        .map(|(t, _)| *t)
        .expect("view formed");
    ViewChangeCost {
        latency: formed - started.unwrap_or(formed),
        messages: world.metrics().view_change_msgs - msgs_before,
    }
}

/// Run the experiment, returning the rendered table.
pub fn run() -> String {
    let mut table = Table::new(
        "E4 — View change cost: VR (measured) vs virtual partitions (3 phases)",
        &[
            "n",
            "VR mgr=primary (msgs / ticks)",
            "VR mgr=backup (msgs / ticks)",
            "VR unilateral excl. (msgs / ticks)",
            "virtual partitions (msgs / ticks)",
            "VP analytic msgs",
        ],
    );
    for n in [3u64, 5, 7] {
        let keep = measure_vr(n, false, n);
        let change = measure_vr(n, true, n + 50);
        let unilateral = measure_vr_with(n, false, n + 90, true);
        let mut vp = VirtualPartitions::new(NetConfig::reliable(n), n);
        let vp_cost = vp.view_change().stats().expect("completes");
        table.row([
            n.to_string(),
            format!("{} / {}", keep.messages, keep.latency),
            format!("{} / {}", change.messages, change.latency),
            format!("{} / {}", unilateral.messages, unilateral.latency),
            format!("{} / {}", vp_cost.messages, vp_cost.latency),
            f2(VirtualPartitions::analytic_messages(n) as f64),
        ]);
    }
    table.note(
        "Claim (§4.1, §5): VR completes a view change in one round of \
         invitations/acceptances (≈2(n-1) messages, plus one init-view when the \
         manager is not the new primary; state transfer rides the new view's \
         ordinary buffer stream). With the §4.1 unilateral-exclusion optimization, \
         losing a backup costs zero view-change-protocol messages — the primary \
         starts the new view directly. Virtual partitions pays three phases \
         including an all-to-all state exchange (4(n-1)+n(n-1) messages), growing \
         quadratically.",
    );
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vr_cheaper_than_virtual_partitions() {
        let n = 5;
        let vr = measure_vr(n, true, 1);
        assert!(
            vr.messages < VirtualPartitions::analytic_messages(n),
            "VR view change ({}) uses fewer messages than VP ({})",
            vr.messages,
            VirtualPartitions::analytic_messages(n)
        );
    }

    #[test]
    fn manager_primary_case_is_no_more_expensive() {
        let n = 3;
        let keep = measure_vr(n, false, 2);
        let change = measure_vr(n, true, 3);
        // The primary-crash case needs at least as many protocol
        // messages (the extra init-view plus re-invitations from
        // concurrent managers).
        assert!(keep.messages <= change.messages + 2);
    }

    #[test]
    fn vp_messages_grow_quadratically() {
        assert!(
            VirtualPartitions::analytic_messages(7) as f64
                > 2.0 * VirtualPartitions::analytic_messages(5) as f64 - 10.0
        );
    }

    #[test]
    fn renders() {
        assert!(run().contains("E4"));
    }
}
