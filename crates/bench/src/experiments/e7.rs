//! E7 — The primary as a bottleneck, and primary placement (Section 5).
//!
//! Claim: "reading in our scheme must happen at the primary, which could
//! become a performance bottleneck. On the other hand, the real source
//! of a bottleneck is a node, not a cohort, and we can organize our
//! system so that primaries of different groups usually run on different
//! nodes."
//!
//! We measure per-cohort message load (deliveries) for read-heavy and
//! write-heavy workloads, showing the primary's load share within one
//! group, and then show that with several groups the total primary load
//! spreads across distinct cohorts/nodes.

use crate::helpers::CLIENT;
use crate::table::{f2, Table};
use vsr_app::counter;

use vsr_core::module::NullModule;
use vsr_core::types::{GroupId, Mid};
use vsr_sim::world::WorldBuilder;
use vsr_simnet::NetConfig;

/// Per-group load measurement.
#[derive(Debug, Clone, Copy)]
pub struct LoadShare {
    /// Messages delivered to the primary.
    pub primary: u64,
    /// Mean messages delivered per backup.
    pub backup_mean: f64,
}

/// Measure load share within a single group of size `n` for a read
/// fraction.
pub fn single_group_load(n: u64, read_fraction: f64, seed: u64) -> LoadShare {
    let server = GroupId(2);
    let mids: Vec<Mid> = (1..=n).map(Mid).collect();
    let mut world = WorldBuilder::new(seed)
        .net(NetConfig::reliable(seed))
        .group(CLIENT, &[Mid(100)], || Box::new(NullModule))
        .group(server, &mids, || Box::new(counter::CounterModule))
        .build();
    let schedule = vsr_sim::workload::kv_like(server, read_fraction, 60, seed);
    for (at, ops) in schedule {
        world.schedule_submit(at, CLIENT, ops);
    }
    world.run_until(40_000);
    let primary = world.primary_of(server).expect("healthy group");
    let primary_load = world.delivered_to(primary);
    let backups: Vec<u64> =
        mids.iter().filter(|&&m| m != primary).map(|&m| world.delivered_to(m)).collect();
    LoadShare {
        primary: primary_load,
        backup_mean: backups.iter().sum::<u64>() as f64 / backups.len() as f64,
    }
}

/// Measure total per-cohort load with `g` groups whose primaries land on
/// distinct cohorts; returns (max cohort load, mean cohort load).
pub fn multi_group_spread(g: u64, seed: u64) -> (u64, f64) {
    let mut builder =
        WorldBuilder::new(seed)
            .net(NetConfig::reliable(seed))
            .group(CLIENT, &[Mid(100)], || Box::new(NullModule));
    let mut all_mids = Vec::new();
    for gi in 0..g {
        let group = GroupId(10 + gi);
        let mids: Vec<Mid> = (1..=3).map(|i| Mid(gi * 10 + i)).collect();
        all_mids.extend(mids.clone());
        builder = builder.group(group, &mids, || Box::new(counter::CounterModule));
    }
    let mut world = builder.build();
    for gi in 0..g {
        let group = GroupId(10 + gi);
        for i in 0..30u64 {
            world.schedule_submit(200 + i * 600 + gi * 37, CLIENT, vec![counter::read(group, 0)]);
        }
    }
    world.run_until(40_000);
    let loads: Vec<u64> = all_mids.iter().map(|&m| world.delivered_to(m)).collect();
    let max = loads.iter().copied().max().unwrap_or(0);
    let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    (max, mean)
}

/// Run the experiment, returning the rendered table.
pub fn run() -> String {
    let mut table = Table::new(
        "E7 — Primary load share (messages delivered; 60 txns)",
        &["configuration", "primary load", "mean backup load", "primary/backup ratio"],
    );
    for n in [3u64, 5, 7] {
        for (label, rf) in [("reads", 1.0), ("writes", 0.0)] {
            let load = single_group_load(n, rf, n + 1);
            table.row([
                format!("n={n}, 100% {label}"),
                load.primary.to_string(),
                f2(load.backup_mean),
                f2(load.primary as f64 / load.backup_mean.max(1.0)),
            ]);
        }
    }
    let mut spread = Table::new(
        "E7b — Spreading primaries across groups (read-only workload, 30 txns/group)",
        &["groups", "max cohort load", "mean cohort load", "max/mean"],
    );
    for g in [1u64, 2, 4] {
        let (max, mean) = multi_group_spread(g, g + 3);
        spread.row([g.to_string(), max.to_string(), f2(mean), f2(max as f64 / mean.max(1.0))]);
    }
    spread.note(
        "Claim (§5): within a group the primary handles every call, so its load \
         exceeds a backup's — the potential bottleneck. Across groups, each group's \
         primary is a different cohort (node), so aggregate load spreads: the \
         max/mean cohort load ratio stays flat as groups are added instead of \
         concentrating on one node.",
    );
    format!("{}{}", table.render(), spread.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_carries_more_load_than_backups() {
        let load = single_group_load(3, 1.0, 1);
        assert!(
            load.primary as f64 > load.backup_mean,
            "primary {} > backup mean {}",
            load.primary,
            load.backup_mean
        );
    }

    #[test]
    fn spread_ratio_does_not_grow_with_groups() {
        let (max1, mean1) = multi_group_spread(1, 1);
        let (max4, mean4) = multi_group_spread(4, 2);
        let r1 = max1 as f64 / mean1.max(1.0);
        let r4 = max4 as f64 / mean4.max(1.0);
        assert!(r4 <= r1 * 1.5, "load stays spread: {r1} vs {r4}");
    }

    #[test]
    fn renders() {
        assert!(run().contains("E7"));
    }
}
