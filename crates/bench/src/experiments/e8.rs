//! E8 — The prepare fast path (Section 3.7).
//!
//! Claim: "We expect that prepare messages are usually processed
//! entirely at the primary because the needed 'completed-call' event
//! records for remote calls of the preparing transaction will already be
//! stored at a sub-majority of cohorts; otherwise, the primary must wait
//! while the relevant part of the buffer is forced to the backups."
//!
//! The background flush interval controls how quickly records reach the
//! backups, and the transaction's shape controls how much slack each
//! record has before the prepare arrives. We sweep both and report the
//! fraction of prepares that completed without waiting for a force.

use crate::helpers::{vr_world, CLIENT, SERVER};
use crate::table::{f2o, Table};
use vsr_app::counter;
use vsr_core::config::CohortConfig;
use vsr_simnet::NetConfig;

/// Flush intervals swept (ticks; 0 = send on every add).
pub const FLUSH_INTERVALS: [u64; 5] = [0, 2, 5, 10, 30];

/// Measure the fast-path fraction for a flush interval and per-txn call
/// count.
pub fn fast_fraction(flush: u64, calls_per_txn: u64, seed: u64) -> Option<f64> {
    let mut cfg = CohortConfig::new();
    cfg.buffer_flush_interval = flush;
    let mut world = vr_world(seed, 3, NetConfig::reliable(seed), cfg);
    for _ in 0..30 {
        let ops = (0..calls_per_txn).map(|c| counter::incr(SERVER, c, 1)).collect::<Vec<_>>();
        world.submit(CLIENT, ops);
        world.run_for(1_500);
    }
    world.metrics().prepare_fast_fraction()
}

/// Run the experiment, returning the rendered table.
pub fn run() -> String {
    let mut table = Table::new(
        "E8 — Fraction of prepares processed without waiting for a force",
        &["flush interval (ticks)", "1-call txns", "3-call txns", "5-call txns"],
    );
    for flush in FLUSH_INTERVALS {
        table.row([
            flush.to_string(),
            f2o(fast_fraction(flush, 1, flush + 1)),
            f2o(fast_fraction(flush, 3, flush + 2)),
            f2o(fast_fraction(flush, 5, flush + 3)),
        ]);
    }
    table.note(
        "Claim (§3.7): with prompt background streaming (small flush interval) and \
         multi-call transactions (earlier records have slack while later calls run), \
         most prepares find their records already at a sub-majority and answer \
         without waiting. A lazy flush or a single-call transaction forces the \
         prepare to wait.",
    );
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prompt_flush_with_multicall_txns_is_mostly_fast() {
        let frac = fast_fraction(0, 3, 1).expect("prepares happened");
        assert!(frac > 0.5, "fast-path fraction {frac}");
    }

    #[test]
    fn lazy_flush_forces_waits() {
        let lazy = fast_fraction(30, 1, 2).expect("prepares happened");
        let prompt = fast_fraction(0, 3, 3).expect("prepares happened");
        assert!(lazy < prompt, "lazy flush ({lazy}) waits more often than prompt ({prompt})");
    }

    #[test]
    fn renders() {
        assert!(run().contains("E8"));
    }
}
