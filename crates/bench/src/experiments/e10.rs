//! E10 — Catastrophes: simultaneous crashes and permanent view loss
//! (Section 4.2).
//!
//! Claim: "if a majority of cohorts are crashed 'simultaneously,' we may
//! lose information about the module group's state … a catastrophe does
//! not cause a group to enter a new view missing some needed
//! information. Rather, it causes the algorithm to never again form a
//! new view."
//!
//! We crash `k` randomly chosen cohorts of an `n`-cohort group at the
//! same instant, recover them shortly after, and test whether a view
//! ever forms again. With `k ≤ f` nothing is lost; with `k ≥ majority`
//! the group survives only when the surviving cohorts happen to include
//! the primary (formation rule 3) — losing the primary and a majority of
//! the group permanently wedges it, exactly as the paper warns.

use crate::helpers::{server_mids, vr_world, CLIENT, SERVER};
use crate::table::{f2, Table};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use vsr_app::counter;
use vsr_core::config::CohortConfig;
use vsr_simnet::NetConfig;

/// Outcome over seeds: fraction of runs permanently stuck.
pub fn stuck_fraction(n: u64, k: usize, seeds: u64) -> f64 {
    let mut stuck = 0u64;
    for seed in 0..seeds {
        let mut world = vr_world(seed * 131 + n, n, NetConfig::reliable(seed), CohortConfig::new());
        // Commit something so there is state to lose.
        world.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]);
        world.run_for(2_000);
        let mut rng = SmallRng::seed_from_u64(seed * 977 + k as u64);
        let mut victims = server_mids(n);
        victims.shuffle(&mut rng);
        victims.truncate(k);
        for &v in &victims {
            world.crash(v);
        }
        world.run_for(500);
        for &v in &victims {
            world.recover(v);
        }
        world.run_for(25_000);
        if world.primary_of(SERVER).is_none() {
            stuck += 1;
        }
    }
    stuck as f64 / seeds as f64
}

/// Run the experiment, returning the rendered table.
pub fn run() -> String {
    let seeds = 12;
    let mut table = Table::new(
        "E10 — Fraction of runs permanently stuck after k simultaneous crashes (12 seeds)",
        &["n", "k=1", "k=2", "k=3", "k=n (all)"],
    );
    for n in [3u64, 5] {
        let all = n as usize;
        table.row([
            n.to_string(),
            f2(stuck_fraction(n, 1, seeds)),
            f2(stuck_fraction(n, 2, seeds)),
            f2(stuck_fraction(n, 3, seeds)),
            f2(stuck_fraction(n, all, seeds)),
        ]);
    }
    table.note(
        "Claim (§4.2): k ≤ f crashes never wedge the group. Once a majority crashes \
         simultaneously the group survives only if the primary was among the \
         survivors (formation rule 3); losing everyone is always fatal. The paper's \
         remedies — stable storage at the primary, or background writes to \
         non-volatile store — would convert crashed acceptances into normal ones \
         and eliminate these catastrophes at the cost of disk writes.",
    );
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minority_crashes_never_wedge() {
        assert_eq!(stuck_fraction(3, 1, 6), 0.0);
        assert_eq!(stuck_fraction(5, 2, 4), 0.0);
    }

    #[test]
    fn total_crash_always_wedges() {
        assert_eq!(stuck_fraction(3, 3, 4), 1.0);
    }

    #[test]
    fn majority_crash_sometimes_wedges() {
        let f = stuck_fraction(3, 2, 10);
        assert!(f > 0.0, "losing the primary+backup wedges some runs: {f}");
        assert!(f < 1.0, "runs where the primary survived recover: {f}");
    }

    #[test]
    fn renders() {
        assert!(run().contains("E10"));
    }
}
