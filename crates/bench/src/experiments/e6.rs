//! E6 — Availability under failures (Sections 1 and 5).
//!
//! Claims: VR masks up to `f` of `2f+1` crashes and partitions (with a
//! short reorganization outage); Tandem-style pairs "can survive only a
//! single failure"; write-all voting loses write availability when any
//! single cohort is down.
//!
//! Each scheme attempts a write every 500 ticks for 30 000 ticks under
//! four fault scenarios; availability is the fraction of attempts that
//! complete.

use crate::helpers::{vr_world, CLIENT, SERVER};
use crate::table::{f2, Table};
use vsr_app::counter;
use vsr_baselines::primary_pair::PrimaryPair;
use vsr_baselines::unreplicated::Unreplicated;
use vsr_baselines::voting::Voting;
use vsr_core::cohort::TxnOutcome;
use vsr_core::config::CohortConfig;
use vsr_core::types::Mid;
use vsr_simnet::NetConfig;

/// Fault scenarios applied to each scheme's replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// No faults.
    Healthy,
    /// Replica #2 (a backup in VR's bootstrap view) is down the whole
    /// time.
    OneDown,
    /// Replica #1 (VR's bootstrap primary) crashes at t=5000 and
    /// recovers at t=20000.
    PrimaryCrash,
    /// Two replicas down from t=5000 to t=20000.
    TwoDown,
}

impl Scenario {
    /// All scenarios in table order.
    pub fn all() -> [Scenario; 4] {
        [Scenario::Healthy, Scenario::OneDown, Scenario::PrimaryCrash, Scenario::TwoDown]
    }

    /// Column label.
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::Healthy => "healthy",
            Scenario::OneDown => "1 backup down",
            Scenario::PrimaryCrash => "primary crash+recover",
            Scenario::TwoDown => "2 of 3 down (15k ticks)",
        }
    }
}

const ATTEMPTS: u64 = 60;
const INTERVAL: u64 = 500;
const END: u64 = ATTEMPTS * INTERVAL + 10_000;

/// VR availability under a scenario (n = 3).
pub fn vr_availability(scenario: Scenario, seed: u64) -> f64 {
    let mut world = vr_world(seed, 3, NetConfig::reliable(seed), CohortConfig::new());
    match scenario {
        Scenario::Healthy => {}
        Scenario::OneDown => world.crash(Mid(2)),
        Scenario::PrimaryCrash => {
            world.schedule_crash(5_000, Mid(1));
            world.schedule_recover(20_000, Mid(1));
        }
        Scenario::TwoDown => {
            world.schedule_crash(5_000, Mid(2));
            world.schedule_crash(5_000, Mid(3));
            world.schedule_recover(20_000, Mid(2));
            world.schedule_recover(20_000, Mid(3));
        }
    }
    let mut reqs = Vec::new();
    for i in 0..ATTEMPTS {
        reqs.push(world.schedule_submit(
            500 + i * INTERVAL,
            CLIENT,
            vec![counter::incr(SERVER, 0, 1)],
        ));
    }
    world.run_until(END);
    let committed = reqs
        .iter()
        .filter(|&&r| {
            matches!(world.result(r).map(|x| &x.outcome), Some(TxnOutcome::Committed { .. }))
        })
        .count();
    committed as f64 / ATTEMPTS as f64
}

fn baseline_availability(mut attempt: impl FnMut(u64) -> bool) -> f64 {
    let mut ok = 0u64;
    for i in 0..ATTEMPTS {
        if attempt(500 + i * INTERVAL) {
            ok += 1;
        }
    }
    ok as f64 / ATTEMPTS as f64
}

fn in_outage(t: u64) -> bool {
    (5_000..20_000).contains(&t)
}

/// Voting (write-all) availability.
pub fn voting_write_all_availability(scenario: Scenario) -> f64 {
    let mut v = Voting::read_one_write_all(NetConfig::reliable(1), 3);
    let mut down: Vec<u64> = Vec::new();
    baseline_availability(|t| {
        let want_down: Vec<u64> = match scenario {
            Scenario::Healthy => vec![],
            Scenario::OneDown => vec![2],
            Scenario::PrimaryCrash => {
                if in_outage(t) {
                    vec![1]
                } else {
                    vec![]
                }
            }
            Scenario::TwoDown => {
                if in_outage(t) {
                    vec![2, 3]
                } else {
                    vec![]
                }
            }
        };
        for &r in &down {
            if !want_down.contains(&r) {
                v.recover(r);
            }
        }
        for &r in &want_down {
            if !down.contains(&r) {
                v.crash(r);
            }
        }
        down = want_down;
        v.write().is_done()
    })
}

/// Voting (majority) availability.
pub fn voting_majority_availability(scenario: Scenario) -> f64 {
    let mut v = Voting::majority(NetConfig::reliable(1), 3);
    let mut down: Vec<u64> = Vec::new();
    baseline_availability(|t| {
        let want_down: Vec<u64> = match scenario {
            Scenario::Healthy => vec![],
            Scenario::OneDown => vec![2],
            Scenario::PrimaryCrash => {
                if in_outage(t) {
                    vec![1]
                } else {
                    vec![]
                }
            }
            Scenario::TwoDown => {
                if in_outage(t) {
                    vec![2, 3]
                } else {
                    vec![]
                }
            }
        };
        for &r in &down {
            if !want_down.contains(&r) {
                v.recover(r);
            }
        }
        for &r in &want_down {
            if !down.contains(&r) {
                v.crash(r);
            }
        }
        down = want_down;
        v.write().is_done()
    })
}

/// Primary/backup pair availability (only two replicas exist; the
/// "TwoDown" scenario kills both, which is fatal even after recovery).
pub fn pair_availability(scenario: Scenario) -> f64 {
    let mut p = PrimaryPair::new(NetConfig::reliable(1));
    let mut down: Vec<u64> = Vec::new();
    baseline_availability(|t| {
        let want_down: Vec<u64> = match scenario {
            Scenario::Healthy => vec![],
            Scenario::OneDown => vec![2],
            Scenario::PrimaryCrash => {
                if in_outage(t) {
                    vec![1]
                } else {
                    vec![]
                }
            }
            Scenario::TwoDown => {
                if in_outage(t) {
                    vec![1, 2]
                } else {
                    vec![]
                }
            }
        };
        for &r in &down {
            if !want_down.contains(&r) {
                p.recover(r);
            }
        }
        for &r in &want_down {
            if !down.contains(&r) {
                p.crash(r);
            }
        }
        down = want_down;
        p.write().is_done()
    })
}

/// Unreplicated availability (one server; any crash is an outage).
pub fn unreplicated_availability(scenario: Scenario) -> f64 {
    let mut u = Unreplicated::new(NetConfig::reliable(1), 5);
    baseline_availability(|t| {
        let server_down = match scenario {
            Scenario::Healthy => false,
            Scenario::OneDown => false, // "backup" concept doesn't exist
            Scenario::PrimaryCrash | Scenario::TwoDown => in_outage(t),
        };
        if server_down {
            false
        } else {
            u.write_txn().is_done()
        }
    })
}

/// Run the experiment, returning the rendered table.
pub fn run() -> String {
    let mut table = Table::new(
        "E6 — Write availability (fraction of 60 attempts over 30k ticks)",
        &[
            "scheme",
            Scenario::Healthy.label(),
            Scenario::OneDown.label(),
            Scenario::PrimaryCrash.label(),
            Scenario::TwoDown.label(),
        ],
    );
    let vr: Vec<f64> = Scenario::all().iter().map(|&s| vr_availability(s, 9)).collect();
    table.row(["VR (n=3)".to_string(), f2(vr[0]), f2(vr[1]), f2(vr[2]), f2(vr[3])]);
    type AvailabilityFn = fn(Scenario) -> f64;
    let rows: [(&str, AvailabilityFn); 4] = [
        ("voting W=all (n=3)", voting_write_all_availability),
        ("voting majority (n=3)", voting_majority_availability),
        ("primary/backup pair", pair_availability),
        ("unreplicated", unreplicated_availability),
    ];
    for (label, f) in rows {
        let vals: Vec<f64> = Scenario::all().iter().map(|&s| f(s)).collect();
        table.row([label.to_string(), f2(vals[0]), f2(vals[1]), f2(vals[2]), f2(vals[3])]);
    }
    table.note(
        "Claims: VR masks any single failure (short reorganization dip on a primary \
         crash, full service with a backup down). Write-all voting loses all write \
         availability with one cohort down (§5). The Tandem-style pair survives one \
         failure but never recovers from losing both (§5). VR also cannot operate \
         without a majority — but recovers when cohorts return.",
    );
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vr_full_availability_with_backup_down() {
        assert_eq!(vr_availability(Scenario::OneDown, 1), 1.0);
    }

    #[test]
    fn vr_recovers_after_primary_crash() {
        // The reorganization completes within the clients' retry budget,
        // so availability stays near-perfect; at most a couple of
        // attempts land inside the detection window and abort.
        let a = vr_availability(Scenario::PrimaryCrash, 2);
        assert!(a >= 0.9, "almost all attempts commit despite the outage: {a}");
    }

    #[test]
    fn write_all_voting_blocked_by_one_down() {
        assert_eq!(voting_write_all_availability(Scenario::OneDown), 0.0);
        assert!(voting_majority_availability(Scenario::OneDown) > 0.99);
    }

    #[test]
    fn pair_dies_permanently_after_double_failure() {
        let a = pair_availability(Scenario::TwoDown);
        // Available before the outage only; never again after both die.
        let before = 5_000 / INTERVAL;
        assert!(a <= before as f64 / ATTEMPTS as f64 + 0.01, "pair never recovers: {a}");
    }

    #[test]
    fn renders() {
        assert!(run().contains("E6"));
    }
}
