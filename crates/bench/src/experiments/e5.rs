//! E5 — The force-on-call tradeoff (Section 6).
//!
//! Claim: "There is a tradeoff here between loss of information in view
//! changes and speed of processing calls. For example, if
//! 'completed call' records were forced to the backups before the call
//! returned, there would be no aborts due to view changes, but calls
//! would be processed more slowly."
//!
//! We run the same crash-laced workload in both modes
//! (`eager_force_calls` on/off) with a deliberately lazy background
//! flush, and measure commit latency and the abort breakdown.

use crate::helpers::{vr_world, CLIENT, SERVER};
use crate::table::{f2, f2o, Table};
use vsr_app::counter;
use vsr_core::cohort::{AbortReason, TxnOutcome};
use vsr_core::config::CohortConfig;
use vsr_core::types::Mid;
use vsr_simnet::NetConfig;

/// Results of one mode's run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModeResult {
    /// Committed transactions.
    pub committed: u64,
    /// Aborts caused by information loss at prepare (refused prepares).
    pub prepare_refused: u64,
    /// Other aborts (timeouts during the outage window).
    pub other_aborts: u64,
    /// Mean commit latency.
    pub mean_latency: Option<f64>,
}

/// Run the crash-laced workload in one mode.
///
/// The transactions are long (six calls each) so that the crash of the
/// server primary lands *mid-transaction*: calls completed before the
/// crash have unforced records (in background mode) that die with the
/// primary, and the transaction — which survives the outage thanks to a
/// generous call-retry budget — is then refused at prepare because its
/// pset is incompatible with the new view's history.
pub fn run_mode(eager: bool, seed: u64) -> ModeResult {
    let mut cfg = CohortConfig::new();
    cfg.eager_force_calls = eager;
    // A very lazy background flush widens the window in which an
    // unforced completed-call record can be lost with its primary.
    cfg.buffer_flush_interval = 60;
    // Let calls ride out the reorganization instead of aborting.
    cfg.call_attempts = 8;
    let mut world = vr_world(seed, 3, NetConfig::reliable(seed), cfg);

    // 12 long transactions; crash the serving primary three times, timed
    // to land mid-transaction.
    let mut reqs = Vec::new();
    for i in 0..12u64 {
        let ops = (0..6).map(|c| counter::incr(SERVER, (i * 6 + c) % 8, 1)).collect();
        reqs.push(world.schedule_submit(500 + i * 1_500, CLIENT, ops));
    }
    for (crash_at, recover_at) in [(2_030, 5_000), (8_030, 11_000), (14_030, 17_000)] {
        // Crash the bootstrap primary id each time; if a view change has
        // moved the primary this still perturbs the group.
        world.schedule_crash(crash_at, Mid(1));
        world.schedule_recover(recover_at, Mid(1));
    }
    world.run_until(60_000);

    let mut result = ModeResult::default();
    let mut latencies = Vec::new();
    for req in reqs {
        match world.result(req).map(|r| (&r.outcome, r.completed_at, r.submitted_at)) {
            Some((TxnOutcome::Committed { .. }, done, start)) => {
                result.committed += 1;
                latencies.push(done - start);
            }
            Some((TxnOutcome::Aborted { reason: AbortReason::PrepareRefused { .. } }, _, _)) => {
                result.prepare_refused += 1
            }
            Some((TxnOutcome::Aborted { .. }, _, _)) => result.other_aborts += 1,
            _ => result.other_aborts += 1,
        }
    }
    if !latencies.is_empty() {
        result.mean_latency = Some(latencies.iter().sum::<u64>() as f64 / latencies.len() as f64);
    }
    result
}

/// Run the experiment, returning the rendered table.
pub fn run() -> String {
    let mut table = Table::new(
        "E5 — Forcing completed-call records before replying (12 six-call txns, 3 mid-txn primary crashes, lazy flush)",
        &[
            "mode",
            "committed",
            "aborts: prepare refused (info lost)",
            "aborts: other",
            "mean commit latency",
        ],
    );
    let mut refused = [0u64; 2];
    let mut latency = [0f64; 2];
    for (i, eager) in [false, true].into_iter().enumerate() {
        let mut total = ModeResult::default();
        let mut lat_sum = 0.0;
        let mut lat_n = 0u32;
        for seed in 0..5u64 {
            let r = run_mode(eager, seed * 31 + 7);
            total.committed += r.committed;
            total.prepare_refused += r.prepare_refused;
            total.other_aborts += r.other_aborts;
            if let Some(l) = r.mean_latency {
                lat_sum += l;
                lat_n += 1;
            }
        }
        let mean = (lat_n > 0).then(|| lat_sum / lat_n as f64);
        refused[i] = total.prepare_refused;
        latency[i] = mean.unwrap_or(f64::NAN);
        table.row([
            if eager { "force before reply (eager)" } else { "background (paper default)" }
                .to_string(),
            total.committed.to_string(),
            total.prepare_refused.to_string(),
            total.other_aborts.to_string(),
            f2o(mean),
        ]);
    }
    table.note(&format!(
        "Claim (§6): eager forcing eliminates information-loss aborts \
         ({} -> {} refused prepares across 5 seeds) at the cost of slower calls \
         (mean commit latency {} -> {}).",
        refused[0],
        refused[1],
        f2(latency[0]),
        f2(latency[1]),
    ));
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eager_mode_eliminates_refused_prepares() {
        let mut eager_refused = 0;
        for seed in 0..3 {
            eager_refused += run_mode(true, seed).prepare_refused;
        }
        assert_eq!(eager_refused, 0, "eager forcing loses no call records");
    }

    #[test]
    fn eager_mode_is_slower_in_the_normal_case() {
        // Compare pure normal-case latency (no crashes) directly.
        use crate::helpers::{run_sequential_batch, write_ops};
        let mut cfg = CohortConfig::new();
        cfg.buffer_flush_interval = 10;
        let mut lazy_world = vr_world(1, 3, NetConfig::reliable(1), cfg.clone());
        let lazy = run_sequential_batch(&mut lazy_world, 20, write_ops);
        cfg.eager_force_calls = true;
        let mut eager_world = vr_world(1, 3, NetConfig::reliable(1), cfg);
        let eager = run_sequential_batch(&mut eager_world, 20, write_ops);
        assert!(
            eager.mean_latency > lazy.mean_latency,
            "eager ({}) should be slower than background ({})",
            eager.mean_latency,
            lazy.mean_latency
        );
    }

    #[test]
    fn renders() {
        assert!(run().contains("E5"));
    }
}
