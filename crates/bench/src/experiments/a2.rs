//! A2 (ablation) — Concurrent view managers and the priority-deference
//! policy (Section 4.1).
//!
//! "The algorithm is tolerant to several cohorts simultaneously acting
//! as managers … Having several managers will slow things down, since
//! there will be more message traffic, but the slow down will be slight.
//! Furthermore, we can avoid concurrent managers to some extent by
//! various policies. For example, the cohorts could be ordered, and a
//! cohort would become a manager only if all higher-priority cohorts
//! appear to be inaccessible."
//!
//! We crash the primary of an `n`-cohort group with the deference policy
//! off (every suspicious backup manages at once) and on, and compare
//! view-change message traffic and completion time.

use crate::helpers::{server_mids, vr_world, CLIENT, SERVER};
use crate::table::Table;
use vsr_app::counter;
use vsr_core::cohort::Observation;
use vsr_core::config::CohortConfig;
use vsr_simnet::NetConfig;

/// One configuration's measurement.
#[derive(Debug, Clone, Copy)]
pub struct DeferenceResult {
    /// View-change protocol messages for the whole reorganization.
    pub messages: u64,
    /// Distinct cohorts that acted as managers.
    pub managers: u64,
    /// Ticks from the crash to the new primary's view formation.
    pub latency: u64,
}

/// Crash the primary with `deference` heartbeats of priority deference.
pub fn measure(n: u64, deference: u32, seed: u64) -> DeferenceResult {
    let mut cfg = CohortConfig::new();
    cfg.manager_deference = deference;
    let mut world = vr_world(seed, n, NetConfig::reliable(seed), cfg);
    world.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]);
    world.run_for(2_000);
    let primary = world.primary_of(SERVER).expect("primary");
    debug_assert!(server_mids(n).contains(&primary));
    let crash_at = world.now();
    let msgs_before = world.metrics().view_change_msgs;
    world.crash(primary);
    world.run_for(10_000);
    let managers: std::collections::BTreeSet<_> = world
        .observations()
        .iter()
        .filter(|(t, _)| *t >= crash_at)
        .filter_map(|(_, o)| match o {
            Observation::ViewChangeStarted { mid, .. } => Some(*mid),
            _ => None,
        })
        .collect();
    let formed = world
        .observations()
        .iter()
        .find(|(t, o)| {
            *t >= crash_at && matches!(o, Observation::ViewChanged { is_primary: true, .. })
        })
        .map(|(t, _)| *t)
        .expect("view formed");
    DeferenceResult {
        messages: world.metrics().view_change_msgs - msgs_before,
        managers: managers.len() as u64,
        latency: formed - crash_at,
    }
}

/// Run the ablation, returning the rendered table.
pub fn run() -> String {
    let mut table = Table::new(
        "A2 — Concurrent managers vs priority deference (primary crash)",
        &["n", "deference off (mgrs / msgs / ticks)", "deference on (mgrs / msgs / ticks)"],
    );
    for n in [3u64, 5, 7] {
        let off = measure(n, 0, n + 7);
        let on = measure(n, 2, n + 70);
        table.row([
            n.to_string(),
            format!("{} / {} / {}", off.managers, off.messages, off.latency),
            format!("{} / {} / {}", on.managers, on.messages, on.latency),
        ]);
    }
    table.note(
        "Claim (§4.1): concurrent managers are tolerated (the higher viewid wins) \
         but multiply invitation traffic; ordering the cohorts and deferring to the \
         highest-priority live candidate removes the redundancy at a small latency \
         cost (a few deferred heartbeats).",
    );
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_policies_complete_the_view_change() {
        for deference in [0u32, 2] {
            let r = measure(5, deference, 1);
            assert!(r.latency < 5_000, "view formed promptly");
            assert!(r.managers >= 1);
        }
    }

    #[test]
    fn deference_reduces_concurrent_managers() {
        let off = measure(7, 0, 2);
        let on = measure(7, 2, 3);
        assert!(
            on.managers <= off.managers,
            "deference {} managers vs free-for-all {}",
            on.managers,
            off.managers
        );
        assert!(on.messages <= off.messages);
    }

    #[test]
    fn renders() {
        assert!(run().contains("A2"));
    }
}
