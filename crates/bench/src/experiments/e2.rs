//! E2 — Message counts per operation vs voting and replicated RPC
//! (Section 5).
//!
//! Claims: "Our method is faster than voting for write operations since
//! we require fewer messages"; Cooper's replicated RPC "requires lots of
//! messages".
//!
//! For each scheme and group size we count the *foreground* messages a
//! single write (and read) costs. VR's client-visible write is one call
//! round trip (2 messages); the replication stream to backups runs in
//! the background and is amortized across events, while voting and
//! replicated RPC pay their full fan-out synchronously on every
//! operation.

use crate::helpers::{read_ops, run_sequential_batch, vr_world, write_ops};
use crate::table::{f2, Table};
use vsr_baselines::replicated_rpc::ReplicatedRpc;
use vsr_baselines::voting::Voting;
use vsr_core::config::CohortConfig;
use vsr_simnet::NetConfig;

/// Run the experiment, returning the rendered table.
pub fn run() -> String {
    let mut table = Table::new(
        "E2 — Messages per operation (foreground / total incl. background)",
        &["n", "VR write", "VR read", "voting W=all", "voting W=maj", "repl-RPC call"],
    );
    for n in [3u64, 5, 7] {
        let mut world = vr_world(n, n, NetConfig::reliable(n), CohortConfig::new());
        let vr_w = run_sequential_batch(&mut world, 30, write_ops);
        let mut world = vr_world(n + 20, n, NetConfig::reliable(n), CohortConfig::new());
        let vr_r = run_sequential_batch(&mut world, 30, read_ops);

        let mut v_all = Voting::read_one_write_all(NetConfig::reliable(1), n);
        let mut all_msgs = 0.0;
        for _ in 0..30 {
            all_msgs += v_all.write().stats().unwrap().messages as f64;
        }
        let mut v_maj = Voting::majority(NetConfig::reliable(1), n);
        let mut maj_msgs = 0.0;
        for _ in 0..30 {
            maj_msgs += v_maj.write().stats().unwrap().messages as f64;
        }
        let mut rpc = ReplicatedRpc::new(NetConfig::reliable(1), n);
        let mut rpc_msgs = 0.0;
        for _ in 0..30 {
            rpc_msgs += rpc.call(n).stats().unwrap().messages as f64;
        }

        table.row([
            n.to_string(),
            format!("{} / {}", f2(vr_w.fg_msgs_per_txn), f2(vr_w.msgs_per_txn)),
            format!("{} / {}", f2(vr_r.fg_msgs_per_txn), f2(vr_r.msgs_per_txn)),
            f2(all_msgs / 30.0),
            f2(maj_msgs / 30.0),
            f2(rpc_msgs / 30.0),
        ]);
    }
    table.note(
        "Claim (§5): VR writes need fewer messages than voting — the call runs only \
         at the primary (2 foreground messages for the call itself; the commit \
         protocol and replication stream are batched/background), while voting pays \
         a version round plus a write round to the full group and replicated RPC \
         pays 2n per call. The paper is equally honest about the flip side: with \
         read-one voting, 'reading can occur at any cohort, while reading in our \
         scheme must happen at the primary' — both are 2 messages per read, but \
         voting spreads the load where VR concentrates it (measured in E7).",
    );
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vr_foreground_write_beats_voting() {
        let n = 5;
        let mut world = vr_world(1, n, NetConfig::reliable(1), CohortConfig::new());
        let vr = run_sequential_batch(&mut world, 20, write_ops);
        let mut voting = Voting::majority(NetConfig::reliable(1), n);
        let v = voting.write().stats().unwrap().messages as f64;
        assert!(
            vr.fg_msgs_per_txn < v,
            "VR foreground per write ({}) < voting ({v})",
            vr.fg_msgs_per_txn
        );
    }

    #[test]
    fn replicated_rpc_scales_worst() {
        let n = 7;
        let mut rpc = ReplicatedRpc::new(NetConfig::reliable(1), n);
        let rpc_msgs = rpc.call(n).stats().unwrap().messages;
        let mut world = vr_world(2, n, NetConfig::reliable(1), CohortConfig::new());
        let vr = run_sequential_batch(&mut world, 20, read_ops);
        assert!(vr.fg_msgs_per_txn < rpc_msgs as f64);
    }

    #[test]
    fn renders() {
        let s = run();
        assert!(s.contains("E2"));
        assert!(s.lines().filter(|l| l.starts_with('|')).count() >= 5);
    }
}
