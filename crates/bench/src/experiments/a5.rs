//! A5 — Snapshots and state transfer: view-change payload vs state size
//! (beyond the paper: Section 5's newview event record carries the
//! manager's *entire* group state and history, so a Figure-5 view change
//! transfers O(state) bytes no matter how little the underlings are
//! missing).
//!
//! With content-addressed snapshots the newview record carries a base
//! snapshot *reference* (digest + viewstamp) plus the delta of event
//! records applied since that snapshot. An up-to-date cohort installs
//! the view with zero state transfer; only a genuinely behind cohort
//! pays O(state), off the view-change critical path, via bounded
//! CRC-checked chunks.
//!
//! For each group-state size this experiment measures:
//!
//! * the full-state payload a Figure-5 newview would ship (the encoded
//!   snapshot bytes — exactly what the old record embedded);
//! * the actual base+delta newview payload on the wire today;
//! * the view-change latency with that state (crash a backup, observe
//!   `ViewChangeStarted` → `ViewChanged`);
//! * the chunked-transfer cost paid by a blanked cohort that rejoins
//!   (chunks and ticks of its `SnapshotInstalled`).
//!
//! `exp_a5 <path>` additionally writes the points as JSON — the
//! `BENCH_snapshot.json` baseline recorded by CI. The run is fully
//! deterministic (fixed seeds, simulated time), so the baseline is
//! byte-stable across machines.

use crate::helpers::{server_mids, vr_world, CLIENT, SERVER};
use crate::table::Table;
use vsr_app::counter;
use vsr_core::cohort::Observation;
use vsr_core::config::CohortConfig;
use vsr_core::event::{EventKind, EventRecord};
use vsr_core::messages::Message;
use vsr_core::snapshot::Snapshot;
use vsr_core::types::{Timestamp, Viewstamp};
use vsr_core::wire::encode_message;
use vsr_simnet::NetConfig;

/// Group-state sizes (distinct counter objects) swept by the experiment.
pub const STATE_SIZES: [u64; 4] = [16, 64, 256, 1024];

/// One measured state size.
#[derive(Debug, Clone, Copy)]
pub struct SizePoint {
    /// Distinct objects committed into the group state.
    pub objects: u64,
    /// Encoded bytes of the full state snapshot — the payload a
    /// Figure-5 newview (full history + gstate clone) would carry.
    pub full_state_bytes: usize,
    /// Encoded bytes of the actual newview message: base snapshot
    /// reference plus the delta records since it.
    pub newview_bytes: usize,
    /// Delta records the newview would replay on top of the base.
    pub delta_records: usize,
    /// View-change latency in ticks (`ViewChangeStarted` →
    /// new primary's `ViewChanged`) after a backup crash.
    pub vc_latency: u64,
    /// Chunks fetched by a blanked cohort rejoining via state transfer.
    pub rejoin_chunks: u32,
    /// Ticks from the rejoiner's first chunk request to installation.
    pub rejoin_ticks: u64,
}

/// Measure one state size. Deterministic for a given `(objects, seed)`.
pub fn measure(objects: u64, seed: u64) -> SizePoint {
    let mut cfg = CohortConfig::new();
    // Frequent boundaries so a stable snapshot always exists, and small
    // chunks so the rejoin transfer cost is visible in chunk counts; a
    // wide underling timeout lets the largest transfers finish inside
    // one view.
    cfg.snapshot_interval = 8;
    cfg.snapshot_chunk_bytes = 1024;
    cfg.underling_timeout = 5_000;
    let mut w = vr_world(seed, 3, NetConfig::reliable(seed), cfg);
    for i in 0..objects {
        w.submit(CLIENT, vec![counter::incr(SERVER, i, 1)]);
        w.run_for(25);
    }
    w.run_for(4_000);
    assert!(w.metrics().committed >= objects, "workload must commit");

    // Payload sizes, measured from the primary's real state: what a
    // full-state newview would ship versus what ours ships.
    let primary = w.primary_of(SERVER).expect("primary exists");
    let c = w.cohort(primary);
    let vs = c.history().latest().expect("group has applied records");
    let full_state_bytes = Snapshot::materialize(vs, c.history(), c.gstate()).bytes.len();
    let base = c.last_snapshot().expect("boundary snapshot exists");
    let record = EventRecord {
        vs: Viewstamp::new(c.cur_viewid(), Timestamp(1)),
        kind: EventKind::NewView {
            view: c.cur_view().clone(),
            history: c.history().clone(),
            base,
            delta: c.delta_log().to_vec().into(),
        },
    };
    let delta_records = c.delta_log().len();
    let newview =
        Message::BufferSend { viewid: c.cur_viewid(), from: primary, records: vec![record].into() };
    let newview_bytes = encode_message(&newview).len();

    // View-change latency with this state: crash a backup and observe
    // the reorganization among the survivors.
    let victim = *server_mids(3).iter().find(|&&m| m != primary).expect("backup exists");
    let crash_at = w.now();
    w.crash(victim);
    w.run_for(10_000);
    let started = w
        .observations()
        .iter()
        .find(|(t, o)| *t >= crash_at && matches!(o, Observation::ViewChangeStarted { .. }))
        .map(|(t, _)| *t);
    let formed = w
        .observations()
        .iter()
        .find(|(t, o)| {
            *t >= crash_at && matches!(o, Observation::ViewChanged { is_primary: true, .. })
        })
        .map(|(t, _)| *t)
        .expect("view formed");
    let vc_latency = formed - started.unwrap_or(formed);

    // Rejoin cost: in this no-disk world the crashed cohort lost
    // everything, so on recovery it must fetch the snapshot in chunks.
    w.recover(victim);
    w.run_for(20_000);
    let (rejoin_chunks, rejoin_ticks) = w
        .observations()
        .iter()
        .rev()
        .find_map(|(_, o)| match o {
            Observation::SnapshotInstalled { mid, chunks, ticks, .. } if *mid == victim => {
                Some((*chunks, *ticks))
            }
            _ => None,
        })
        .expect("blanked rejoiner installs a fetched snapshot");
    w.verify().expect("safety oracles hold");

    SizePoint {
        objects,
        full_state_bytes,
        newview_bytes,
        delta_records,
        vc_latency,
        rejoin_chunks,
        rejoin_ticks,
    }
}

/// Measure every size in [`STATE_SIZES`] with fixed seeds.
pub fn measure_all() -> Vec<SizePoint> {
    STATE_SIZES.iter().enumerate().map(|(i, &n)| measure(n, 70 + i as u64)).collect()
}

/// Render the measured points as the experiment table.
pub fn render(points: &[SizePoint]) -> String {
    let mut table = Table::new(
        "A5 — View change payload & latency vs state size: full-state newview \
         (paper, Section 5) vs snapshot base+delta",
        &[
            "objects",
            "full-state newview (bytes)",
            "base+delta newview (bytes)",
            "delta records",
            "view change (ticks)",
            "blank rejoin (chunks / ticks)",
        ],
    );
    for p in points {
        table.row([
            p.objects.to_string(),
            p.full_state_bytes.to_string(),
            p.newview_bytes.to_string(),
            p.delta_records.to_string(),
            p.vc_latency.to_string(),
            format!("{} / {}", p.rejoin_chunks, p.rejoin_ticks),
        ]);
    }
    table.note(
        "Claim (DESIGN §14): once a stable snapshot exists, a view change \
         transfers O(delta) bytes — the newview payload stays flat while the \
         full-state payload the paper's Figure-5 record would carry grows \
         linearly with the group state. The O(state) cost is paid only by a \
         cohort that is genuinely behind, off the view-change critical path, \
         as a bounded CRC-checked chunk transfer (whose chunk count grows \
         with the state instead).",
    );
    table.render()
}

/// Serialize the points as the `BENCH_snapshot.json` baseline.
pub fn to_json(points: &[SizePoint]) -> String {
    let mut out = String::from(
        "{\n  \"experiment\": \"A5\",\n  \"title\": \
         \"view-change payload & latency vs state size\",\n  \"points\": [\n",
    );
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"objects\": {}, \"full_state_bytes\": {}, \"newview_bytes\": {}, \
             \"delta_records\": {}, \"vc_latency_ticks\": {}, \"rejoin_chunks\": {}, \
             \"rejoin_ticks\": {}}}{}\n",
            p.objects,
            p.full_state_bytes,
            p.newview_bytes,
            p.delta_records,
            p.vc_latency,
            p.rejoin_chunks,
            p.rejoin_ticks,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Run the experiment, returning the rendered table.
pub fn run() -> String {
    render(&measure_all())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newview_payload_is_o_delta_not_o_state() {
        let small = measure(24, 1);
        let big = measure(384, 2);
        // The full-state payload grows roughly linearly with the state…
        assert!(
            big.full_state_bytes > 4 * small.full_state_bytes,
            "full-state payload must grow with state ({} vs {})",
            big.full_state_bytes,
            small.full_state_bytes
        );
        // …while the base+delta newview does not follow it.
        assert!(
            big.newview_bytes * 4 < big.full_state_bytes,
            "newview payload ({}) must stay far below the full state ({})",
            big.newview_bytes,
            big.full_state_bytes
        );
        // The O(state) transfer moved to the rejoiner's chunk fetch.
        assert!(
            big.rejoin_chunks > small.rejoin_chunks,
            "rejoin transfer must grow with state ({} vs {} chunks)",
            big.rejoin_chunks,
            small.rejoin_chunks
        );
    }

    #[test]
    fn json_is_well_formed_enough() {
        let points = [measure(24, 3)];
        let json = to_json(&points);
        assert!(json.contains("\"experiment\": \"A5\""));
        assert!(json.contains("\"objects\": 24"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn renders() {
        assert!(render(&[measure(16, 4)]).contains("A5"));
    }
}
