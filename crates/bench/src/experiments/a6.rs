//! A6 — Commit pipelining & group commit: throughput and tail latency
//! vs concurrent clients × durability/transport setup, on the live
//! thread runtime (real clocks, real threads — the only experiment
//! that measures wall time rather than simulated ticks).
//!
//! The paper's primary runs one two-phase commit at a time; this
//! codebase pipelines: the primary accepts concurrent transactions,
//! a cohort's handler pass drains its whole mailbox under one deferred
//! buffer flush, the WAL's `FsyncPolicy::Group` covers every record a
//! pass appended with a single fsync, and the TCP writer drains its
//! whole per-peer queue into one vectored write. A closed-loop driver
//! with N client threads measures what that buys:
//!
//! * committed transactions per second and p50/p99 commit latency,
//!   per client count, per setup;
//! * group-commit effectiveness: covering fsyncs and mean records per
//!   fsync (durable setups);
//! * writer coalescing: frames that rode a shared vectored write
//!   (networked setup).
//!
//! `exp_a6 <path>` additionally writes the points as JSON — the
//! `BENCH_pipeline.json` trajectory recorded by CI. Wall-clock numbers
//! vary across machines; the *ratios* (scaling with clients, durable
//! vs in-memory) are the experiment's claims.

use crate::table::Table;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use vsr_app::counter;
use vsr_core::cohort::TxnOutcome;
use vsr_core::module::NullModule;
use vsr_core::types::{GroupId, Mid};
use vsr_net::AddrMap;
use vsr_runtime::{Cluster, ClusterBuilder};
use vsr_store::FsyncPolicy;

const CLIENT: GroupId = GroupId(1);
const SERVER: GroupId = GroupId(2);
const CLIENT_MID: Mid = Mid(10);
const SERVERS: [Mid; 3] = [Mid(1), Mid(2), Mid(3)];

/// Concurrent client counts swept by the experiment. The sweep runs to
/// 32 clients — the group-commit batch bound — so the durable setups
/// get enough concurrency to actually fill a `max_batch`-sized fsync.
pub const CLIENT_COUNTS: [u32; 6] = [1, 2, 4, 8, 16, 32];

/// Group-commit batch bound used by the durable-group setup.
pub const GROUP_MAX_BATCH: u32 = 32;

/// Cluster configurations compared by the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Setup {
    /// In-process mailboxes, no WAL: the transport/durability floor.
    InMemory,
    /// File-backed WAL, fsync on every record (the pre-pipelining
    /// durable configuration).
    DurableEvery,
    /// File-backed WAL, group commit: one covering fsync per handler
    /// pass, at most [`GROUP_MAX_BATCH`] records deferred.
    DurableGroup,
    /// Real TCP loopback transport, no WAL: exercises writer-thread
    /// frame coalescing.
    Networked,
}

/// Every setup, in report order.
pub const SETUPS: [Setup; 4] =
    [Setup::InMemory, Setup::DurableEvery, Setup::DurableGroup, Setup::Networked];

impl Setup {
    /// Stable name used in tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Setup::InMemory => "in-memory",
            Setup::DurableEvery => "durable-every",
            Setup::DurableGroup => "durable-group",
            Setup::Networked => "networked",
        }
    }
}

/// One measured (setup, clients) cell.
#[derive(Debug, Clone, Copy)]
pub struct LoadPoint {
    /// Which cluster configuration ran.
    pub setup: &'static str,
    /// Concurrent closed-loop client threads.
    pub clients: u32,
    /// Transactions committed inside the measurement window.
    pub committed: u64,
    /// Measurement window in milliseconds (actual, not requested).
    pub elapsed_ms: u64,
    /// Committed transactions per second.
    pub throughput: u64,
    /// Median commit latency in milliseconds (µs-resolution samples).
    pub p50_ms: f64,
    /// 99th-percentile commit latency in milliseconds (µs-resolution
    /// samples).
    pub p99_ms: f64,
    /// Covering group-commit fsyncs (durable setups; zero otherwise).
    pub group_fsyncs: u64,
    /// Mean records made durable per covering fsync.
    pub records_per_fsync: f64,
    /// Outbound frames that rode a shared vectored write (networked
    /// setup; zero otherwise).
    pub frames_coalesced: u64,
}

fn unique_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("vsr-a6-{}-{}-{}", std::process::id(), tag, n))
}

pub(crate) fn build(setup: Setup, dir: &std::path::Path) -> Cluster {
    build_with(setup, dir, vsr_core::config::CohortConfig::new())
}

/// Build a cluster for `setup` with a caller-adjusted cohort config
/// (A7 turns leases on through this).
pub(crate) fn build_with(
    setup: Setup,
    dir: &std::path::Path,
    cfg: vsr_core::config::CohortConfig,
) -> Cluster {
    let mut cfg = cfg;
    // Decouple snapshot cost from the pipelining claim: the library
    // default (64, sized for the simulator's fault-injection coverage)
    // would materialize a full state snapshot hundreds of times per
    // second at these commit rates and dominate the single core this
    // experiment runs on. Snapshot/transfer costs are measured by
    // A3/A5; here the cadence is relaxed so throughput reflects the
    // commit pipeline.
    cfg.snapshot_interval = 4096;
    let builder = ClusterBuilder::new()
        .cohorts(cfg)
        .submit_deadline(Duration::from_secs(10))
        .group(CLIENT, &[CLIENT_MID], || Box::new(NullModule))
        .group(SERVER, &SERVERS, || Box::new(counter::CounterModule));
    match setup {
        Setup::InMemory => builder.start(),
        Setup::DurableEvery => builder.durable_files(dir, FsyncPolicy::EveryRecord).start(),
        Setup::DurableGroup => builder
            .durable_files(dir, FsyncPolicy::Group { max_batch: GROUP_MAX_BATCH, max_delay_ms: 5 })
            .start(),
        Setup::Networked => {
            let addrs = AddrMap::loopback(&[CLIENT_MID, SERVERS[0], SERVERS[1], SERVERS[2]])
                .expect("bind loopback listeners");
            builder.networked(addrs).start()
        }
    }
}

/// Run one (setup, clients) cell: N closed-loop client threads
/// submitting increments against a fresh 3-cohort counter group for
/// `window` of wall time.
pub fn measure(setup: Setup, clients: u32, window: Duration) -> LoadPoint {
    let dir = unique_dir(setup.name());
    let cluster = build(setup, &dir);

    // Warm up: one committed transaction proves the bootstrap view
    // formed; its latency sample is noise the percentiles can absorb.
    let mut warmed = false;
    for _ in 0..50 {
        if matches!(
            cluster.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]),
            Ok(TxnOutcome::Committed { .. })
        ) {
            warmed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(warmed, "cluster never formed its bootstrap view");

    let committed = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..clients {
            let cluster = &cluster;
            let committed = &committed;
            s.spawn(move || {
                // Distinct objects per thread: contention stays in the
                // commit pipeline, not in a single counter's value
                // dependency chain.
                let object = u64::from(tid) + 1;
                while t0.elapsed() < window {
                    if matches!(
                        cluster.submit(CLIENT, vec![counter::incr(SERVER, object, 1)]),
                        Ok(TxnOutcome::Committed { .. })
                    ) {
                        committed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let elapsed = t0.elapsed();
    let m = cluster.metrics();
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let committed = committed.into_inner();
    let elapsed_ms = elapsed.as_millis().max(1) as u64;
    LoadPoint {
        setup: setup.name(),
        clients,
        committed,
        elapsed_ms,
        throughput: committed * 1_000 / elapsed_ms,
        // Samples are recorded in microseconds; report milliseconds.
        p50_ms: m.latency_percentile(0.50).unwrap_or(0) as f64 / 1_000.0,
        p99_ms: m.latency_percentile(0.99).unwrap_or(0) as f64 / 1_000.0,
        group_fsyncs: m.group_fsyncs,
        records_per_fsync: m.records_per_fsync.mean().unwrap_or(0.0),
        frames_coalesced: m.net_frames_coalesced,
    }
}

/// The full sweep: every setup × every client count.
pub fn measure_all(window: Duration) -> Vec<LoadPoint> {
    SETUPS
        .iter()
        .flat_map(|&setup| CLIENT_COUNTS.iter().map(move |&n| measure(setup, n, window)))
        .collect()
}

/// Render the measured points as the experiment table.
pub fn render(points: &[LoadPoint]) -> String {
    let mut table = Table::new(
        "A6 — Commit pipelining & group commit: throughput and tail latency vs \
         concurrent clients (live runtime, wall clock)",
        &[
            "setup",
            "clients",
            "tx/s",
            "p50 (ms)",
            "p99 (ms)",
            "group fsyncs",
            "recs/fsync",
            "frames coalesced",
        ],
    );
    for p in points {
        table.row([
            p.setup.to_string(),
            p.clients.to_string(),
            p.throughput.to_string(),
            format!("{:.3}", p.p50_ms),
            format!("{:.3}", p.p99_ms),
            p.group_fsyncs.to_string(),
            format!("{:.1}", p.records_per_fsync),
            p.frames_coalesced.to_string(),
        ]);
    }
    table.note(
        "Claim (DESIGN §15): a pipelined primary turns client concurrency into \
         throughput — tx/s grows with clients while the serial design would \
         plateau at 1/RTT — and group commit keeps durable throughput near the \
         in-memory line by amortizing one covering fsync over every record a \
         handler pass appends (recs/fsync approaches the burst size). On the \
         TCP transport the writer drains its whole per-peer queue into one \
         vectored write; coalesced frames are the syscalls saved.",
    );
    table.render()
}

/// Serialize the points as the `BENCH_pipeline.json` trajectory.
pub fn to_json(points: &[LoadPoint]) -> String {
    let mut out = String::from(
        "{\n  \"experiment\": \"A6\",\n  \"title\": \
         \"pipelining & group commit: throughput vs clients x setup\",\n  \"points\": [\n",
    );
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"setup\": \"{}\", \"clients\": {}, \"committed\": {}, \
             \"elapsed_ms\": {}, \"throughput\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"group_fsyncs\": {}, \"records_per_fsync\": {:.2}, \
             \"frames_coalesced\": {}}}{}\n",
            p.setup,
            p.clients,
            p.committed,
            p.elapsed_ms,
            p.throughput,
            p.p50_ms,
            p.p99_ms,
            p.group_fsyncs,
            p.records_per_fsync,
            p.frames_coalesced,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Run the experiment with the standard window, returning the table.
pub fn run() -> String {
    render(&measure_all(Duration::from_millis(1_000)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_clients_raise_in_memory_throughput() {
        let one = measure(Setup::InMemory, 1, Duration::from_millis(500));
        let eight = measure(Setup::InMemory, 8, Duration::from_millis(500));
        assert!(one.committed > 0 && eight.committed > 0, "both cells commit");
        // The full ≥2× acceptance ratio is asserted on the release-mode
        // CI run; a debug-mode unit test on a loaded machine only
        // checks the direction of the effect.
        assert!(
            eight.throughput > one.throughput,
            "8 clients must out-commit 1 ({} vs {} tx/s)",
            eight.throughput,
            one.throughput
        );
    }

    #[test]
    fn group_commit_batches_records_per_fsync() {
        let p = measure(Setup::DurableGroup, 8, Duration::from_millis(500));
        assert!(p.committed > 0, "durable group cell commits");
        assert!(p.group_fsyncs > 0, "covering fsyncs happened");
        assert!(
            p.records_per_fsync >= 1.0,
            "every covering fsync covered at least one record ({})",
            p.records_per_fsync
        );
    }

    #[test]
    fn json_is_well_formed_enough() {
        let points = [measure(Setup::InMemory, 2, Duration::from_millis(200))];
        let json = to_json(&points);
        assert!(json.contains("\"experiment\": \"A6\""));
        assert!(json.contains("\"setup\": \"in-memory\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
