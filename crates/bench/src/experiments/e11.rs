//! E11 — Safety under randomized fault exploration (Sections 1, 4.1).
//!
//! Claims checked on every run:
//!
//! * one-copy serializability — "the concurrent execution of
//!   transactions on replicated data is equivalent to a serial execution
//!   on non-replicated data" (Section 1);
//! * durability — "transactions that prepared in the old view will be
//!   able to commit, and those that committed will still be committed"
//!   (Section 4.1);
//! * replica convergence at equal history positions.
//!
//! Each seed drives a workload of conflicting transactions through a
//! random schedule of crashes, recoveries, and partitions, then checks
//! all three invariants at quiescence.

use crate::helpers::{server_mids, vr_world, CLIENT, SERVER};
use crate::table::Table;
use vsr_app::counter;
use vsr_core::cohort::TxnOutcome;
use vsr_core::config::CohortConfig;
use vsr_sim::fault::FaultPlan;
use vsr_simnet::NetConfig;

/// One seed's outcome.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Seed.
    pub seed: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted.
    pub aborted: u64,
    /// Transactions unresolved at the client.
    pub unresolved: u64,
    /// View formations observed.
    pub view_formations: u64,
    /// Invariant violation, if any (must be `None`).
    pub violation: Option<String>,
}

/// Run one seed of the exploration.
pub fn run_seed(seed: u64, lossy: bool) -> SweepResult {
    let net = if lossy { NetConfig::lossy(seed) } else { NetConfig::reliable(seed) };
    let mut world = vr_world(seed, 3, net, CohortConfig::new());
    let plan = FaultPlan::random(seed, &server_mids(3), 1_000, 18_000, 10, 1, true);
    plan.apply(&mut world);
    // Conflicting workload: four counters shared by 30 transactions.
    for i in 0..30u64 {
        world.schedule_submit(300 + i * 700, CLIENT, vec![counter::incr(SERVER, i % 4, 1)]);
    }
    world.run_until(50_000);
    let m = world.metrics();
    SweepResult {
        seed,
        committed: m.committed,
        aborted: m.aborted,
        unresolved: m.unresolved,
        view_formations: m.view_formations,
        violation: world.verify().err(),
    }
}

/// Resolve any `Unresolved` outcomes against ground truth: they must
/// match a durable commit or be absent everywhere (never half-applied).
pub fn unresolved_are_consistent(seed: u64) -> bool {
    let mut world = vr_world(seed, 3, NetConfig::reliable(seed), CohortConfig::new());
    let plan = FaultPlan::random(seed, &server_mids(3), 1_000, 12_000, 8, 1, true);
    plan.apply(&mut world);
    let mut reqs = Vec::new();
    for i in 0..20u64 {
        reqs.push(world.schedule_submit(300 + i * 600, CLIENT, vec![counter::incr(SERVER, 0, 1)]));
    }
    world.run_until(40_000);
    // Every unresolved transaction's aid must have a single consistent
    // fate across live cohorts (verify() already checks convergence;
    // here we check the statuses agree).
    for &req in &reqs {
        let Some(record) = world.result(req) else { continue };
        if !matches!(record.outcome, TxnOutcome::Unresolved) {
            continue;
        }
        let Some(aid) = record.aid else { continue };
        let mut verdicts = std::collections::BTreeSet::new();
        for &mid in world.members_of(SERVER) {
            if world.is_crashed(mid) {
                continue;
            }
            if let Some(status) = world.cohort(mid).gstate().status(aid) {
                verdicts.insert(status.is_committed());
            }
        }
        if verdicts.len() > 1 {
            return false;
        }
    }
    true
}

/// Run the experiment, returning the rendered table.
pub fn run() -> String {
    let mut table = Table::new(
        "E11 — Randomized fault exploration (30 txns/seed, crashes+partitions)",
        &["seed", "network", "committed", "aborted", "unresolved", "view formations", "violations"],
    );
    let mut total_violations = 0;
    for seed in 0..8u64 {
        let lossy = seed >= 4;
        let r = run_seed(seed, lossy);
        if r.violation.is_some() {
            total_violations += 1;
        }
        table.row([
            r.seed.to_string(),
            if lossy { "lossy" } else { "reliable" }.to_string(),
            r.committed.to_string(),
            r.aborted.to_string(),
            r.unresolved.to_string(),
            r.view_formations.to_string(),
            r.violation.unwrap_or_else(|| "none".to_string()),
        ]);
    }
    table.note(&format!(
        "Safety invariants (one-copy serializability, committed-transaction \
         durability, replica convergence) checked at quiescence on every seed: \
         {total_violations} violations. Aborted transactions are the protocol's \
         declared behavior under failures (Figure 2 step 3), not safety losses."
    ));
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_violations_across_seeds() {
        for seed in 0..4 {
            let r = run_seed(seed, false);
            assert_eq!(r.violation, None, "seed {seed}");
        }
    }

    #[test]
    fn lossy_network_seeds_also_safe() {
        for seed in 0..2 {
            let r = run_seed(seed + 100, true);
            assert_eq!(r.violation, None, "lossy seed {seed}");
        }
    }

    #[test]
    fn unresolved_outcomes_have_single_fate() {
        for seed in 0..3 {
            assert!(unresolved_are_consistent(seed), "seed {seed}");
        }
    }

    #[test]
    fn renders() {
        assert!(run().contains("E11"));
    }
}
