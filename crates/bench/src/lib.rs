//! # Benchmark harness
//!
//! Regenerates every performance claim of the Viewstamped Replication
//! paper as a measurable experiment (the paper, a PODC '88 publication,
//! has no benchmark tables — its evaluation is the set of quantitative
//! claims in Sections 3.7, 4.1, 4.2, 5, and 6; see DESIGN.md §2).
//!
//! * `cargo run -p vsr-bench --release --bin exp_all` — full report
//!   (E1–E12), recorded in EXPERIMENTS.md.
//! * `cargo run -p vsr-bench --release --bin exp_e<N>` — one experiment.
//! * `cargo bench` — Criterion micro-benchmarks of the protocol hot
//!   paths plus end-to-end transaction and commit-latency benches.

#![warn(missing_docs)]

pub mod experiments;
pub mod helpers;
pub mod table;
