//! A minimal aligned-table formatter for experiment output (markdown
//! pipe tables, readable both raw and rendered).

/// A simple table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: ToString,
    {
        let row: Vec<String> = cells.into_iter().map(|c| c.to_string()).collect();
        assert_eq!(row.len(), self.headers.len(), "row width must match headers");
        self.rows.push(row);
        self
    }

    /// Append a free-text note rendered under the table.
    pub fn note(&mut self, text: &str) -> &mut Self {
        self.notes.push(text.to_string());
        self
    }

    /// Render the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        for note in &self.notes {
            out.push_str(&format!("\n> {note}\n"));
        }
        out.push('\n');
        out
    }
}

/// Format a float with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format an optional float with two decimals ("-" when absent).
pub fn f2o(v: Option<f64>) -> String {
    v.map(f2).unwrap_or_else(|| "-".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("### demo"));
        assert!(s.contains("| a   | long-header |"));
        assert!(s.contains("> a note"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new("x", &["a"]);
        t.row(["1", "2"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f2o(None), "-");
        assert_eq!(f2o(Some(2.0)), "2.00");
    }
}
