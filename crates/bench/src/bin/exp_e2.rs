//! Run experiment E2 and print its table.
fn main() {
    print!("{}", vsr_bench::experiments::e2::run());
}
