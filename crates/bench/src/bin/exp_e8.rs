//! Run experiment E8 and print its table.
fn main() {
    print!("{}", vsr_bench::experiments::e8::run());
}
