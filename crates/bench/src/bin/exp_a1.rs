//! Run ablation experiment A1 and print its table.
fn main() {
    print!("{}", vsr_bench::experiments::a1::run());
}
