//! Run experiment A5 and print its table; with a path argument, also
//! write the points as the `BENCH_snapshot.json` baseline.
fn main() {
    let points = vsr_bench::experiments::a5::measure_all();
    print!("{}", vsr_bench::experiments::a5::render(&points));
    if let Some(path) = std::env::args().nth(1) {
        let json = vsr_bench::experiments::a5::to_json(&points);
        std::fs::write(&path, json).expect("write baseline json");
        eprintln!("wrote {path}");
    }
}
