//! Run experiment E5 and print its table.
fn main() {
    print!("{}", vsr_bench::experiments::e5::run());
}
