//! Run experiment E3 and print its table.
fn main() {
    print!("{}", vsr_bench::experiments::e3::run());
}
