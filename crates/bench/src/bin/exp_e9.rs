//! Run experiment E9 and print its table.
fn main() {
    print!("{}", vsr_bench::experiments::e9::run());
}
