//! Run every experiment (E1-E12) and print the full report.
//!
//! With an output-directory argument, additionally dump a traced
//! normal-case run through the structured-trace exporters:
//! `e1-trace.jsonl` (schema-checked) and `e1-trace-chrome.json`
//! (loadable in chrome://tracing / Perfetto).
fn main() {
    print!("{}", vsr_bench::experiments::run_all());
    if let Some(dir) = std::env::args().nth(1) {
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("create trace output directory");
        let mut world = vsr_bench::helpers::vr_world(
            1,
            3,
            vsr_simnet::NetConfig::reliable(1),
            vsr_core::config::CohortConfig::new(),
        );
        let recorder = world.enable_tracing();
        vsr_bench::helpers::run_sequential_batch(&mut world, 10, vsr_bench::helpers::write_ops);
        let events = recorder.take();
        let jsonl = vsr_obs::export_jsonl(&events);
        vsr_obs::validate_jsonl(&jsonl).expect("trace JSONL is schema-valid");
        std::fs::write(dir.join("e1-trace.jsonl"), &jsonl).expect("write JSONL trace");
        std::fs::write(dir.join("e1-trace-chrome.json"), vsr_obs::export_chrome(&events))
            .expect("write chrome trace");
        eprintln!("wrote {} trace events to {}", events.len(), dir.display());
    }
}
