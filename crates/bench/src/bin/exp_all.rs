//! Run every experiment (E1-E12) and print the full report.
fn main() {
    print!("{}", vsr_bench::experiments::run_all());
}
