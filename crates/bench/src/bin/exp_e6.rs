//! Run experiment E6 and print its table.
fn main() {
    print!("{}", vsr_bench::experiments::e6::run());
}
