//! Run ablation experiment A3 and print its table.
fn main() {
    print!("{}", vsr_bench::experiments::a3::run());
}
