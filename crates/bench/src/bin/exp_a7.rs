//! Run experiment A7 and print its table; with a path argument, also
//! write the points as the `BENCH_leases.json` trajectory.
use std::time::Duration;

fn main() {
    let points = vsr_bench::experiments::a7::measure_all(Duration::from_millis(1_000));
    print!("{}", vsr_bench::experiments::a7::render(&points));
    if let Some(path) = std::env::args().nth(1) {
        let json = vsr_bench::experiments::a7::to_json(&points);
        std::fs::write(&path, json).expect("write trajectory json");
        eprintln!("wrote {path}");
    }
}
