//! Run experiment E12 and print its table.
fn main() {
    print!("{}", vsr_bench::experiments::e12::run());
}
