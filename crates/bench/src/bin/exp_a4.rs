//! Run experiment A4 and print its tables.
fn main() {
    print!("{}", vsr_bench::experiments::a4::run());
}
