//! Run experiment E4 and print its table.
fn main() {
    print!("{}", vsr_bench::experiments::e4::run());
}
