//! CI trace smoke: run a deterministic nemesis plan over a 2000-tick
//! fault window with structured tracing on, schema-check the exported
//! JSONL, and write both trace artifacts (JSONL + chrome://tracing).
//!
//! Usage: `trace_nemesis [out_dir]` (default `target/trace`). Exits
//! non-zero if the oracles report a safety or liveness violation or the
//! export fails the schema check, so CI catches both regressions.

use vsr_sim::fault::{FaultEvent, FaultPlan};
use vsr_sim::nemesis::{self, NemesisConfig, NemesisFailure};

fn main() {
    let out = std::path::PathBuf::from(
        std::env::args().nth(1).unwrap_or_else(|| "target/trace".to_string()),
    );
    // A crash-and-recover plan inside a 2000-tick fault window: enough
    // activity to exercise view changes, buffer streaming, and timer
    // retries in the trace, while staying deterministic and survivable.
    let cfg = NemesisConfig {
        seed: 42,
        window: (200, 2_200),
        quiesce: 6_000,
        ..NemesisConfig::default()
    };
    let plan = FaultPlan::new()
        .at(500, FaultEvent::Crash(vsr_core::types::Mid(2)))
        .at(1_500, FaultEvent::Recover(vsr_core::types::Mid(2)));
    let (events, verdict) = nemesis::traced_run(&cfg, &plan);

    let jsonl = vsr_obs::export_jsonl(&events);
    let checked = vsr_obs::validate_jsonl(&jsonl).expect("trace JSONL is schema-valid");
    assert_eq!(checked, events.len(), "every event exported exactly once");
    std::fs::create_dir_all(&out).expect("create trace output directory");
    std::fs::write(out.join("nemesis-trace.jsonl"), &jsonl).expect("write JSONL trace");
    std::fs::write(out.join("nemesis-trace-chrome.json"), vsr_obs::export_chrome(&events))
        .expect("write chrome trace");
    println!(
        "traced {} events ({checked} schema-checked JSONL lines) into {}",
        events.len(),
        out.display()
    );

    match verdict {
        Ok(()) => println!("oracles: ok"),
        Err(failure @ (NemesisFailure::Safety(_) | NemesisFailure::Liveness(_))) => {
            println!("oracles: {failure}");
            std::process::exit(1);
        }
        Err(failure @ NemesisFailure::Catastrophe(_)) => {
            // Wedged-as-specified is not a bug, but this plan should
            // never produce it; flag loudly without failing the build.
            println!("oracles: unexpected {failure}");
        }
    }
}
