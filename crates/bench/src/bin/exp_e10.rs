//! Run experiment E10 and print its table.
fn main() {
    print!("{}", vsr_bench::experiments::e10::run());
}
