//! Run experiment E11 and print its table.
fn main() {
    print!("{}", vsr_bench::experiments::e11::run());
}
