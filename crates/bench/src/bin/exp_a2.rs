//! Run ablation experiment A2 and print its table.
fn main() {
    print!("{}", vsr_bench::experiments::a2::run());
}
