//! Run experiment E7 and print its table.
fn main() {
    print!("{}", vsr_bench::experiments::e7::run());
}
