//! Run experiment E1 and print its table.
fn main() {
    print!("{}", vsr_bench::experiments::e1::run());
}
