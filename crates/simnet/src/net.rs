//! The simulated network: delivers messages with configurable delay,
//! loss, duplication, reordering (implicit in random delays), and
//! partitions; tracks node crashes so that messages to dead nodes vanish
//! and stale timers of previous incarnations never fire.
//!
//! The paper's fault model (Section 1): "The network may lose, delay, and
//! duplicate messages, or deliver messages out of order. Link failures
//! may cause the network to partition into subnetworks that are unable to
//! communicate with each other." Nodes are fail-stop; they recover with
//! only stable state.

use crate::queue::EventQueue;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// A network endpoint (maps 1:1 onto protocol-level mids).
pub type NodeId = u64;

/// Network fault parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Minimum one-way delay in ticks.
    pub min_delay: u64,
    /// Maximum one-way delay in ticks (inclusive).
    pub max_delay: u64,
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
    /// Probability a message is delivered twice (with independent
    /// delays).
    pub dup_prob: f64,
    /// RNG seed: same seed + same schedule of calls = same run.
    pub seed: u64,
}

impl NetConfig {
    /// A reliable LAN: 1–3 tick delays, no loss, no duplication.
    pub fn reliable(seed: u64) -> Self {
        NetConfig { min_delay: 1, max_delay: 3, drop_prob: 0.0, dup_prob: 0.0, seed }
    }

    /// A lossy network: wider delays, some loss and duplication.
    pub fn lossy(seed: u64) -> Self {
        NetConfig { min_delay: 1, max_delay: 10, drop_prob: 0.05, dup_prob: 0.02, seed }
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::reliable(0)
    }
}

/// An event popped from the simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<M, T> {
    /// A message arrival.
    Deliver {
        /// Sender.
        from: NodeId,
        /// Recipient.
        to: NodeId,
        /// Payload.
        msg: M,
    },
    /// A timer set by `node` fired.
    TimerFire {
        /// The node whose timer fired.
        node: NodeId,
        /// The timer payload.
        timer: T,
    },
    /// A control point scheduled by the harness (fault injection,
    /// workload arrival); `id` is meaningful to the harness only.
    Control {
        /// Harness-defined identifier.
        id: u64,
    },
}

/// Aggregate message statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages submitted via [`SimNet::send`].
    pub sent: u64,
    /// Deliveries that reached a live node.
    pub delivered: u64,
    /// Messages dropped by the fault model.
    pub dropped: u64,
    /// Extra copies created by duplication.
    pub duplicated: u64,
    /// Messages discarded because sender and receiver were partitioned.
    pub partitioned: u64,
    /// Deliveries discarded because the destination was crashed.
    pub to_crashed: u64,
    /// Total payload bytes submitted (as reported by the size callback).
    pub bytes_sent: u64,
    /// Messages discarded by a directed (one-way) link block.
    pub blocked: u64,
    /// Messages discarded by the message-class drop filter.
    pub filtered: u64,
}

/// Predicate deciding whether a message from one node to another is
/// silently discarded.
pub type DropPredicate<M> = Box<dyn Fn(&M, NodeId, NodeId) -> bool>;

/// A targeted message-class drop predicate (nemesis): returns `true`
/// for messages that must be silently discarded. Kept in a newtype so
/// `SimNet` can stay `derive(Debug)`.
pub struct DropFilter<M>(DropPredicate<M>);

impl<M> std::fmt::Debug for DropFilter<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("DropFilter(..)")
    }
}

enum Scheduled<M, T> {
    Deliver { from: NodeId, to: NodeId, to_incarnation: u64, msg: M },
    Timer { node: NodeId, incarnation: u64, timer: T },
    Control { id: u64 },
}

impl<M, T> PartialEq for Scheduled<M, T> {
    fn eq(&self, _other: &Self) -> bool {
        false // ordering uses (time, seq) only; payload equality unused
    }
}
impl<M, T> Eq for Scheduled<M, T> {}

impl<M, T> std::fmt::Debug for Scheduled<M, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scheduled::Deliver { from, to, .. } => write!(f, "Deliver({from}->{to})"),
            Scheduled::Timer { node, .. } => write!(f, "Timer({node})"),
            Scheduled::Control { id } => write!(f, "Control({id})"),
        }
    }
}

/// The deterministic simulated network.
///
/// Generic over the message type `M` and timer payload `T`.
///
/// # Examples
///
/// ```
/// use vsr_simnet::net::{Event, NetConfig, SimNet};
///
/// let mut net: SimNet<&str, ()> = SimNet::new(NetConfig::reliable(42));
/// net.send(1, 2, "hello", 0);
/// let (time, event) = net.pop().expect("scheduled");
/// assert!(time >= 1);
/// assert_eq!(event, Event::Deliver { from: 1, to: 2, msg: "hello" });
/// ```
#[derive(Debug)]
pub struct SimNet<M, T> {
    queue: EventQueue<Scheduled<M, T>>,
    now: u64,
    rng: SmallRng,
    cfg: NetConfig,
    /// Partition label per node; nodes communicate iff labels are equal.
    /// Absent nodes implicitly carry label 0.
    labels: BTreeMap<NodeId, u64>,
    /// Per-link delay overrides (applied in both directions): the pair
    /// key is stored with the smaller node first.
    link_delays: BTreeMap<(NodeId, NodeId), (u64, u64)>,
    /// Directed link blocks: a `(from, to)` entry silently discards
    /// traffic in that direction only (one-way partition).
    blocked_links: BTreeSet<(NodeId, NodeId)>,
    /// Per-link drop-probability overrides (both directions, smaller
    /// node first); override the global `drop_prob` for that link.
    link_drop: BTreeMap<(NodeId, NodeId), f64>,
    /// "Gray" slow nodes: delay multiplier applied to every message the
    /// node sends or receives. Absent nodes carry factor 1.
    slowdown: BTreeMap<NodeId, u64>,
    /// Per-node clock skew applied to timer offsets, as a rational
    /// `num / den` factor (a slow clock has `num > den`: its timers
    /// fire late relative to global simulated time).
    timer_skew: BTreeMap<NodeId, (u64, u64)>,
    /// Targeted message-class drop predicate, if armed.
    drop_filter: Option<DropFilter<M>>,
    crashed: BTreeSet<NodeId>,
    incarnation: BTreeMap<NodeId, u64>,
    stats: NetStats,
}

impl<M, T> SimNet<M, T> {
    /// Create a network with the given fault parameters.
    pub fn new(cfg: NetConfig) -> Self {
        assert!(cfg.min_delay <= cfg.max_delay, "min_delay must not exceed max_delay");
        assert!((0.0..=1.0).contains(&cfg.drop_prob), "drop_prob out of range");
        assert!((0.0..=1.0).contains(&cfg.dup_prob), "dup_prob out of range");
        SimNet {
            queue: EventQueue::new(),
            now: 0,
            rng: SmallRng::seed_from_u64(cfg.seed),
            cfg,
            labels: BTreeMap::new(),
            link_delays: BTreeMap::new(),
            blocked_links: BTreeSet::new(),
            link_drop: BTreeMap::new(),
            slowdown: BTreeMap::new(),
            timer_skew: BTreeMap::new(),
            drop_filter: None,
            crashed: BTreeSet::new(),
            incarnation: BTreeMap::new(),
            stats: NetStats::default(),
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Submit a message. `size` is the payload's wire size for byte
    /// accounting (pass 0 if unneeded).
    pub fn send(&mut self, from: NodeId, to: NodeId, msg: M, size: usize) {
        if !self.admit(from, to, &msg, size) {
            return;
        }
        let duplicate = self.cfg.dup_prob > 0.0 && self.rng.gen_bool(self.cfg.dup_prob);
        let to_inc = self.incarnation_of(to);
        let delay = self.delay(from, to);
        self.queue.schedule(
            self.now + delay,
            Scheduled::Deliver { from, to, to_incarnation: to_inc, msg },
        );
        if duplicate {
            self.stats.duplicated += 1;
            // A duplicate requires M: Clone; exposed through `send` only
            // when cloneable via the inherent method below.
        }
    }

    /// Run the loss gauntlet for one message: account it, then apply
    /// (in order) directed blocks, partitions, crash state, the
    /// message-class filter, and probabilistic drop. Only the last
    /// consumes randomness, so arming filters/blocks does not perturb
    /// the delay stream of unrelated traffic.
    fn admit(&mut self, from: NodeId, to: NodeId, msg: &M, size: usize) -> bool {
        self.stats.sent += 1;
        self.stats.bytes_sent += size as u64;
        if self.blocked_links.contains(&(from, to)) {
            self.stats.blocked += 1;
            return false;
        }
        if self.label(from) != self.label(to) {
            self.stats.partitioned += 1;
            return false;
        }
        if self.crashed.contains(&to) {
            self.stats.to_crashed += 1;
            return false;
        }
        if self.drop_filter.as_ref().is_some_and(|f| (f.0)(msg, from, to)) {
            self.stats.filtered += 1;
            return false;
        }
        let drop_prob = self
            .link_drop
            .get(&(from.min(to), from.max(to)))
            .copied()
            .unwrap_or(self.cfg.drop_prob);
        if drop_prob > 0.0 && self.rng.gen_bool(drop_prob) {
            self.stats.dropped += 1;
            return false;
        }
        true
    }

    fn delay(&mut self, from: NodeId, to: NodeId) -> u64 {
        let key = (from.min(to), from.max(to));
        let (min, max) =
            self.link_delays.get(&key).copied().unwrap_or((self.cfg.min_delay, self.cfg.max_delay));
        let base = if min == max { min } else { self.rng.gen_range(min..=max) };
        // A gray node slows everything it touches, in both directions.
        let factor = self
            .slowdown
            .get(&from)
            .copied()
            .unwrap_or(1)
            .max(self.slowdown.get(&to).copied().unwrap_or(1));
        base.saturating_mul(factor)
    }

    /// Override the delay window for the link between `a` and `b` (both
    /// directions). Used to model asymmetric topologies, e.g. one slow
    /// (remote) replica.
    pub fn set_link_delay(&mut self, a: NodeId, b: NodeId, min: u64, max: u64) {
        assert!(min <= max, "min delay must not exceed max");
        self.link_delays.insert((a.min(b), a.max(b)), (min, max));
    }

    /// Remove a per-link delay override.
    pub fn clear_link_delay(&mut self, a: NodeId, b: NodeId) {
        self.link_delays.remove(&(a.min(b), a.max(b)));
    }

    /// Arm a timer for `node`, `after` ticks from now (as measured by
    /// the node's possibly-skewed clock). Timers of crashed incarnations
    /// never fire.
    pub fn set_timer(&mut self, node: NodeId, after: u64, timer: T) {
        let after = match self.timer_skew.get(&node) {
            Some(&(num, den)) => {
                let skewed = (u128::from(after) * u128::from(num)) / u128::from(den);
                // A nonzero offset never rounds down to "immediately".
                u64::try_from(skewed).unwrap_or(u64::MAX).max(u64::from(after > 0))
            }
            None => after,
        };
        let incarnation = self.incarnation_of(node);
        self.queue.schedule(self.now + after, Scheduled::Timer { node, incarnation, timer });
    }

    /// Schedule a harness control point at absolute time `at`.
    pub fn schedule_control(&mut self, at: u64, id: u64) {
        let at = at.max(self.now);
        self.queue.schedule(at, Scheduled::Control { id });
    }

    /// Pop the next event, advancing simulated time. Messages to crashed
    /// nodes and timers of dead incarnations are skipped transparently.
    pub fn pop(&mut self) -> Option<(u64, Event<M, T>)> {
        loop {
            let (time, scheduled) = self.queue.pop()?;
            debug_assert!(time >= self.now, "time went backwards");
            self.now = time;
            match scheduled {
                Scheduled::Deliver { from, to, to_incarnation, msg } => {
                    if self.crashed.contains(&to) || self.incarnation_of(to) != to_incarnation {
                        self.stats.to_crashed += 1;
                        continue;
                    }
                    self.stats.delivered += 1;
                    return Some((time, Event::Deliver { from, to, msg }));
                }
                Scheduled::Timer { node, incarnation, timer } => {
                    if self.crashed.contains(&node) || self.incarnation_of(node) != incarnation {
                        continue;
                    }
                    return Some((time, Event::TimerFire { node, timer }));
                }
                Scheduled::Control { id } => return Some((time, Event::Control { id })),
            }
        }
    }

    /// Whether any event remains.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// The time of the earliest scheduled entry, if any. (The entry may
    /// turn out to be stale — a delivery to a crashed node — in which
    /// case [`pop`](SimNet::pop) transparently skips it.)
    pub fn peek_time(&self) -> Option<u64> {
        self.queue.peek_time()
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    // ------------------------------------------------------------------
    // fault injection
    // ------------------------------------------------------------------

    /// Crash a node: pending deliveries and timers to it are discarded.
    pub fn crash(&mut self, node: NodeId) {
        self.crashed.insert(node);
    }

    /// Recover a node with a fresh incarnation (old timers stay dead).
    pub fn recover(&mut self, node: NodeId) {
        self.crashed.remove(&node);
        *self.incarnation.entry(node).or_insert(0) += 1;
    }

    /// Whether `node` is currently crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.contains(&node)
    }

    /// Split the network: nodes in the same group can communicate; a node
    /// not mentioned joins group 0. In-flight messages across the new
    /// boundary are *not* recalled (they were already "in the wire").
    pub fn set_partitions(&mut self, groups: &[Vec<NodeId>]) {
        self.labels.clear();
        for (i, group) in groups.iter().enumerate() {
            for &n in group {
                self.labels.insert(n, i as u64);
            }
        }
    }

    /// Heal all partitions.
    pub fn heal_partitions(&mut self) {
        self.labels.clear();
    }

    /// Whether two nodes can currently communicate.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        self.label(a) == self.label(b)
    }

    // ------------------------------------------------------------------
    // nemesis fault classes
    // ------------------------------------------------------------------

    /// Block the directed link `from -> to` (one-way partition). The
    /// reverse direction is unaffected; in-flight messages are not
    /// recalled.
    pub fn block_link(&mut self, from: NodeId, to: NodeId) {
        self.blocked_links.insert((from, to));
    }

    /// Unblock the directed link `from -> to`.
    pub fn unblock_link(&mut self, from: NodeId, to: NodeId) {
        self.blocked_links.remove(&(from, to));
    }

    /// Remove every directed link block.
    pub fn clear_blocked_links(&mut self) {
        self.blocked_links.clear();
    }

    /// Whether the directed link `from -> to` is currently blocked.
    pub fn is_blocked(&self, from: NodeId, to: NodeId) -> bool {
        self.blocked_links.contains(&(from, to))
    }

    /// Override the drop probability on the link between `a` and `b`
    /// (both directions), replacing the global `drop_prob` for it.
    pub fn set_link_drop(&mut self, a: NodeId, b: NodeId, prob: f64) {
        assert!((0.0..=1.0).contains(&prob), "drop probability out of range");
        self.link_drop.insert((a.min(b), a.max(b)), prob);
    }

    /// Remove a per-link drop-probability override.
    pub fn clear_link_drop(&mut self, a: NodeId, b: NodeId) {
        self.link_drop.remove(&(a.min(b), a.max(b)));
    }

    /// Mark `node` as "gray": every message it sends or receives takes
    /// `factor` times the sampled delay. `factor == 1` is normal speed.
    pub fn set_node_slowdown(&mut self, node: NodeId, factor: u64) {
        assert!(factor >= 1, "slowdown factor must be at least 1");
        if factor == 1 {
            self.slowdown.remove(&node);
        } else {
            self.slowdown.insert(node, factor);
        }
    }

    /// Restore `node` to normal speed.
    pub fn clear_node_slowdown(&mut self, node: NodeId) {
        self.slowdown.remove(&node);
    }

    /// Skew `node`'s clock: timer offsets are scaled by `num / den`
    /// (`num > den` = slow clock, its timeouts fire late; `num < den` =
    /// fast clock, they fire early). Applies to timers armed after the
    /// call; already-armed timers keep their fire time.
    pub fn set_timer_skew(&mut self, node: NodeId, num: u64, den: u64) {
        assert!(num > 0 && den > 0, "timer skew must be a positive ratio");
        if num == den {
            self.timer_skew.remove(&node);
        } else {
            self.timer_skew.insert(node, (num, den));
        }
    }

    /// Remove `node`'s clock skew.
    pub fn clear_timer_skew(&mut self, node: NodeId) {
        self.timer_skew.remove(&node);
    }

    /// Arm a targeted message-class drop: every message for which
    /// `filter` returns `true` is silently discarded (counted in
    /// [`NetStats::filtered`]). Replaces any existing filter. The
    /// filter must be deterministic or reproducibility is lost.
    pub fn set_drop_filter<F>(&mut self, filter: F)
    where
        F: Fn(&M, NodeId, NodeId) -> bool + 'static,
    {
        self.drop_filter = Some(DropFilter(Box::new(filter)));
    }

    /// Disarm the message-class drop filter.
    pub fn clear_drop_filter(&mut self) {
        self.drop_filter = None;
    }

    /// Remove every nemesis fault at once: directed blocks, per-link
    /// drop overrides, gray slowdowns, timer skews, and the drop
    /// filter. Partition labels and per-link delay overrides (topology,
    /// not faults) are left alone.
    pub fn clear_nemesis(&mut self) {
        self.blocked_links.clear();
        self.link_drop.clear();
        self.slowdown.clear();
        self.timer_skew.clear();
        self.drop_filter = None;
    }

    fn label(&self, node: NodeId) -> u64 {
        self.labels.get(&node).copied().unwrap_or(0)
    }

    fn incarnation_of(&self, node: NodeId) -> u64 {
        self.incarnation.get(&node).copied().unwrap_or(0)
    }
}

impl<M: Clone, T> SimNet<M, T> {
    /// Like [`send`](SimNet::send) but able to materialize duplicates
    /// (requires `M: Clone`). Use this from harnesses; `send` alone never
    /// duplicates.
    pub fn send_dup(&mut self, from: NodeId, to: NodeId, msg: M, size: usize) {
        if !self.admit(from, to, &msg, size) {
            return;
        }
        let to_inc = self.incarnation_of(to);
        let duplicate = self.cfg.dup_prob > 0.0 && self.rng.gen_bool(self.cfg.dup_prob);
        if duplicate {
            self.stats.duplicated += 1;
            let delay = self.delay(from, to);
            self.queue.schedule(
                self.now + delay,
                Scheduled::Deliver { from, to, to_incarnation: to_inc, msg: msg.clone() },
            );
        }
        let delay = self.delay(from, to);
        self.queue.schedule(
            self.now + delay,
            Scheduled::Deliver { from, to, to_incarnation: to_inc, msg },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Net = SimNet<&'static str, u32>;

    #[test]
    fn delivers_in_delay_window() {
        let mut net = Net::new(NetConfig { min_delay: 2, max_delay: 5, ..NetConfig::reliable(1) });
        net.send(1, 2, "m", 10);
        let (t, ev) = net.pop().unwrap();
        assert!((2..=5).contains(&t));
        assert_eq!(ev, Event::Deliver { from: 1, to: 2, msg: "m" });
        assert_eq!(net.stats().delivered, 1);
        assert_eq!(net.stats().bytes_sent, 10);
    }

    #[test]
    fn determinism_same_seed() {
        let run = |seed| {
            let mut net = Net::new(NetConfig::lossy(seed));
            for i in 0..100 {
                net.send(i % 5, (i + 1) % 5, "x", 1);
            }
            let mut log = Vec::new();
            while let Some((t, ev)) = net.pop() {
                if let Event::Deliver { from, to, .. } = ev {
                    log.push((t, from, to));
                }
            }
            log
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ");
    }

    #[test]
    fn partition_blocks_and_heals() {
        let mut net = Net::new(NetConfig::reliable(1));
        net.set_partitions(&[vec![1, 2], vec![3]]);
        assert!(net.connected(1, 2));
        assert!(!net.connected(1, 3));
        net.send(1, 3, "blocked", 0);
        assert!(net.pop().is_none());
        assert_eq!(net.stats().partitioned, 1);
        net.heal_partitions();
        net.send(1, 3, "ok", 0);
        assert!(matches!(net.pop(), Some((_, Event::Deliver { .. }))));
    }

    #[test]
    fn crash_discards_messages_and_timers() {
        let mut net = Net::new(NetConfig::reliable(1));
        net.set_timer(2, 10, 99);
        net.send(1, 2, "in-flight", 0);
        net.crash(2);
        assert!(net.pop().is_none(), "everything to node 2 vanishes");
        assert_eq!(net.stats().to_crashed, 1);
    }

    #[test]
    fn recovery_bumps_incarnation() {
        let mut net = Net::new(NetConfig::reliable(1));
        net.set_timer(2, 10, 1);
        net.crash(2);
        net.recover(2);
        // Old-incarnation timer never fires.
        assert!(net.pop().is_none());
        net.set_timer(2, 5, 2);
        assert_eq!(net.pop(), Some((net.now(), Event::TimerFire { node: 2, timer: 2 })));
    }

    #[test]
    fn send_to_crashed_dropped_at_send() {
        let mut net = Net::new(NetConfig::reliable(1));
        net.crash(2);
        net.send(1, 2, "x", 0);
        assert!(net.pop().is_none());
    }

    #[test]
    fn control_points_fire_in_order() {
        let mut net = Net::new(NetConfig::reliable(1));
        net.schedule_control(50, 1);
        net.schedule_control(10, 2);
        assert_eq!(net.pop(), Some((10, Event::Control { id: 2 })));
        assert_eq!(net.pop(), Some((50, Event::Control { id: 1 })));
    }

    #[test]
    fn drop_probability_all() {
        let mut net = Net::new(NetConfig { drop_prob: 1.0, ..NetConfig::reliable(1) });
        for _ in 0..10 {
            net.send(1, 2, "x", 0);
        }
        assert!(net.pop().is_none());
        assert_eq!(net.stats().dropped, 10);
    }

    #[test]
    fn duplication_produces_two_copies() {
        let mut net: SimNet<&'static str, u32> =
            SimNet::new(NetConfig { dup_prob: 1.0, ..NetConfig::reliable(1) });
        net.send_dup(1, 2, "x", 0);
        assert!(matches!(net.pop(), Some((_, Event::Deliver { .. }))));
        assert!(matches!(net.pop(), Some((_, Event::Deliver { .. }))));
        assert!(net.pop().is_none());
        assert_eq!(net.stats().duplicated, 1);
    }

    #[test]
    fn link_delay_override_applies_both_directions() {
        let mut net = Net::new(NetConfig { min_delay: 1, max_delay: 1, ..NetConfig::reliable(1) });
        net.set_link_delay(1, 2, 50, 50);
        net.send(1, 2, "slow", 0);
        assert_eq!(net.pop().unwrap().0, 50);
        net.send(2, 1, "slow-back", 0);
        assert_eq!(net.pop().unwrap().0, 100, "override is symmetric");
        // Other links keep the base delay.
        net.send(1, 3, "fast", 0);
        assert_eq!(net.pop().unwrap().0, 101);
    }

    #[test]
    fn clear_link_delay_restores_base() {
        let mut net = Net::new(NetConfig { min_delay: 2, max_delay: 2, ..NetConfig::reliable(1) });
        net.set_link_delay(1, 2, 40, 40);
        net.clear_link_delay(1, 2);
        net.send(1, 2, "m", 0);
        assert_eq!(net.pop().unwrap().0, 2);
    }

    #[test]
    fn one_way_block_is_directional() {
        let mut net = Net::new(NetConfig::reliable(1));
        net.block_link(1, 2);
        assert!(net.is_blocked(1, 2));
        assert!(!net.is_blocked(2, 1));
        net.send(1, 2, "blocked", 0);
        assert!(net.pop().is_none());
        assert_eq!(net.stats().blocked, 1);
        // The reverse direction still works.
        net.send(2, 1, "ok", 0);
        assert!(matches!(net.pop(), Some((_, Event::Deliver { from: 2, to: 1, .. }))));
        net.unblock_link(1, 2);
        net.send(1, 2, "ok-now", 0);
        assert!(matches!(net.pop(), Some((_, Event::Deliver { from: 1, to: 2, .. }))));
    }

    #[test]
    fn per_link_drop_overrides_global() {
        // Global loss is zero, but link (1,2) drops everything.
        let mut net = Net::new(NetConfig::reliable(1));
        net.set_link_drop(1, 2, 1.0);
        net.send(1, 2, "x", 0);
        net.send(2, 1, "y", 0);
        assert!(net.pop().is_none(), "override applies to both directions");
        assert_eq!(net.stats().dropped, 2);
        net.send(1, 3, "z", 0);
        assert!(net.pop().is_some(), "other links keep the global drop_prob");
        net.clear_link_drop(1, 2);
        net.send(1, 2, "w", 0);
        assert!(net.pop().is_some());
    }

    #[test]
    fn gray_node_slows_both_directions() {
        let mut net = Net::new(NetConfig { min_delay: 2, max_delay: 2, ..NetConfig::reliable(1) });
        net.set_node_slowdown(2, 10);
        net.send(1, 2, "in", 0);
        assert_eq!(net.pop().unwrap().0, 20, "inbound delay is multiplied");
        net.send(2, 3, "out", 0);
        assert_eq!(net.pop().unwrap().0, 40, "outbound delay is multiplied");
        net.send(1, 3, "bystander", 0);
        assert_eq!(net.pop().unwrap().0, 42, "unrelated links unaffected");
        net.clear_node_slowdown(2);
        net.send(1, 2, "healed", 0);
        assert_eq!(net.pop().unwrap().0, 44);
    }

    #[test]
    fn timer_skew_scales_offsets() {
        let mut net = Net::new(NetConfig::reliable(1));
        net.set_timer_skew(1, 3, 2); // slow clock: 1.5x late
        net.set_timer(1, 10, 1);
        assert_eq!(net.pop(), Some((15, Event::TimerFire { node: 1, timer: 1 })));
        net.set_timer_skew(2, 1, 2); // fast clock: 2x early
        net.set_timer(2, 10, 2);
        assert_eq!(net.pop(), Some((20, Event::TimerFire { node: 2, timer: 2 })));
        net.clear_timer_skew(1);
        net.set_timer(1, 10, 3);
        assert_eq!(net.pop(), Some((30, Event::TimerFire { node: 1, timer: 3 })));
        // A nonzero offset never collapses to zero ticks.
        net.set_timer_skew(3, 1, 100);
        net.set_timer(3, 1, 4);
        assert_eq!(net.pop(), Some((31, Event::TimerFire { node: 3, timer: 4 })));
    }

    #[test]
    fn drop_filter_targets_message_class() {
        let mut net = Net::new(NetConfig::reliable(1));
        net.set_drop_filter(|msg: &&'static str, _from, _to| *msg == "commit");
        net.send(1, 2, "commit", 0);
        net.send(1, 2, "prepare", 0);
        let (_, ev) = net.pop().expect("non-matching message survives");
        assert_eq!(ev, Event::Deliver { from: 1, to: 2, msg: "prepare" });
        assert!(net.pop().is_none());
        assert_eq!(net.stats().filtered, 1);
        net.clear_drop_filter();
        net.send(1, 2, "commit", 0);
        assert!(net.pop().is_some());
    }

    #[test]
    fn nemesis_features_do_not_perturb_rng_stream() {
        // Arming no-op nemesis state must leave delay sampling identical:
        // fault plans that only touch other nodes stay reproducible.
        let run = |nemesis: bool| {
            let mut net = Net::new(NetConfig::lossy(9));
            if nemesis {
                net.block_link(90, 91);
                net.set_drop_filter(|_m, from, _to| from == 90);
                net.set_node_slowdown(92, 4);
                net.set_timer_skew(93, 2, 1);
            }
            let mut log = Vec::new();
            for i in 0..50 {
                net.send(i % 5, (i + 1) % 5, "x", 1);
            }
            while let Some((t, ev)) = net.pop() {
                if let Event::Deliver { from, to, .. } = ev {
                    log.push((t, from, to));
                }
            }
            log
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn timers_fire_at_exact_offset() {
        let mut net = Net::new(NetConfig::reliable(1));
        net.set_timer(1, 7, 42);
        assert_eq!(net.pop(), Some((7, Event::TimerFire { node: 1, timer: 42 })));
        // Timer offsets are relative to "now" at arming time.
        net.set_timer(1, 3, 43);
        assert_eq!(net.pop(), Some((10, Event::TimerFire { node: 1, timer: 43 })));
    }
}
