//! # Deterministic network simulation
//!
//! A seeded discrete-event simulator providing the fault model assumed by
//! the Viewstamped Replication paper (Section 1): an asynchronous network
//! that may lose, delay, duplicate, and reorder messages and partition
//! into subnetworks, over fail-stop nodes that crash (losing volatile
//! state) and recover.
//!
//! The simulator is generic over message and timer payload types, so the
//! same substrate drives both the VR protocol and the baseline
//! replication schemes it is compared against.
//!
//! ```
//! use vsr_simnet::net::{Event, NetConfig, SimNet};
//!
//! let mut net: SimNet<&str, &str> = SimNet::new(NetConfig::reliable(7));
//! net.send(0, 1, "ping", 4);
//! net.set_timer(0, 100, "timeout");
//! let (_, first) = net.pop().unwrap();
//! assert!(matches!(first, Event::Deliver { msg: "ping", .. }));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod net;
pub mod queue;

pub use net::{Event, NetConfig, NetStats, NodeId, SimNet};
