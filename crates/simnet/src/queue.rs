//! A deterministic discrete-event queue.
//!
//! Events are ordered by `(time, sequence)` where the sequence number is
//! assigned at scheduling time — two events scheduled for the same tick
//! pop in scheduling order, so a run is a pure function of the inputs and
//! the RNG seed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A scheduled entry: ordered by time, then insertion sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry<E> {
    time: u64,
    seq: u64,
    event: E,
}

impl<E: Eq> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E: Eq> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic event queue over event payloads `E`.
///
/// # Examples
///
/// ```
/// use vsr_simnet::queue::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(5, "later");
/// q.schedule(1, "first");
/// q.schedule(5, "also-later");
/// assert_eq!(q.pop(), Some((1, "first")));
/// assert_eq!(q.pop(), Some((5, "later")));
/// assert_eq!(q.pop(), Some((5, "also-later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventQueue<E: Eq> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
}

impl<E: Eq> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedule `event` at absolute `time`.
    pub fn schedule(&mut self, time: u64, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Remove and return the earliest event with its time.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// The time of the earliest event, if any.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_same_tick() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(7, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn time_order_dominates() {
        let mut q = EventQueue::new();
        q.schedule(9, 'b');
        q.schedule(3, 'a');
        q.schedule(12, 'c');
        assert_eq!(q.peek_time(), Some(3));
        assert_eq!(q.pop(), Some((3, 'a')));
        assert_eq!(q.pop(), Some((9, 'b')));
        assert_eq!(q.pop(), Some((12, 'c')));
    }

    #[test]
    fn len_tracks() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, ());
        q.schedule(2, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
