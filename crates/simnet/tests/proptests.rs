//! Property-based tests of the network simulator's guarantees.

use proptest::prelude::*;
use vsr_simnet::net::{Event, NetConfig, SimNet};

type Net = SimNet<u64, u64>;

proptest! {
    /// Time never goes backwards, regardless of the scheduling pattern.
    #[test]
    fn time_is_monotone(
        seed in 0u64..10_000,
        sends in prop::collection::vec((0u64..5, 0u64..5, 0u64..100), 0..50),
        timers in prop::collection::vec((0u64..5, 0u64..200), 0..20),
    ) {
        let mut net = Net::new(NetConfig::lossy(seed));
        for (i, &(from, to, _)) in sends.iter().enumerate() {
            net.send(from, to, i as u64, 8);
        }
        for &(node, after) in &timers {
            net.set_timer(node, after, node);
        }
        let mut last = 0;
        while let Some((t, _)) = net.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// With a reliable config, every message to a live node is delivered
    /// exactly once, within its delay window.
    #[test]
    fn reliable_delivers_exactly_once(
        seed in 0u64..10_000,
        sends in prop::collection::vec((0u64..5, 0u64..5), 1..40),
    ) {
        let mut net = Net::new(NetConfig::reliable(seed));
        for (i, &(from, to)) in sends.iter().enumerate() {
            net.send(from, to, i as u64, 8);
        }
        let mut seen = std::collections::BTreeSet::new();
        while let Some((t, event)) = net.pop() {
            if let Event::Deliver { msg, .. } = event {
                prop_assert!((1..=3).contains(&t) , "delay window [1,3], got {t}");
                prop_assert!(seen.insert(msg), "no duplicates from a reliable net");
            }
        }
        prop_assert_eq!(seen.len(), sends.len(), "nothing lost");
    }

    /// Partitions block exactly the cross-partition messages sent while
    /// the partition is up.
    #[test]
    fn partitions_block_cross_traffic(
        seed in 0u64..10_000,
        sends in prop::collection::vec((0u64..6, 0u64..6), 1..40),
        split in 1u64..5,
    ) {
        let mut net = Net::new(NetConfig::reliable(seed));
        let side_a: Vec<u64> = (0..split).collect();
        let side_b: Vec<u64> = (split..6).collect();
        net.set_partitions(&[side_a.clone(), side_b.clone()]);
        let mut expected = 0;
        for (i, &(from, to)) in sends.iter().enumerate() {
            net.send(from, to, i as u64, 8);
            if (from < split) == (to < split) {
                expected += 1;
            }
        }
        let mut delivered = 0;
        while let Some((_, event)) = net.pop() {
            if let Event::Deliver { from, to, .. } = event {
                prop_assert_eq!(
                    from < split,
                    to < split,
                    "no delivery crosses the partition"
                );
                delivered += 1;
            }
        }
        prop_assert_eq!(delivered, expected);
    }

    /// Crash + recover: timers armed before the crash never fire; timers
    /// armed after recovery always do.
    #[test]
    fn incarnation_fencing(
        seed in 0u64..10_000,
        old_timers in prop::collection::vec(1u64..50, 0..10),
        new_timers in prop::collection::vec(1u64..50, 0..10),
    ) {
        let mut net = Net::new(NetConfig::reliable(seed));
        for (i, &after) in old_timers.iter().enumerate() {
            net.set_timer(1, after, i as u64);
        }
        net.crash(1);
        net.recover(1);
        for (i, &after) in new_timers.iter().enumerate() {
            net.set_timer(1, after, 1000 + i as u64);
        }
        let mut fired = Vec::new();
        while let Some((_, event)) = net.pop() {
            if let Event::TimerFire { timer, .. } = event {
                fired.push(timer);
            }
        }
        prop_assert!(fired.iter().all(|&t| t >= 1000), "old timers dead: {:?}", fired);
        prop_assert_eq!(fired.len(), new_timers.len(), "new timers all fire");
    }

    /// Statistics are conserved: sent = delivered + dropped + partitioned
    /// + to_crashed (once drained, with no duplication).
    #[test]
    fn stats_conservation(
        seed in 0u64..10_000,
        sends in prop::collection::vec((0u64..4, 0u64..4), 0..60),
        crash_node in 0u64..4,
        drop_prob in 0.0f64..0.5,
    ) {
        let mut net = Net::new(NetConfig {
            min_delay: 1,
            max_delay: 4,
            drop_prob,
            dup_prob: 0.0,
            seed,
        });
        net.crash(crash_node);
        for (i, &(from, to)) in sends.iter().enumerate() {
            net.send(from, to, i as u64, 8);
        }
        while net.pop().is_some() {}
        let s = net.stats();
        prop_assert_eq!(
            s.sent,
            s.delivered + s.dropped + s.partitioned + s.to_crashed,
            "{:?}", s
        );
    }
}
