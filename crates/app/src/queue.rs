//! A replicated FIFO queue module.
//!
//! Unlike the key-value and counter modules, every operation touches
//! *several* atomic objects (the head pointer, the tail pointer, and a
//! slot), which exercises multi-object locking and multi-write
//! completed-call records.
//!
//! Object layout: object 0 = head index, object 1 = tail index, object
//! `2 + (i % capacity)` = slot `i`.
//!
//! Procedures:
//!
//! | procedure | args | result |
//! |-----------|------|--------|
//! | `enqueue` | item bytes | new length |
//! | `dequeue` | —    | `1, item` or `0` if empty |
//! | `peek`    | —    | `1, item` or `0` if empty (read-only) |
//! | `len`     | —    | current length (read-only) |

use crate::codec::{Decoder, Encoder};
use vsr_core::cohort::CallOp;
use vsr_core::gstate::Value;
use vsr_core::module::{Module, ModuleError, TxnCtx};
use vsr_core::types::{GroupId, ObjectId};

const HEAD: ObjectId = ObjectId(0);
const TAIL: ObjectId = ObjectId(1);
const SLOT_BASE: u64 = 2;

/// The queue module with a fixed slot capacity (a bound on *in-flight*
/// items, not on total throughput: slots are reused cyclically).
#[derive(Debug, Clone, Copy)]
pub struct QueueModule {
    capacity: u64,
}

impl QueueModule {
    /// A queue able to hold up to `capacity` items at once.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        QueueModule { capacity }
    }

    fn slot(&self, index: u64) -> ObjectId {
        ObjectId(SLOT_BASE + (index % self.capacity))
    }
}

impl Default for QueueModule {
    fn default() -> Self {
        QueueModule::new(64)
    }
}

fn read_index(ctx: &mut TxnCtx<'_>, oid: ObjectId) -> Result<u64, ModuleError> {
    match ctx.read(oid)? {
        Some(v) => Decoder::new(v.as_bytes())
            .u64("queue.index")
            .map_err(|e| ModuleError::App(e.to_string())),
        None => Ok(0),
    }
}

fn write_index(ctx: &mut TxnCtx<'_>, oid: ObjectId, value: u64) -> Result<(), ModuleError> {
    ctx.write(oid, Value(Encoder::new().u64(value).finish()))
}

impl Module for QueueModule {
    fn execute(&self, proc: &str, args: &[u8], ctx: &mut TxnCtx<'_>) -> Result<Value, ModuleError> {
        match proc {
            "enqueue" => {
                let head = read_index(ctx, HEAD)?;
                let tail = read_index(ctx, TAIL)?;
                let len = tail - head;
                if len >= self.capacity {
                    return Err(ModuleError::App(format!(
                        "queue full ({len}/{} in flight)",
                        self.capacity
                    )));
                }
                ctx.write(self.slot(tail), Value::from(args))?;
                write_index(ctx, TAIL, tail + 1)?;
                Ok(Value(Encoder::new().u64(len + 1).finish()))
            }
            "dequeue" => {
                let head = read_index(ctx, HEAD)?;
                let tail = read_index(ctx, TAIL)?;
                if head == tail {
                    return Ok(Value(Encoder::new().u64(0).finish()));
                }
                let item = ctx
                    .read(self.slot(head))?
                    .ok_or_else(|| ModuleError::App("missing slot".into()))?;
                write_index(ctx, HEAD, head + 1)?;
                Ok(Value(Encoder::new().u64(1).bytes(item.as_bytes()).finish()))
            }
            "peek" => {
                let head = read_index(ctx, HEAD)?;
                let tail = read_index(ctx, TAIL)?;
                if head == tail {
                    return Ok(Value(Encoder::new().u64(0).finish()));
                }
                let item = ctx
                    .read(self.slot(head))?
                    .ok_or_else(|| ModuleError::App("missing slot".into()))?;
                Ok(Value(Encoder::new().u64(1).bytes(item.as_bytes()).finish()))
            }
            "len" => {
                let head = read_index(ctx, HEAD)?;
                let tail = read_index(ctx, TAIL)?;
                Ok(Value(Encoder::new().u64(tail - head).finish()))
            }
            other => Err(ModuleError::UnknownProcedure(other.to_string())),
        }
    }
}

/// Build an `enqueue` call op.
pub fn enqueue(group: GroupId, item: &[u8]) -> CallOp {
    CallOp { group, proc: "enqueue".into(), args: item.to_vec() }
}

/// Build a `dequeue` call op.
pub fn dequeue(group: GroupId) -> CallOp {
    CallOp { group, proc: "dequeue".into(), args: Vec::new() }
}

/// Build a `peek` call op.
pub fn peek(group: GroupId) -> CallOp {
    CallOp { group, proc: "peek".into(), args: Vec::new() }
}

/// Build a `len` call op.
pub fn len(group: GroupId) -> CallOp {
    CallOp { group, proc: "len".into(), args: Vec::new() }
}

/// Decode a `dequeue`/`peek` reply into `Option<Vec<u8>>`.
///
/// # Errors
///
/// Returns an error string if the reply is malformed.
pub fn decode_item(reply: &[u8]) -> Result<Option<Vec<u8>>, String> {
    let mut dec = Decoder::new(reply);
    match dec.u64("queue.present").map_err(|e| e.to_string())? {
        0 => Ok(None),
        1 => Ok(Some(dec.bytes("queue.item").map_err(|e| e.to_string())?.to_vec())),
        other => Err(format!("bad queue discriminant {other}")),
    }
}

/// Decode a `len`/`enqueue` reply.
///
/// # Errors
///
/// Returns an error string if the reply is malformed.
pub fn decode_len(reply: &[u8]) -> Result<u64, String> {
    Decoder::new(reply).u64("queue.len").map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsr_core::gstate::GroupState;
    use vsr_core::locks::LockTable;
    use vsr_core::types::{Aid, Mid, ViewId};

    const G: GroupId = GroupId(1);

    /// Run a sequence of ops as committed transactions over an evolving
    /// state (each op = one transaction, applied on success).
    struct Harness {
        gstate: GroupState,
        module: QueueModule,
        seq: u64,
    }

    impl Harness {
        fn new(capacity: u64) -> Self {
            Harness { gstate: GroupState::new(), module: QueueModule::new(capacity), seq: 0 }
        }

        fn run(&mut self, op: &CallOp) -> Result<Value, ModuleError> {
            let locks = LockTable::new();
            let aid = Aid { group: G, view: ViewId::initial(Mid(0)), seq: self.seq };
            self.seq += 1;
            let mut ctx = TxnCtx::new(&self.gstate, &locks, aid);
            let result = self.module.execute(&op.proc, &op.args, &mut ctx)?;
            // Apply as if committed.
            let accesses = ctx.into_accesses();
            let record = vsr_core::gstate::CompletedCall {
                vs: Default::default(),
                call_id: vsr_core::types::CallId { aid, seq: 0 },
                accesses,
                result: result.clone(),
                nested: Vec::new(),
            };
            self.gstate.store_call(aid, record);
            self.gstate.install_commit(aid);
            Ok(result)
        }
    }

    #[test]
    fn fifo_order() {
        let mut h = Harness::new(8);
        for item in [b"a".as_slice(), b"b", b"c"] {
            h.run(&enqueue(G, item)).unwrap();
        }
        for expected in [b"a".as_slice(), b"b", b"c"] {
            let r = h.run(&dequeue(G)).unwrap();
            assert_eq!(decode_item(r.as_bytes()).unwrap(), Some(expected.to_vec()));
        }
        let r = h.run(&dequeue(G)).unwrap();
        assert_eq!(decode_item(r.as_bytes()).unwrap(), None, "drained");
    }

    #[test]
    fn len_tracks() {
        let mut h = Harness::new(8);
        assert_eq!(decode_len(h.run(&len(G)).unwrap().as_bytes()).unwrap(), 0);
        h.run(&enqueue(G, b"x")).unwrap();
        h.run(&enqueue(G, b"y")).unwrap();
        assert_eq!(decode_len(h.run(&len(G)).unwrap().as_bytes()).unwrap(), 2);
        h.run(&dequeue(G)).unwrap();
        assert_eq!(decode_len(h.run(&len(G)).unwrap().as_bytes()).unwrap(), 1);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut h = Harness::new(8);
        h.run(&enqueue(G, b"front")).unwrap();
        for _ in 0..3 {
            let r = h.run(&peek(G)).unwrap();
            assert_eq!(decode_item(r.as_bytes()).unwrap(), Some(b"front".to_vec()));
        }
        assert_eq!(decode_len(h.run(&len(G)).unwrap().as_bytes()).unwrap(), 1);
    }

    #[test]
    fn capacity_enforced_and_slots_reused() {
        let mut h = Harness::new(2);
        h.run(&enqueue(G, b"1")).unwrap();
        h.run(&enqueue(G, b"2")).unwrap();
        assert!(matches!(h.run(&enqueue(G, b"3")), Err(ModuleError::App(_))), "full");
        h.run(&dequeue(G)).unwrap();
        // Slot freed: a new enqueue reuses it.
        h.run(&enqueue(G, b"3")).unwrap();
        let r = h.run(&dequeue(G)).unwrap();
        assert_eq!(decode_item(r.as_bytes()).unwrap(), Some(b"2".to_vec()));
        let r = h.run(&dequeue(G)).unwrap();
        assert_eq!(decode_item(r.as_bytes()).unwrap(), Some(b"3".to_vec()));
    }

    #[test]
    fn long_run_wraps_indices() {
        let mut h = Harness::new(3);
        for i in 0..50u64 {
            h.run(&enqueue(G, format!("{i}").as_bytes())).unwrap();
            let r = h.run(&dequeue(G)).unwrap();
            assert_eq!(
                decode_item(r.as_bytes()).unwrap(),
                Some(format!("{i}").into_bytes()),
                "wraparound preserves FIFO"
            );
        }
    }
}
