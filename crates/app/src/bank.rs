//! A replicated bank-account module.
//!
//! Each account is one atomic object holding a `u64` balance. Cross-group
//! transfers are built as client transactions (a `withdraw` call on one
//! group plus a `deposit` call on another) and committed atomically by
//! two-phase commit — the scenario the paper's distributed-transaction
//! machinery exists for.
//!
//! Procedures:
//!
//! | procedure  | args | result |
//! |------------|------|--------|
//! | `open`     | account, initial | empty (error if account exists) |
//! | `balance`  | account | balance |
//! | `deposit`  | account, amount | new balance |
//! | `withdraw` | account, amount | new balance (error if insufficient) |
//! | `audit`    | account list length, accounts… | sum of balances |

use crate::codec::{Decoder, Encoder};
use vsr_core::cohort::CallOp;
use vsr_core::gstate::Value;
use vsr_core::module::{Module, ModuleError, TxnCtx};
use vsr_core::types::{GroupId, ObjectId};

/// The bank module, optionally pre-populated with accounts at group
/// creation.
#[derive(Debug, Clone, Default)]
pub struct BankModule {
    initial_accounts: Vec<(u64, u64)>,
}

impl BankModule {
    /// A bank with no initial accounts.
    pub fn new() -> Self {
        BankModule::default()
    }

    /// A bank whose group state starts with the given `(account,
    /// balance)` pairs.
    pub fn with_accounts(accounts: Vec<(u64, u64)>) -> Self {
        BankModule { initial_accounts: accounts }
    }
}

fn encode_balance(balance: u64) -> Value {
    Value(Encoder::new().u64(balance).finish())
}

fn decode_balance_value(v: &Value) -> Result<u64, ModuleError> {
    Decoder::new(v.as_bytes()).u64("balance").map_err(|e| ModuleError::App(e.to_string()))
}

impl Module for BankModule {
    fn execute(&self, proc: &str, args: &[u8], ctx: &mut TxnCtx<'_>) -> Result<Value, ModuleError> {
        let mut dec = Decoder::new(args);
        let bad = |e: crate::codec::DecodeError| ModuleError::App(e.to_string());
        match proc {
            "open" => {
                let account = dec.u64("open.account").map_err(bad)?;
                let initial = dec.u64("open.initial").map_err(bad)?;
                if ctx.read(ObjectId(account))?.is_some() {
                    return Err(ModuleError::App(format!("account {account} already exists")));
                }
                ctx.write(ObjectId(account), encode_balance(initial))?;
                Ok(Value::empty())
            }
            "balance" => {
                let account = dec.u64("balance.account").map_err(bad)?;
                let v = ctx
                    .read(ObjectId(account))?
                    .ok_or_else(|| ModuleError::App(format!("no account {account}")))?;
                Ok(v)
            }
            "deposit" => {
                let account = dec.u64("deposit.account").map_err(bad)?;
                let amount = dec.u64("deposit.amount").map_err(bad)?;
                let v = ctx
                    .read(ObjectId(account))?
                    .ok_or_else(|| ModuleError::App(format!("no account {account}")))?;
                let balance = decode_balance_value(&v)?;
                let new = balance
                    .checked_add(amount)
                    .ok_or_else(|| ModuleError::App("balance overflow".into()))?;
                ctx.write(ObjectId(account), encode_balance(new))?;
                Ok(encode_balance(new).clone())
            }
            "withdraw" => {
                let account = dec.u64("withdraw.account").map_err(bad)?;
                let amount = dec.u64("withdraw.amount").map_err(bad)?;
                let v = ctx
                    .read(ObjectId(account))?
                    .ok_or_else(|| ModuleError::App(format!("no account {account}")))?;
                let balance = decode_balance_value(&v)?;
                let new = balance.checked_sub(amount).ok_or_else(|| {
                    ModuleError::App(format!(
                        "insufficient funds: balance {balance}, requested {amount}"
                    ))
                })?;
                ctx.write(ObjectId(account), encode_balance(new))?;
                Ok(encode_balance(new))
            }
            "audit" => {
                let count = dec.u64("audit.count").map_err(bad)?;
                let mut sum: u64 = 0;
                for _ in 0..count {
                    let account = dec.u64("audit.account").map_err(bad)?;
                    if let Some(v) = ctx.read(ObjectId(account))? {
                        sum = sum
                            .checked_add(decode_balance_value(&v)?)
                            .ok_or_else(|| ModuleError::App("audit overflow".into()))?;
                    }
                }
                Ok(encode_balance(sum))
            }
            other => Err(ModuleError::UnknownProcedure(other.to_string())),
        }
    }

    fn initial_objects(&self) -> Vec<(ObjectId, Value)> {
        self.initial_accounts
            .iter()
            .map(|&(account, balance)| (ObjectId(account), encode_balance(balance)))
            .collect()
    }
}

/// Build an `open` call op.
pub fn open(group: GroupId, account: u64, initial: u64) -> CallOp {
    CallOp { group, proc: "open".into(), args: Encoder::new().u64(account).u64(initial).finish() }
}

/// Build a `balance` call op.
pub fn balance(group: GroupId, account: u64) -> CallOp {
    CallOp { group, proc: "balance".into(), args: Encoder::new().u64(account).finish() }
}

/// Build a `deposit` call op.
pub fn deposit(group: GroupId, account: u64, amount: u64) -> CallOp {
    CallOp { group, proc: "deposit".into(), args: Encoder::new().u64(account).u64(amount).finish() }
}

/// Build a `withdraw` call op.
pub fn withdraw(group: GroupId, account: u64, amount: u64) -> CallOp {
    CallOp {
        group,
        proc: "withdraw".into(),
        args: Encoder::new().u64(account).u64(amount).finish(),
    }
}

/// Build an `audit` call op summing the given accounts.
pub fn audit(group: GroupId, accounts: &[u64]) -> CallOp {
    let mut enc = Encoder::new().u64(accounts.len() as u64);
    for &a in accounts {
        enc = enc.u64(a);
    }
    CallOp { group, proc: "audit".into(), args: enc.finish() }
}

/// Decode a balance reply.
///
/// # Errors
///
/// Returns an error string if the reply is malformed.
pub fn decode_balance(reply: &[u8]) -> Result<u64, String> {
    Decoder::new(reply).u64("balance").map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsr_core::gstate::GroupState;
    use vsr_core::locks::LockTable;
    use vsr_core::types::{Aid, Mid, ViewId};

    fn aid() -> Aid {
        Aid { group: GroupId(1), view: ViewId::initial(Mid(0)), seq: 0 }
    }

    fn bank_state(accounts: Vec<(u64, u64)>) -> GroupState {
        GroupState::with_objects(BankModule::with_accounts(accounts).initial_objects())
    }

    fn run(g: &GroupState, op: &CallOp) -> Result<Value, ModuleError> {
        let locks = LockTable::new();
        let mut ctx = TxnCtx::new(g, &locks, aid());
        BankModule::new().execute(&op.proc, &op.args, &mut ctx)
    }

    const G: GroupId = GroupId(1);

    #[test]
    fn deposit_and_withdraw() {
        let g = bank_state(vec![(1, 100)]);
        let r = run(&g, &deposit(G, 1, 50)).unwrap();
        assert_eq!(decode_balance(r.as_bytes()).unwrap(), 150);
        let r = run(&g, &withdraw(G, 1, 30)).unwrap();
        // Each run is an independent transaction context over the same
        // committed state.
        assert_eq!(decode_balance(r.as_bytes()).unwrap(), 70);
    }

    #[test]
    fn insufficient_funds_refused() {
        let g = bank_state(vec![(1, 10)]);
        let err = run(&g, &withdraw(G, 1, 11)).unwrap_err();
        assert!(matches!(err, ModuleError::App(msg) if msg.contains("insufficient")));
    }

    #[test]
    fn missing_account_refused() {
        let g = bank_state(vec![]);
        assert!(run(&g, &balance(G, 9)).is_err());
        assert!(run(&g, &deposit(G, 9, 1)).is_err());
        assert!(run(&g, &withdraw(G, 9, 1)).is_err());
    }

    #[test]
    fn open_then_reopen_refused() {
        let g = bank_state(vec![(1, 5)]);
        let err = run(&g, &open(G, 1, 99)).unwrap_err();
        assert!(matches!(err, ModuleError::App(msg) if msg.contains("already exists")));
    }

    #[test]
    fn audit_sums() {
        let g = bank_state(vec![(1, 10), (2, 20), (3, 30)]);
        let r = run(&g, &audit(G, &[1, 2, 3])).unwrap();
        assert_eq!(decode_balance(r.as_bytes()).unwrap(), 60);
        // Missing accounts contribute zero.
        let r = run(&g, &audit(G, &[1, 99])).unwrap();
        assert_eq!(decode_balance(r.as_bytes()).unwrap(), 10);
    }

    #[test]
    fn overflow_guarded() {
        let g = bank_state(vec![(1, u64::MAX)]);
        assert!(run(&g, &deposit(G, 1, 1)).is_err());
    }

    #[test]
    fn initial_objects_encode_balances() {
        let module = BankModule::with_accounts(vec![(7, 42)]);
        let objs = module.initial_objects();
        assert_eq!(objs.len(), 1);
        assert_eq!(objs[0].0, ObjectId(7));
        assert_eq!(decode_balance(objs[0].1.as_bytes()).unwrap(), 42);
    }
}
