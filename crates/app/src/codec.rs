//! A minimal, dependency-free binary codec for procedure arguments and
//! results.
//!
//! Values are sequences of length-prefixed fields; integers are
//! little-endian `u64`. Deliberately tiny: application modules must be
//! deterministic, and a hand-rolled codec keeps the encoding stable and
//! auditable.

use std::fmt;

/// A decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What was being decoded.
    pub context: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed encoding while decoding {}", self.context)
    }
}

impl std::error::Error for DecodeError {}

/// An append-only encoder.
#[derive(Debug, Clone, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// Append a `u64`.
    pub fn u64(mut self, v: u64) -> Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a length-prefixed byte string.
    pub fn bytes(mut self, v: &[u8]) -> Self {
        self.buf.extend_from_slice(&(v.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(v);
        self
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(self, v: &str) -> Self {
        self.bytes(v.as_bytes())
    }

    /// Finish, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// A cursor-based decoder.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Decode from `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Read a `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if fewer than 8 bytes remain.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, DecodeError> {
        let end = self.pos.checked_add(8).ok_or(DecodeError { context })?;
        let slice = self.buf.get(self.pos..end).ok_or(DecodeError { context })?;
        self.pos = end;
        Ok(u64::from_le_bytes(slice.try_into().expect("8 bytes")))
    }

    /// Read a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation.
    pub fn bytes(&mut self, context: &'static str) -> Result<&'a [u8], DecodeError> {
        let len = self.u64(context)? as usize;
        let end = self.pos.checked_add(len).ok_or(DecodeError { context })?;
        let slice = self.buf.get(self.pos..end).ok_or(DecodeError { context })?;
        self.pos = end;
        Ok(slice)
    }

    /// Read a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation or invalid UTF-8.
    pub fn str(&mut self, context: &'static str) -> Result<&'a str, DecodeError> {
        std::str::from_utf8(self.bytes(context)?).map_err(|_| DecodeError { context })
    }

    /// Whether all input has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed() {
        let enc = Encoder::new().u64(42).bytes(b"hello").str("world").u64(7).finish();
        let mut dec = Decoder::new(&enc);
        assert_eq!(dec.u64("a").unwrap(), 42);
        assert_eq!(dec.bytes("b").unwrap(), b"hello");
        assert_eq!(dec.str("c").unwrap(), "world");
        assert_eq!(dec.u64("d").unwrap(), 7);
        assert!(dec.is_exhausted());
    }

    #[test]
    fn truncation_detected() {
        let enc = Encoder::new().u64(1).finish();
        let mut dec = Decoder::new(&enc[..4]);
        assert!(dec.u64("x").is_err());
    }

    #[test]
    fn bad_length_prefix_detected() {
        let mut raw = (1000u64).to_le_bytes().to_vec();
        raw.extend_from_slice(b"short");
        let mut dec = Decoder::new(&raw);
        assert!(dec.bytes("x").is_err());
    }

    #[test]
    fn invalid_utf8_detected() {
        let enc = Encoder::new().bytes(&[0xff, 0xfe]).finish();
        let mut dec = Decoder::new(&enc);
        assert!(dec.str("x").is_err());
    }

    #[test]
    fn empty_bytes_roundtrip() {
        let enc = Encoder::new().bytes(b"").finish();
        let mut dec = Decoder::new(&enc);
        assert_eq!(dec.bytes("x").unwrap(), b"");
        assert!(dec.is_exhausted());
    }
}
