//! An airline-reservation module — the paper's motivating example: "in
//! airline reservation systems the failure of a single computer can
//! prevent ticket sales for a considerable time" (Section 1).
//!
//! Each flight is one atomic object holding `(capacity, booked)`.
//!
//! Procedures:
//!
//! | procedure       | args | result |
//! |-----------------|------|--------|
//! | `create_flight` | flight, capacity | empty |
//! | `reserve`       | flight, seats | seats remaining (error if full) |
//! | `cancel`        | flight, seats | seats remaining |
//! | `available`     | flight | seats remaining |

use crate::codec::{Decoder, Encoder};
use vsr_core::cohort::CallOp;
use vsr_core::gstate::Value;
use vsr_core::module::{Module, ModuleError, TxnCtx};
use vsr_core::types::{GroupId, ObjectId};

/// The reservation module, optionally pre-populated with flights.
#[derive(Debug, Clone, Default)]
pub struct ReservationModule {
    initial_flights: Vec<(u64, u64)>,
}

impl ReservationModule {
    /// No initial flights.
    pub fn new() -> Self {
        ReservationModule::default()
    }

    /// Start with the given `(flight, capacity)` pairs, all unbooked.
    pub fn with_flights(flights: Vec<(u64, u64)>) -> Self {
        ReservationModule { initial_flights: flights }
    }
}

fn encode_flight(capacity: u64, booked: u64) -> Value {
    Value(Encoder::new().u64(capacity).u64(booked).finish())
}

fn decode_flight(v: &Value) -> Result<(u64, u64), ModuleError> {
    let mut dec = Decoder::new(v.as_bytes());
    let capacity = dec.u64("flight.capacity").map_err(|e| ModuleError::App(e.to_string()))?;
    let booked = dec.u64("flight.booked").map_err(|e| ModuleError::App(e.to_string()))?;
    Ok((capacity, booked))
}

impl Module for ReservationModule {
    fn execute(&self, proc: &str, args: &[u8], ctx: &mut TxnCtx<'_>) -> Result<Value, ModuleError> {
        let mut dec = Decoder::new(args);
        let bad = |e: crate::codec::DecodeError| ModuleError::App(e.to_string());
        match proc {
            "create_flight" => {
                let flight = dec.u64("create.flight").map_err(bad)?;
                let capacity = dec.u64("create.capacity").map_err(bad)?;
                if ctx.read(ObjectId(flight))?.is_some() {
                    return Err(ModuleError::App(format!("flight {flight} already exists")));
                }
                ctx.write(ObjectId(flight), encode_flight(capacity, 0))?;
                Ok(Value::empty())
            }
            "reserve" => {
                let flight = dec.u64("reserve.flight").map_err(bad)?;
                let seats = dec.u64("reserve.seats").map_err(bad)?;
                let v = ctx
                    .read(ObjectId(flight))?
                    .ok_or_else(|| ModuleError::App(format!("no flight {flight}")))?;
                let (capacity, booked) = decode_flight(&v)?;
                let new_booked =
                    booked.checked_add(seats).filter(|&b| b <= capacity).ok_or_else(|| {
                        ModuleError::App(format!(
                            "flight {flight} full: {booked}/{capacity} booked, {seats} requested"
                        ))
                    })?;
                ctx.write(ObjectId(flight), encode_flight(capacity, new_booked))?;
                Ok(Value(Encoder::new().u64(capacity - new_booked).finish()))
            }
            "cancel" => {
                let flight = dec.u64("cancel.flight").map_err(bad)?;
                let seats = dec.u64("cancel.seats").map_err(bad)?;
                let v = ctx
                    .read(ObjectId(flight))?
                    .ok_or_else(|| ModuleError::App(format!("no flight {flight}")))?;
                let (capacity, booked) = decode_flight(&v)?;
                let new_booked = booked.checked_sub(seats).ok_or_else(|| {
                    ModuleError::App(format!("cancel of {seats} exceeds {booked} booked"))
                })?;
                ctx.write(ObjectId(flight), encode_flight(capacity, new_booked))?;
                Ok(Value(Encoder::new().u64(capacity - new_booked).finish()))
            }
            "available" => {
                let flight = dec.u64("available.flight").map_err(bad)?;
                let v = ctx
                    .read(ObjectId(flight))?
                    .ok_or_else(|| ModuleError::App(format!("no flight {flight}")))?;
                let (capacity, booked) = decode_flight(&v)?;
                Ok(Value(Encoder::new().u64(capacity - booked).finish()))
            }
            other => Err(ModuleError::UnknownProcedure(other.to_string())),
        }
    }

    fn initial_objects(&self) -> Vec<(ObjectId, Value)> {
        self.initial_flights
            .iter()
            .map(|&(flight, capacity)| (ObjectId(flight), encode_flight(capacity, 0)))
            .collect()
    }
}

/// Build a `create_flight` call op.
pub fn create_flight(group: GroupId, flight: u64, capacity: u64) -> CallOp {
    CallOp {
        group,
        proc: "create_flight".into(),
        args: Encoder::new().u64(flight).u64(capacity).finish(),
    }
}

/// Build a `reserve` call op.
pub fn reserve(group: GroupId, flight: u64, seats: u64) -> CallOp {
    CallOp { group, proc: "reserve".into(), args: Encoder::new().u64(flight).u64(seats).finish() }
}

/// Build a `cancel` call op.
pub fn cancel(group: GroupId, flight: u64, seats: u64) -> CallOp {
    CallOp { group, proc: "cancel".into(), args: Encoder::new().u64(flight).u64(seats).finish() }
}

/// Build an `available` call op.
pub fn available(group: GroupId, flight: u64) -> CallOp {
    CallOp { group, proc: "available".into(), args: Encoder::new().u64(flight).finish() }
}

/// Decode a seats-remaining reply.
///
/// # Errors
///
/// Returns an error string if the reply is malformed.
pub fn decode_seats(reply: &[u8]) -> Result<u64, String> {
    Decoder::new(reply).u64("seats").map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsr_core::gstate::GroupState;
    use vsr_core::locks::LockTable;
    use vsr_core::types::{Aid, Mid, ViewId};

    const G: GroupId = GroupId(1);

    fn aid() -> Aid {
        Aid { group: G, view: ViewId::initial(Mid(0)), seq: 0 }
    }

    fn state(flights: Vec<(u64, u64)>) -> GroupState {
        GroupState::with_objects(ReservationModule::with_flights(flights).initial_objects())
    }

    fn run(g: &GroupState, op: &CallOp) -> Result<Value, ModuleError> {
        let locks = LockTable::new();
        let mut ctx = TxnCtx::new(g, &locks, aid());
        ReservationModule::new().execute(&op.proc, &op.args, &mut ctx)
    }

    #[test]
    fn reserve_decrements_availability() {
        let g = state(vec![(1, 100)]);
        let r = run(&g, &reserve(G, 1, 3)).unwrap();
        assert_eq!(decode_seats(r.as_bytes()).unwrap(), 97);
    }

    #[test]
    fn overbooking_refused() {
        let g = state(vec![(1, 2)]);
        let err = run(&g, &reserve(G, 1, 3)).unwrap_err();
        assert!(matches!(err, ModuleError::App(msg) if msg.contains("full")));
    }

    #[test]
    fn exact_capacity_allowed() {
        let g = state(vec![(1, 2)]);
        let r = run(&g, &reserve(G, 1, 2)).unwrap();
        assert_eq!(decode_seats(r.as_bytes()).unwrap(), 0);
    }

    #[test]
    fn cancel_restores_seats() {
        let g = state(vec![(1, 10)]);
        // Simulate a committed booking by constructing the state directly.
        let g2 = GroupState::with_objects([(ObjectId(1), encode_flight(10, 4))]);
        let r = run(&g2, &cancel(G, 1, 4)).unwrap();
        assert_eq!(decode_seats(r.as_bytes()).unwrap(), 10);
        let _ = g;
    }

    #[test]
    fn cancel_more_than_booked_refused() {
        let g = GroupState::with_objects([(ObjectId(1), encode_flight(10, 1))]);
        assert!(run(&g, &cancel(G, 1, 2)).is_err());
    }

    #[test]
    fn available_reads_without_write() {
        let g = GroupState::with_objects([(ObjectId(1), encode_flight(10, 4))]);
        let locks = LockTable::new();
        let mut ctx = TxnCtx::new(&g, &locks, aid());
        let r =
            ReservationModule::new().execute("available", &available(G, 1).args, &mut ctx).unwrap();
        assert_eq!(decode_seats(r.as_bytes()).unwrap(), 6);
        let accesses = ctx.into_accesses();
        assert!(accesses.iter().all(|a| a.written.is_none()), "read-only call");
    }

    #[test]
    fn unknown_flight_refused() {
        let g = state(vec![]);
        assert!(run(&g, &reserve(G, 5, 1)).is_err());
        assert!(run(&g, &available(G, 5)).is_err());
    }

    #[test]
    fn duplicate_create_refused() {
        let g = state(vec![(1, 10)]);
        assert!(run(&g, &create_flight(G, 1, 5)).is_err());
    }
}
