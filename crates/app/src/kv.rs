//! A replicated key-value store module.
//!
//! Keys are `u64` and map directly onto object ids, so each key is an
//! independently lockable atomic object. Values are opaque byte strings.
//!
//! Procedures:
//!
//! | procedure | args | result |
//! |-----------|------|--------|
//! | `get`     | key  | `1, value` or `0` if absent |
//! | `put`     | key, value | empty |
//! | `delete`  | key  | empty (tombstone: empty value) |
//! | `append`  | key, suffix | new value |

use crate::codec::{Decoder, Encoder};
use vsr_core::cohort::CallOp;
use vsr_core::gstate::Value;
use vsr_core::module::{Module, ModuleError, TxnCtx};
use vsr_core::types::{GroupId, ObjectId};

/// The key-value module (stateless: all state lives in the group state).
#[derive(Debug, Clone, Copy, Default)]
pub struct KvModule;

impl KvModule {
    /// Create the module.
    pub fn new() -> Self {
        KvModule
    }
}

impl Module for KvModule {
    fn execute(&self, proc: &str, args: &[u8], ctx: &mut TxnCtx<'_>) -> Result<Value, ModuleError> {
        let mut dec = Decoder::new(args);
        let bad = |e: crate::codec::DecodeError| ModuleError::App(e.to_string());
        match proc {
            "get" => {
                let key = dec.u64("get.key").map_err(bad)?;
                match ctx.read(ObjectId(key))? {
                    Some(v) if !v.is_empty() => {
                        Ok(Value(Encoder::new().u64(1).bytes(v.as_bytes()).finish()))
                    }
                    _ => Ok(Value(Encoder::new().u64(0).finish())),
                }
            }
            "put" => {
                let key = dec.u64("put.key").map_err(bad)?;
                let value = dec.bytes("put.value").map_err(bad)?;
                if value.is_empty() {
                    return Err(ModuleError::App("put of empty value (use delete)".into()));
                }
                ctx.write(ObjectId(key), Value::from(value))?;
                Ok(Value::empty())
            }
            "delete" => {
                let key = dec.u64("delete.key").map_err(bad)?;
                ctx.write(ObjectId(key), Value::empty())?;
                Ok(Value::empty())
            }
            "append" => {
                let key = dec.u64("append.key").map_err(bad)?;
                let suffix = dec.bytes("append.suffix").map_err(bad)?;
                let mut current = ctx.read(ObjectId(key))?.unwrap_or_default().0;
                current.extend_from_slice(suffix);
                ctx.write(ObjectId(key), Value(current.clone()))?;
                Ok(Value(current))
            }
            other => Err(ModuleError::UnknownProcedure(other.to_string())),
        }
    }
}

/// Build a `get` call op for a transaction script.
pub fn get(group: GroupId, key: u64) -> CallOp {
    CallOp { group, proc: "get".into(), args: Encoder::new().u64(key).finish() }
}

/// Build a `put` call op.
pub fn put(group: GroupId, key: u64, value: &[u8]) -> CallOp {
    CallOp { group, proc: "put".into(), args: Encoder::new().u64(key).bytes(value).finish() }
}

/// Build a `delete` call op.
pub fn delete(group: GroupId, key: u64) -> CallOp {
    CallOp { group, proc: "delete".into(), args: Encoder::new().u64(key).finish() }
}

/// Build an `append` call op.
pub fn append(group: GroupId, key: u64, suffix: &[u8]) -> CallOp {
    CallOp { group, proc: "append".into(), args: Encoder::new().u64(key).bytes(suffix).finish() }
}

/// Decode a `get` result into `Option<Vec<u8>>`.
///
/// # Errors
///
/// Returns an error string if the reply is malformed.
pub fn decode_get(reply: &[u8]) -> Result<Option<Vec<u8>>, String> {
    let mut dec = Decoder::new(reply);
    match dec.u64("get.present").map_err(|e| e.to_string())? {
        0 => Ok(None),
        1 => Ok(Some(dec.bytes("get.value").map_err(|e| e.to_string())?.to_vec())),
        other => Err(format!("bad get discriminant {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsr_core::gstate::GroupState;
    use vsr_core::locks::LockTable;
    use vsr_core::types::{Aid, Mid, ViewId};

    fn aid() -> Aid {
        Aid { group: GroupId(1), view: ViewId::initial(Mid(0)), seq: 0 }
    }

    fn run(
        module: &KvModule,
        gstate: &GroupState,
        proc: &str,
        args: &[u8],
    ) -> Result<(Value, Vec<vsr_core::gstate::ObjectAccess>), ModuleError> {
        let locks = LockTable::new();
        let mut ctx = TxnCtx::new(gstate, &locks, aid());
        let result = module.execute(proc, args, &mut ctx)?;
        Ok((result, ctx.into_accesses()))
    }

    #[test]
    fn get_missing_returns_none() {
        let g = GroupState::new();
        let (result, _) = run(&KvModule, &g, "get", &get(GroupId(1), 5).args).unwrap();
        assert_eq!(decode_get(result.as_bytes()).unwrap(), None);
    }

    #[test]
    fn put_writes_value() {
        let g = GroupState::new();
        let (_, accesses) = run(&KvModule, &g, "put", &put(GroupId(1), 5, b"v").args).unwrap();
        assert_eq!(accesses.len(), 1);
        assert_eq!(accesses[0].oid, ObjectId(5));
        assert_eq!(accesses[0].written, Some(Value::from(&b"v"[..])));
    }

    #[test]
    fn get_after_committed_put() {
        let g = GroupState::with_objects([(ObjectId(5), Value::from(&b"stored"[..]))]);
        let (result, _) = run(&KvModule, &g, "get", &get(GroupId(1), 5).args).unwrap();
        assert_eq!(decode_get(result.as_bytes()).unwrap(), Some(b"stored".to_vec()));
    }

    #[test]
    fn delete_writes_tombstone() {
        let g = GroupState::with_objects([(ObjectId(5), Value::from(&b"x"[..]))]);
        let (_, accesses) = run(&KvModule, &g, "delete", &delete(GroupId(1), 5).args).unwrap();
        assert_eq!(accesses[0].written, Some(Value::empty()));
    }

    #[test]
    fn deleted_key_reads_as_missing() {
        let g = GroupState::with_objects([(ObjectId(5), Value::empty())]);
        let (result, _) = run(&KvModule, &g, "get", &get(GroupId(1), 5).args).unwrap();
        assert_eq!(decode_get(result.as_bytes()).unwrap(), None);
    }

    #[test]
    fn append_accumulates() {
        let g = GroupState::with_objects([(ObjectId(9), Value::from(&b"ab"[..]))]);
        let (result, accesses) =
            run(&KvModule, &g, "append", &append(GroupId(1), 9, b"cd").args).unwrap();
        assert_eq!(result, Value::from(&b"abcd"[..]));
        assert_eq!(accesses[0].written, Some(Value::from(&b"abcd"[..])));
    }

    #[test]
    fn empty_put_rejected() {
        let g = GroupState::new();
        let err = run(&KvModule, &g, "put", &put(GroupId(1), 5, b"").args).unwrap_err();
        assert!(matches!(err, ModuleError::App(_)));
    }

    #[test]
    fn unknown_procedure_rejected() {
        let g = GroupState::new();
        let err = run(&KvModule, &g, "nope", &[]).unwrap_err();
        assert!(matches!(err, ModuleError::UnknownProcedure(_)));
    }

    #[test]
    fn malformed_args_rejected() {
        let g = GroupState::new();
        let err = run(&KvModule, &g, "get", &[1, 2]).unwrap_err();
        assert!(matches!(err, ModuleError::App(_)));
    }
}
