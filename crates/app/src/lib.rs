//! # Replicated application modules
//!
//! Application code for the Viewstamped Replication module model
//! (Section 1 of the paper): deterministic procedures over atomic
//! objects, replicated transparently by the protocol layer. "Ideally,
//! programmers would write programs without concern for availability …
//! the language implementation then uses our technique to replicate
//! individual modules automatically."
//!
//! * [`kv`] — a key-value store.
//! * [`bank`] — bank accounts with atomic cross-group transfers.
//! * [`reservation`] — airline seat reservations (the paper's motivating
//!   example).
//! * [`counter`] — a minimal counter for quickstarts and benchmarks.
//! * [`queue`] — a FIFO queue whose operations touch several atomic
//!   objects per call.
//! * [`codec`] — the tiny binary codec the modules share.
//!
//! Each module exports free functions that build
//! [`CallOp`](vsr_core::cohort::CallOp)s for transaction scripts, e.g.:
//!
//! ```
//! use vsr_app::{bank, kv};
//! use vsr_core::types::GroupId;
//!
//! let accounts = GroupId(1);
//! let ledger = GroupId(2);
//! // A cross-group transfer: atomic via two-phase commit.
//! let script = vec![
//!     bank::withdraw(accounts, 7, 100),
//!     bank::deposit(accounts, 9, 100),
//!     kv::append(ledger, 0, b"transfer 7->9 100;"),
//! ];
//! assert_eq!(script.len(), 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bank;
pub mod codec;
pub mod counter;
pub mod kv;
pub mod queue;
pub mod reservation;
