//! A minimal counter module used by the quickstart example and the
//! benchmark workloads.
//!
//! Procedures:
//!
//! | procedure | args | result |
//! |-----------|------|--------|
//! | `incr`    | counter, delta | new value |
//! | `read`    | counter | value (0 if never written) |

use crate::codec::{Decoder, Encoder};
use vsr_core::cohort::CallOp;
use vsr_core::gstate::Value;
use vsr_core::module::{Module, ModuleError, TxnCtx};
use vsr_core::types::{GroupId, ObjectId};

/// The counter module.
#[derive(Debug, Clone, Copy, Default)]
pub struct CounterModule;

impl CounterModule {
    /// Create the module.
    pub fn new() -> Self {
        CounterModule
    }
}

impl Module for CounterModule {
    fn execute(&self, proc: &str, args: &[u8], ctx: &mut TxnCtx<'_>) -> Result<Value, ModuleError> {
        let mut dec = Decoder::new(args);
        let bad = |e: crate::codec::DecodeError| ModuleError::App(e.to_string());
        match proc {
            "incr" => {
                let counter = dec.u64("incr.counter").map_err(bad)?;
                let delta = dec.u64("incr.delta").map_err(bad)?;
                let current = match ctx.read(ObjectId(counter))? {
                    Some(v) => Decoder::new(v.as_bytes())
                        .u64("counter")
                        .map_err(|e| ModuleError::App(e.to_string()))?,
                    None => 0,
                };
                let new = current.wrapping_add(delta);
                ctx.write(ObjectId(counter), Value(Encoder::new().u64(new).finish()))?;
                Ok(Value(Encoder::new().u64(new).finish()))
            }
            "read" => {
                let counter = dec.u64("read.counter").map_err(bad)?;
                let value = match ctx.read(ObjectId(counter))? {
                    Some(v) => Decoder::new(v.as_bytes())
                        .u64("counter")
                        .map_err(|e| ModuleError::App(e.to_string()))?,
                    None => 0,
                };
                Ok(Value(Encoder::new().u64(value).finish()))
            }
            other => Err(ModuleError::UnknownProcedure(other.to_string())),
        }
    }
}

/// Build an `incr` call op.
pub fn incr(group: GroupId, counter: u64, delta: u64) -> CallOp {
    CallOp { group, proc: "incr".into(), args: Encoder::new().u64(counter).u64(delta).finish() }
}

/// Build a `read` call op.
pub fn read(group: GroupId, counter: u64) -> CallOp {
    CallOp { group, proc: "read".into(), args: Encoder::new().u64(counter).finish() }
}

/// Decode a counter value reply.
///
/// # Errors
///
/// Returns an error string if the reply is malformed.
pub fn decode_value(reply: &[u8]) -> Result<u64, String> {
    Decoder::new(reply).u64("counter").map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsr_core::gstate::GroupState;
    use vsr_core::locks::LockTable;
    use vsr_core::types::{Aid, Mid, ViewId};

    const G: GroupId = GroupId(1);

    fn run(g: &GroupState, op: &CallOp) -> Result<Value, ModuleError> {
        let locks = LockTable::new();
        let aid = Aid { group: G, view: ViewId::initial(Mid(0)), seq: 0 };
        let mut ctx = TxnCtx::new(g, &locks, aid);
        CounterModule::new().execute(&op.proc, &op.args, &mut ctx)
    }

    #[test]
    fn read_missing_is_zero() {
        let g = GroupState::new();
        let r = run(&g, &read(G, 1)).unwrap();
        assert_eq!(decode_value(r.as_bytes()).unwrap(), 0);
    }

    #[test]
    fn incr_from_zero() {
        let g = GroupState::new();
        let r = run(&g, &incr(G, 1, 5)).unwrap();
        assert_eq!(decode_value(r.as_bytes()).unwrap(), 5);
    }

    #[test]
    fn incr_from_existing() {
        let g = GroupState::with_objects([(ObjectId(1), Value(Encoder::new().u64(10).finish()))]);
        let r = run(&g, &incr(G, 1, 7)).unwrap();
        assert_eq!(decode_value(r.as_bytes()).unwrap(), 17);
    }

    #[test]
    fn incr_wraps() {
        let g =
            GroupState::with_objects([(ObjectId(1), Value(Encoder::new().u64(u64::MAX).finish()))]);
        let r = run(&g, &incr(G, 1, 1)).unwrap();
        assert_eq!(decode_value(r.as_bytes()).unwrap(), 0);
    }
}
