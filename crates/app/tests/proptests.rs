//! Property-based tests of the application modules against reference
//! models.

use proptest::prelude::*;
use std::collections::VecDeque;
use vsr_app::codec::{Decoder, Encoder};
use vsr_app::queue::{self, QueueModule};
use vsr_core::cohort::CallOp;
use vsr_core::gstate::{CompletedCall, GroupState, Value};
use vsr_core::locks::LockTable;
use vsr_core::module::{Module, ModuleError, TxnCtx};
use vsr_core::types::{Aid, CallId, GroupId, Mid, ObjectId, ViewId};

const G: GroupId = GroupId(1);

/// Run one op as a committed transaction over evolving state.
fn run_committed(
    gstate: &mut GroupState,
    module: &dyn Module,
    seq: &mut u64,
    op: &CallOp,
) -> Result<Value, ModuleError> {
    let locks = LockTable::new();
    let aid = Aid { group: G, view: ViewId::initial(Mid(0)), seq: *seq };
    *seq += 1;
    let mut ctx = TxnCtx::new(gstate, &locks, aid);
    let result = module.execute(&op.proc, &op.args, &mut ctx)?;
    let accesses = ctx.into_accesses();
    gstate.store_call(
        aid,
        CompletedCall {
            vs: Default::default(),
            call_id: CallId { aid, seq: 0 },
            accesses,
            result: result.clone(),
            nested: Vec::new(),
        },
    );
    gstate.install_commit(aid);
    Ok(result)
}

#[derive(Debug, Clone)]
enum QueueOp {
    Enqueue(Vec<u8>),
    Dequeue,
    Peek,
    Len,
}

fn arb_queue_op() -> impl Strategy<Value = QueueOp> {
    prop_oneof![
        3 => prop::collection::vec(any::<u8>(), 0..6).prop_map(QueueOp::Enqueue),
        3 => Just(QueueOp::Dequeue),
        1 => Just(QueueOp::Peek),
        1 => Just(QueueOp::Len),
    ]
}

proptest! {
    /// The replicated queue behaves exactly like VecDeque under any
    /// operation sequence (including wraparound and capacity refusals).
    #[test]
    fn queue_matches_vecdeque_model(
        capacity in 1u64..6,
        ops in prop::collection::vec(arb_queue_op(), 1..60),
    ) {
        let module = QueueModule::new(capacity);
        let mut gstate = GroupState::new();
        let mut seq = 0;
        let mut model: VecDeque<Vec<u8>> = VecDeque::new();
        for op in ops {
            match op {
                QueueOp::Enqueue(item) => {
                    let result =
                        run_committed(&mut gstate, &module, &mut seq, &queue::enqueue(G, &item));
                    if (model.len() as u64) < capacity {
                        let r = result.expect("enqueue succeeds below capacity");
                        model.push_back(item);
                        prop_assert_eq!(
                            queue::decode_len(r.as_bytes()).unwrap(),
                            model.len() as u64
                        );
                    } else {
                        prop_assert!(result.is_err(), "full queue refuses");
                    }
                }
                QueueOp::Dequeue => {
                    let r = run_committed(&mut gstate, &module, &mut seq, &queue::dequeue(G))
                        .expect("dequeue never errors");
                    let item = queue::decode_item(r.as_bytes()).unwrap();
                    prop_assert_eq!(item, model.pop_front());
                }
                QueueOp::Peek => {
                    let r = run_committed(&mut gstate, &module, &mut seq, &queue::peek(G))
                        .expect("peek never errors");
                    let item = queue::decode_item(r.as_bytes()).unwrap();
                    prop_assert_eq!(item, model.front().cloned());
                }
                QueueOp::Len => {
                    let r = run_committed(&mut gstate, &module, &mut seq, &queue::len(G))
                        .expect("len never errors");
                    prop_assert_eq!(
                        queue::decode_len(r.as_bytes()).unwrap(),
                        model.len() as u64
                    );
                }
            }
        }
    }

    /// Codec roundtrip: any sequence of u64/bytes/str fields decodes back
    /// exactly.
    #[test]
    fn codec_roundtrip(
        fields in prop::collection::vec(
            prop_oneof![
                any::<u64>().prop_map(|v| (0u8, v, Vec::new(), String::new())),
                prop::collection::vec(any::<u8>(), 0..20)
                    .prop_map(|b| (1u8, 0, b, String::new())),
                "[a-z]{0,12}".prop_map(|s| (2u8, 0, Vec::new(), s)),
            ],
            0..10,
        ),
    ) {
        let mut enc = Encoder::new();
        for (tag, n, b, s) in &fields {
            enc = match tag {
                0 => enc.u64(*n),
                1 => enc.bytes(b),
                _ => enc.str(s),
            };
        }
        let raw = enc.finish();
        let mut dec = Decoder::new(&raw);
        for (tag, n, b, s) in &fields {
            match tag {
                0 => prop_assert_eq!(dec.u64("f").unwrap(), *n),
                1 => prop_assert_eq!(dec.bytes("f").unwrap(), b.as_slice()),
                _ => prop_assert_eq!(dec.str("f").unwrap(), s.as_str()),
            }
        }
        prop_assert!(dec.is_exhausted());
    }

    /// The bank's balance arithmetic matches a model ledger under any
    /// committed deposit/withdraw sequence.
    #[test]
    fn bank_matches_model(
        ops in prop::collection::vec((0u64..3, any::<bool>(), 0u64..200), 1..40),
    ) {
        use vsr_app::bank::{self, BankModule};
        let module = BankModule::with_accounts(vec![(0, 500), (1, 500), (2, 500)]);
        let mut gstate = GroupState::with_objects(
            module.initial_objects().into_iter().collect::<Vec<(ObjectId, Value)>>(),
        );
        let mut seq = 0;
        let mut model = [500u64, 500, 500];
        for (acct, is_deposit, amount) in ops {
            let op = if is_deposit {
                bank::deposit(G, acct, amount)
            } else {
                bank::withdraw(G, acct, amount)
            };
            let result = run_committed(&mut gstate, &module, &mut seq, &op);
            if is_deposit {
                let r = result.expect("deposit in range succeeds");
                model[acct as usize] += amount;
                prop_assert_eq!(bank::decode_balance(r.as_bytes()).unwrap(), model[acct as usize]);
            } else if amount <= model[acct as usize] {
                let r = result.expect("covered withdrawal succeeds");
                model[acct as usize] -= amount;
                prop_assert_eq!(bank::decode_balance(r.as_bytes()).unwrap(), model[acct as usize]);
            } else {
                prop_assert!(result.is_err(), "overdraft refused");
            }
        }
        // Final state agrees everywhere.
        for (acct, expected) in model.iter().enumerate() {
            let r = run_committed(&mut gstate, &module, &mut seq, &bank::balance(G, acct as u64))
                .unwrap();
            prop_assert_eq!(bank::decode_balance(r.as_bytes()).unwrap(), *expected);
        }
    }
}
