//! # Threaded live runtime
//!
//! Runs the same sans-I/O [`Cohort`](vsr_core::cohort::Cohort#) state
//! machines as the simulator, but on real threads with real clocks:
//! each cohort owns a thread, messages travel over crossbeam channels,
//! and timers run on a per-thread timer wheel (1 tick = 1 millisecond).
//!
//! The runtime exists for the runnable examples: start a cluster, submit
//! transactions, crash and recover cohorts, and watch view changes
//! happen on a wall clock.
//!
//! ```
//! use vsr_app::counter::{self, CounterModule};
//! use vsr_core::module::NullModule;
//! use vsr_core::types::{GroupId, Mid};
//! use vsr_runtime::ClusterBuilder;
//!
//! let cluster = ClusterBuilder::new()
//!     .group(GroupId(1), &[Mid(10)], || Box::new(NullModule))
//!     .group(GroupId(2), &[Mid(1), Mid(2), Mid(3)], || Box::new(CounterModule))
//!     .start();
//! let outcome = cluster.submit(GroupId(1), vec![counter::incr(GroupId(2), 0, 1)]);
//! assert!(matches!(outcome, Ok(vsr_core::cohort::TxnOutcome::Committed { .. })));
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use vsr_core::cohort::{CallOp, Cohort, CohortParams, Effect, Observation, Timer, TxnOutcome};
use vsr_core::config::CohortConfig;
use vsr_core::durable::RecoveredState;
use vsr_core::messages::Message;
use vsr_core::module::Module;
use vsr_core::types::{GroupId, Mid, ViewId, Viewstamp};
use vsr_core::view::Configuration;
use vsr_obs::{Metrics, Recorder, SharedRecorder, TraceEvent, TraceKind};
use vsr_store::{FileStore, FsyncPolicy, SimDisk, Store, StoreMetrics};

/// A module factory shared across threads (recovery re-instantiates the
/// module).
pub type SharedFactory = Arc<dyn Fn() -> Box<dyn Module> + Send + Sync>;

/// A cohort's stable store, shared between its thread (which executes
/// `Effect::Persist`) and the cluster (which replays it at recovery).
type SharedStore = Arc<Mutex<Box<dyn Store + Send>>>;

/// Which stable-storage backend cohort threads write to.
#[derive(Debug, Clone, Default)]
enum Durability {
    /// The paper's no-disk design: persist effects are dropped and only
    /// the stable viewid is (notionally) remembered across a crash.
    #[default]
    None,
    /// In-memory [`SimDisk`] WALs: durable across [`Cluster::crash`] /
    /// [`Cluster::recover`] within one process, gone at shutdown.
    Mem(FsyncPolicy),
    /// [`FileStore`] WALs under `dir/cohort-<mid>/`: durable across
    /// whole-cluster shutdown and restart.
    Files { dir: std::path::PathBuf, policy: FsyncPolicy },
}

/// Errors surfaced by [`Cluster::submit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// No member of the client group produced an outcome in time.
    Timeout,
    /// The group id is unknown.
    UnknownGroup(GroupId),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Timeout => write!(f, "no cohort answered the submission in time"),
            SubmitError::UnknownGroup(g) => write!(f, "unknown group {g}"),
        }
    }
}

impl std::error::Error for SubmitError {}

enum Inbox {
    Msg { from: Mid, msg: Message },
    Request { req_id: u64, ops: Vec<CallOp>, reply: Sender<TxnOutcome> },
    Stop,
}

/// Routes messages between cohort threads; absent entries are crashed
/// cohorts (their mail is dropped, like the simulator's).
#[derive(Default)]
struct Router {
    routes: RwLock<BTreeMap<Mid, Sender<Inbox>>>,
}

impl Router {
    fn send(&self, from: Mid, to: Mid, msg: Message) {
        if let Some(tx) = self.routes.read().get(&to) {
            // vsr-lint: allow(discarded_result, reason = "a cohort that crashed between the route lookup and the send just loses the message, exactly like the network")
            let _ = tx.send(Inbox::Msg { from, msg });
        }
    }
}

/// View-progress signal shared between cohort threads and submitters.
///
/// Every `Observation::ViewChanged` bumps the epoch and wakes everyone
/// blocked in [`wait_past`](Progress::wait_past); a submitter that found
/// no acting primary sleeps on it instead of unconditionally burning a
/// fixed poll interval, so a completed view change un-blocks the next
/// round immediately. Uses `std::sync` primitives because the waiters
/// need a condition variable, not just a lock.
#[derive(Default)]
struct Progress {
    epoch: std::sync::Mutex<u64>,
    changed: std::sync::Condvar,
}

impl Progress {
    /// The current epoch; pass it to [`wait_past`](Progress::wait_past).
    fn current(&self) -> u64 {
        *self.epoch.lock().expect("invariant: progress mutex is never poisoned")
    }

    /// Advance the epoch and wake every waiter.
    fn bump(&self) {
        let mut epoch = self.epoch.lock().expect("invariant: progress mutex is never poisoned");
        *epoch += 1;
        self.changed.notify_all();
    }

    /// Block until the epoch advances past `seen` or `timeout` elapses,
    /// whichever comes first.
    fn wait_past(&self, seen: u64, timeout: Duration) {
        let guard = self.epoch.lock().expect("invariant: progress mutex is never poisoned");
        let (_guard, _timed_out) = self
            .changed
            .wait_timeout_while(guard, timeout, |epoch| *epoch <= seen)
            .expect("invariant: progress mutex is never poisoned");
    }
}

struct TimerEntry {
    due: Instant,
    seq: u64,
    timer: Timer,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest due
        // time on top.
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct CohortThread {
    cohort: Cohort,
    rx: Receiver<Inbox>,
    router: Arc<Router>,
    epoch: Instant,
    timers: BinaryHeap<TimerEntry>,
    timer_seq: u64,
    replies: BTreeMap<u64, Sender<TxnOutcome>>,
    stable: Arc<Mutex<ViewId>>,
    store: Option<SharedStore>,
    observations: Option<Sender<(Mid, Observation)>>,
    metrics: Arc<Mutex<Metrics>>,
    progress: Arc<Progress>,
    recorder: Option<SharedRecorder>,
}

impl CohortThread {
    fn now_ticks(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Record a trace event stamped with this cohort's current
    /// viewstamp (no-op unless the cluster enabled tracing).
    fn trace(&mut self, kind: TraceKind) {
        if self.recorder.is_none() {
            return;
        }
        let vs = self.cohort.history().latest();
        self.trace_with_vs(vs, kind);
    }

    /// Record a trace event with an explicit viewstamp (used where the
    /// observation itself carries the authoritative one).
    fn trace_with_vs(&mut self, vs: Option<Viewstamp>, kind: TraceKind) {
        let tick = self.epoch.elapsed().as_millis() as u64;
        let cohort = self.cohort.mid();
        if let Some(recorder) = &mut self.recorder {
            recorder.record(TraceEvent { tick, cohort, vs, kind });
        }
    }

    fn run(mut self) {
        let mid = self.cohort.mid();
        let now = self.now_ticks();
        let start_effects = self.cohort.start(now);
        self.apply(mid, start_effects);
        loop {
            let timeout = self
                .timers
                .peek()
                .map(|t| t.due.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_millis(50));
            match self.rx.recv_timeout(timeout) {
                Ok(Inbox::Msg { from, msg }) => {
                    let now = self.now_ticks();
                    let msg_name = msg.name();
                    let effects = self.cohort.on_message(now, from, msg);
                    self.trace(TraceKind::Recv { from, msg: msg_name });
                    self.apply(mid, effects);
                }
                Ok(Inbox::Request { req_id, ops, reply }) => {
                    self.replies.insert(req_id, reply);
                    let now = self.now_ticks();
                    let effects = self.cohort.begin_transaction(now, req_id, ops);
                    self.apply(mid, effects);
                }
                Ok(Inbox::Stop) => break,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            // Fire all due timers.
            let now_instant = Instant::now();
            while self.timers.peek().is_some_and(|t| t.due <= now_instant) {
                let entry = self.timers.pop().expect("invariant: peek returned Some");
                let now = self.now_ticks();
                // Same accounting rules as the simulator: heartbeats and
                // buffer flushes are steady-state background ticks, not
                // timeouts; a retry timer's resulting sends are
                // retransmissions.
                if !matches!(entry.timer, Timer::Heartbeat | Timer::BufferFlush) {
                    self.metrics.lock().timeouts_fired += 1;
                }
                let is_retry = matches!(
                    entry.timer,
                    Timer::CallRetry { .. }
                        | Timer::PrepareRetry { .. }
                        | Timer::CommitRetry { .. }
                        | Timer::ManagerRetry { .. }
                        | Timer::AgentBeginRetry { .. }
                        | Timer::AgentCallRetry { .. }
                        | Timer::AgentCommitRetry { .. }
                );
                let timer_name = entry.timer.name();
                let effects = self.cohort.on_timer(now, entry.timer);
                if !effects.is_empty() {
                    self.trace(TraceKind::Timer { timer: timer_name });
                }
                if is_retry {
                    self.metrics.lock().retransmissions +=
                        effects.iter().filter(|e| matches!(e, Effect::Send { .. })).count() as u64;
                }
                self.apply(mid, effects);
            }
            *self.stable.lock() = self.cohort.stable_viewid();
        }
    }

    fn apply(&mut self, mid: Mid, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => {
                    let size = msg.wire_size() as u64;
                    {
                        let mut m = self.metrics.lock();
                        *m.msgs.entry(msg.name()).or_default() += 1;
                        *m.bytes.entry(msg.name()).or_default() += size;
                        if msg.is_view_change() {
                            m.view_change_msgs += 1;
                        } else if msg.is_background() {
                            m.background_msgs += 1;
                        } else {
                            m.foreground_msgs += 1;
                            m.foreground_bytes += size;
                        }
                    }
                    self.trace(TraceKind::Send { to, msg: msg.name() });
                    self.router.send(mid, to, msg);
                }
                Effect::SetTimer { after, timer } => {
                    self.timer_seq += 1;
                    self.timers.push(TimerEntry {
                        due: Instant::now() + Duration::from_millis(after),
                        seq: self.timer_seq,
                        timer,
                    });
                }
                Effect::TxnResult { req_id, outcome, .. } => {
                    if let Some(reply) = self.replies.remove(&req_id) {
                        // vsr-lint: allow(discarded_result, reason = "the submitter may have timed out and dropped its receiver")
                        let _ = reply.send(outcome);
                    }
                }
                Effect::Persist(event) => {
                    if let Some(store) = &self.store {
                        let delta = {
                            let mut store = store.lock();
                            let before = store.metrics();
                            store.persist(&event);
                            store.metrics().since(&before)
                        };
                        {
                            let mut m = self.metrics.lock();
                            m.disk_appends += delta.appends;
                            m.disk_fsyncs += delta.fsyncs;
                            m.disk_bytes_written += delta.bytes_written;
                            m.checkpoints_taken += delta.checkpoints;
                        }
                        if delta.appends > 0 {
                            self.trace(TraceKind::DiskAppend { bytes: delta.bytes_written });
                        }
                    }
                }
                Effect::Observe(obs) => {
                    match &obs {
                        Observation::ViewChanged { is_primary, .. } => {
                            if *is_primary {
                                self.metrics.lock().view_formations += 1;
                            }
                            // Wake submitters stuck waiting for a
                            // primary: the view just (re)formed.
                            self.progress.bump();
                        }
                        Observation::ViewChangeStarted { .. } => {
                            self.metrics.lock().view_change_attempts += 1;
                        }
                        Observation::PrepareProcessed { waited, .. } => {
                            let mut m = self.metrics.lock();
                            if *waited {
                                m.prepares_waited += 1;
                            } else {
                                m.prepares_fast += 1;
                            }
                        }
                        Observation::ForceAbandoned { .. } => {
                            self.metrics.lock().forces_abandoned += 1;
                        }
                        Observation::StatusChanged { from, to, .. } => {
                            self.trace(TraceKind::ViewState { from: from.name(), to: to.name() });
                        }
                        Observation::ForceBegan { vs, .. } => {
                            self.trace_with_vs(Some(*vs), TraceKind::ForceBegin);
                        }
                        Observation::ForceFired { vs, fired, .. } => {
                            self.trace_with_vs(Some(*vs), TraceKind::ForceFire { fired: *fired });
                        }
                        Observation::BufferFlushed { clones_saved, .. } => {
                            self.metrics.lock().buffer_clones_saved += *clones_saved;
                        }
                        Observation::TxnCommitted { .. } | Observation::TxnAborted { .. } => {
                            // Client-visible outcomes are counted once,
                            // in `Cluster::submit`, matching the sim's
                            // client-side accounting.
                        }
                    }
                    if let Some(tx) = &self.observations {
                        // vsr-lint: allow(discarded_result, reason = "observations are best-effort telemetry; a closed drain must not stall the cohort")
                        let _ = tx.send((mid, obs));
                    }
                }
            }
        }
    }
}

struct Handle {
    tx: Sender<Inbox>,
    join: JoinHandle<()>,
    stable: Arc<Mutex<ViewId>>,
}

/// Builder for a [`Cluster`].
pub struct ClusterBuilder {
    cfg: CohortConfig,
    groups: Vec<(GroupId, Vec<Mid>, SharedFactory)>,
    observations: bool,
    tracing: bool,
    durability: Durability,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder::new()
    }
}

impl std::fmt::Debug for ClusterBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterBuilder").field("groups", &self.groups.len()).finish_non_exhaustive()
    }
}

impl ClusterBuilder {
    /// Start building a cluster with default cohort tuning.
    pub fn new() -> Self {
        ClusterBuilder {
            cfg: CohortConfig::new(),
            groups: Vec::new(),
            observations: false,
            tracing: false,
            durability: Durability::None,
        }
    }

    /// Capture structured [`TraceEvent`]s from every cohort thread,
    /// drainable via [`Cluster::trace_events`] — the runtime counterpart
    /// of the simulator's `World::enable_tracing`.
    pub fn tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Give every cohort an in-memory WAL ([`SimDisk`]) with the given
    /// fsync policy: state survives [`Cluster::crash`] /
    /// [`Cluster::recover`] within this process, and a recovered cohort
    /// replays its log instead of restarting from the bare viewid.
    pub fn durable(mut self, policy: FsyncPolicy) -> Self {
        self.durability = Durability::Mem(policy);
        self
    }

    /// Give every cohort a file-backed WAL ([`FileStore`]) under
    /// `dir/cohort-<mid>/`. State survives killing the *entire* cluster
    /// and starting a fresh one on the same directory: cohorts that find
    /// existing segments recover from them instead of booting fresh.
    pub fn durable_files(
        mut self,
        dir: impl Into<std::path::PathBuf>,
        policy: FsyncPolicy,
    ) -> Self {
        self.durability = Durability::Files { dir: dir.into(), policy };
        self
    }

    /// Override the cohort tuning knobs.
    pub fn cohorts(mut self, cfg: CohortConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Add a module group (first member is the bootstrap primary).
    pub fn group<F>(mut self, group: GroupId, members: &[Mid], factory: F) -> Self
    where
        F: Fn() -> Box<dyn Module> + Send + Sync + 'static,
    {
        self.groups.push((group, members.to_vec(), Arc::new(factory)));
        self
    }

    /// Collect observations into a channel readable via
    /// [`Cluster::observations`].
    pub fn observe(mut self) -> Self {
        self.observations = true;
        self
    }

    /// Spawn all cohort threads and return the running cluster.
    pub fn start(self) -> Cluster {
        let router = Arc::new(Router::default());
        let epoch = Instant::now();
        let mut peers = BTreeMap::new();
        for (group, members, _) in &self.groups {
            peers.insert(*group, Configuration::new(*group, members.clone()));
        }
        let (obs_tx, obs_rx) = unbounded();
        let obs_tx = self.observations.then_some(obs_tx);
        let cluster = Cluster {
            router,
            handles: Mutex::new(BTreeMap::new()),
            specs: self
                .groups
                .iter()
                .flat_map(|(g, members, f)| {
                    let members = members.clone();
                    let f = f.clone();
                    let g = *g;
                    members.clone().into_iter().map(move |m| (m, (g, members.clone(), f.clone())))
                })
                .collect(),
            peers,
            cfg: self.cfg.clone(),
            epoch,
            next_req: Mutex::new(0),
            observations: obs_rx,
            obs_tx,
            stable_store: Mutex::new(BTreeMap::new()),
            stores: Mutex::new(BTreeMap::new()),
            durability: self.durability.clone(),
            metrics: Arc::new(Mutex::new(Metrics::default())),
            progress: Arc::new(Progress::default()),
            recorder: self.tracing.then(SharedRecorder::new),
        };
        for (group, members, factory) in &self.groups {
            for &mid in members {
                cluster.spawn(*group, mid, members, factory.clone(), false);
            }
        }
        cluster
    }
}

/// A running cluster of cohort threads.
pub struct Cluster {
    router: Arc<Router>,
    handles: Mutex<BTreeMap<Mid, Handle>>,
    specs: BTreeMap<Mid, (GroupId, Vec<Mid>, SharedFactory)>,
    peers: BTreeMap<GroupId, Configuration>,
    cfg: CohortConfig,
    epoch: Instant,
    next_req: Mutex<u64>,
    observations: Receiver<(Mid, Observation)>,
    obs_tx: Option<Sender<(Mid, Observation)>>,
    /// Simulated stable storage for the no-disk design: the last stable
    /// viewid of each crashed cohort, read back at recovery.
    stable_store: Mutex<BTreeMap<Mid, ViewId>>,
    /// Per-cohort WALs (durable clusters only). An entry outlives its
    /// cohort thread so a recovery can replay it.
    stores: Mutex<BTreeMap<Mid, SharedStore>>,
    durability: Durability,
    /// The same counter set the simulator's `World` collects, populated
    /// by cohort threads (traffic, observations, disk) and by
    /// [`submit`](Cluster::submit) (client-visible outcomes, latency in
    /// milliseconds).
    metrics: Arc<Mutex<Metrics>>,
    /// View-progress condvar submitters sleep on between retry rounds.
    progress: Arc<Progress>,
    /// Installed when the builder enabled [`tracing`](ClusterBuilder::tracing).
    recorder: Option<SharedRecorder>,
}

impl Cluster {
    /// Open (or look up) the WAL for `mid` according to the cluster's
    /// durability mode.
    fn store_for(&self, mid: Mid) -> Option<SharedStore> {
        let mut stores = self.stores.lock();
        if let Some(store) = stores.get(&mid) {
            return Some(store.clone());
        }
        let store: Box<dyn Store + Send> = match &self.durability {
            Durability::None => return None,
            Durability::Mem(policy) => Box::new(SimDisk::new(*policy)),
            Durability::Files { dir, policy } => Box::new(
                FileStore::open(dir.join(format!("cohort-{}", mid.0)), *policy)
                    // vsr-lint: allow(expect_used, reason = "startup misconfiguration; crashing with the io::Error is the right behavior")
                    .expect("open cohort wal directory"),
            ),
        };
        let store = Arc::new(Mutex::new(store));
        stores.insert(mid, store.clone());
        Some(store)
    }

    fn spawn(
        &self,
        group: GroupId,
        mid: Mid,
        members: &[Mid],
        factory: SharedFactory,
        recovering: bool,
    ) {
        let params = CohortParams {
            cfg: self.cfg.clone(),
            mid,
            configuration: Configuration::new(group, members.to_vec()),
            initial_primary: members[0],
            peers: self.peers.clone(),
            module: factory(),
        };
        let bootstrap = ViewId::initial(members[0]);
        let store = self.store_for(mid);
        let cohort = match &store {
            Some(store) => {
                // The WAL is the single source of truth: a freshly
                // started cluster whose store already holds state (an
                // earlier incarnation's files, or an earlier crash in
                // this process) recovers from it; a pristine store means
                // a true bootstrap.
                let rs = store.lock().recover(bootstrap);
                let pristine =
                    rs.checkpoint.is_none() && rs.tail.is_empty() && rs.stable_viewid == bootstrap;
                if pristine && !recovering {
                    Cohort::new(params)
                } else {
                    Cohort::recover(params, rs)
                }
            }
            None if recovering => {
                let stable = self.stable_store.lock().get(&mid).copied().unwrap_or(bootstrap);
                Cohort::recover(params, RecoveredState::viewid_only(stable))
            }
            None => Cohort::new(params),
        };
        self.metrics.lock().records_replayed += cohort.records_replayed();
        let (tx, rx) = unbounded();
        let stable = Arc::new(Mutex::new(cohort.stable_viewid()));
        let thread = CohortThread {
            cohort,
            rx,
            router: self.router.clone(),
            epoch: self.epoch,
            timers: BinaryHeap::new(),
            timer_seq: 0,
            replies: BTreeMap::new(),
            stable: stable.clone(),
            store,
            observations: self.obs_tx.clone(),
            metrics: self.metrics.clone(),
            progress: self.progress.clone(),
            recorder: self.recorder.clone(),
        };
        let join = std::thread::Builder::new()
            .name(format!("cohort-{mid}"))
            .spawn(move || thread.run())
            // vsr-lint: allow(expect_used, reason = "thread spawn failure at cluster construction is unrecoverable")
            .expect("spawn cohort thread");
        self.router.routes.write().insert(mid, tx.clone());
        self.handles.lock().insert(mid, Handle { tx, join, stable });
    }

    /// Submit a transaction to `client_group` and block until an outcome
    /// arrives, trying each member until one acts as primary (after a
    /// crash it can take a view change for a new primary to emerge).
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownGroup`] for an unknown group;
    /// [`SubmitError::Timeout`] when no member produces an outcome.
    pub fn submit(
        &self,
        client_group: GroupId,
        ops: Vec<CallOp>,
    ) -> Result<TxnOutcome, SubmitError> {
        let config =
            self.peers.get(&client_group).ok_or(SubmitError::UnknownGroup(client_group))?;
        let members: Vec<Mid> = config.members().to_vec();
        self.metrics.lock().submitted += 1;
        let t0 = Instant::now();
        let result = self.submit_rounds(&members, &ops);
        {
            let mut m = self.metrics.lock();
            match &result {
                Ok(TxnOutcome::Committed { .. }) => {
                    m.committed += 1;
                    m.commit_latency.record(t0.elapsed().as_millis() as u64);
                }
                Ok(TxnOutcome::Aborted { .. }) => m.aborted += 1,
                Ok(TxnOutcome::Unresolved) | Err(_) => m.unresolved += 1,
            }
        }
        result
    }

    /// The retry loop behind [`submit`](Cluster::submit): try each
    /// member until one acts as primary; between rounds, sleep on the
    /// view-progress condvar so a completing view change wakes the
    /// submitter immediately instead of costing a full poll interval.
    fn submit_rounds(&self, members: &[Mid], ops: &[CallOp]) -> Result<TxnOutcome, SubmitError> {
        for _round in 0..20 {
            let epoch = self.progress.current();
            for &mid in members {
                let tx = { self.handles.lock().get(&mid).map(|h| h.tx.clone()) };
                let Some(tx) = tx else { continue };
                let req_id = {
                    let mut n = self.next_req.lock();
                    *n += 1;
                    *n
                };
                let (reply_tx, reply_rx) = bounded(1);
                if tx.send(Inbox::Request { req_id, ops: ops.to_vec(), reply: reply_tx }).is_err() {
                    continue;
                }
                match reply_rx.recv_timeout(Duration::from_secs(5)) {
                    Ok(TxnOutcome::Aborted {
                        reason: vsr_core::cohort::AbortReason::NotPrimary,
                    }) => continue,
                    Ok(outcome) => return Ok(outcome),
                    Err(_) => continue,
                }
            }
            self.progress.wait_past(epoch, Duration::from_millis(100));
        }
        Err(SubmitError::Timeout)
    }

    /// A snapshot of the cluster's aggregate metrics — the same counter
    /// set the simulator's `World::metrics` reports, with commit
    /// latencies in milliseconds instead of ticks.
    pub fn metrics(&self) -> Metrics {
        self.metrics.lock().clone()
    }

    /// Drain the structured trace events captured so far. Empty unless
    /// the cluster was built with [`ClusterBuilder::tracing`].
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.recorder.as_ref().map(SharedRecorder::take).unwrap_or_default()
    }

    /// Crash a cohort: its thread stops and its mail is dropped. The
    /// stable viewid is captured for a later [`recover`](Self::recover).
    pub fn crash(&self, mid: Mid) {
        let handle = self.handles.lock().remove(&mid);
        self.router.routes.write().remove(&mid);
        if let Some(handle) = handle {
            let stable = *handle.stable.lock();
            // vsr-lint: allow(discarded_result, reason = "crashing a cohort whose thread already exited is a no-op")
            let _ = handle.tx.send(Inbox::Stop);
            // vsr-lint: allow(discarded_result, reason = "a crash-simulating thread may panic on its way down; the join result is the point of the crash")
            let _ = handle.join.join();
            self.stable_store.lock().insert(mid, stable);
        }
    }

    /// Recover a crashed cohort. A durable cohort replays its WAL
    /// (possibly rejoining up to date — see `vsr_store`'s safety rule);
    /// otherwise it restarts from its stable viewid alone.
    pub fn recover(&self, mid: Mid) {
        if self.handles.lock().contains_key(&mid) {
            return;
        }
        let Some((group, members, factory)) = self.specs.get(&mid).cloned() else { return };
        self.spawn(group, mid, &members, factory, true);
    }

    /// Disk counters of a durable cohort's store (`None` for the no-disk
    /// design).
    pub fn store_metrics(&self, mid: Mid) -> Option<StoreMetrics> {
        self.stores.lock().get(&mid).map(|s| s.lock().metrics())
    }

    /// The stable viewid last recorded by a live cohort.
    pub fn stable_viewid(&self, mid: Mid) -> Option<ViewId> {
        self.handles.lock().get(&mid).map(|h| *h.stable.lock())
    }

    /// Drain any observations collected so far (requires
    /// [`ClusterBuilder::observe`]).
    pub fn observations(&self) -> Vec<(Mid, Observation)> {
        self.observations.try_iter().collect()
    }

    /// Stop every cohort thread and dismantle the cluster.
    pub fn shutdown(self) {
        let mut handles = self.handles.lock();
        let mids: Vec<Mid> = handles.keys().copied().collect();
        for mid in mids {
            if let Some(handle) = handles.remove(&mid) {
                // vsr-lint: allow(discarded_result, reason = "shutdown of an already-stopped cohort is a no-op")
                let _ = handle.tx.send(Inbox::Stop);
                // vsr-lint: allow(discarded_result, reason = "join failure at shutdown means the thread already died; there is nothing left to clean up")
                let _ = handle.join.join();
            }
        }
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("cohorts", &self.handles.lock().len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsr_app::counter;
    use vsr_core::module::NullModule;

    const CLIENT: GroupId = GroupId(1);
    const SERVER: GroupId = GroupId(2);

    fn cluster() -> Cluster {
        ClusterBuilder::new()
            .group(CLIENT, &[Mid(10)], || Box::new(NullModule))
            .group(SERVER, &[Mid(1), Mid(2), Mid(3)], || Box::new(counter::CounterModule))
            .start()
    }

    #[test]
    fn live_commit() {
        let c = cluster();
        let outcome = c.submit(CLIENT, vec![counter::incr(SERVER, 0, 5)]).unwrap();
        match outcome {
            TxnOutcome::Committed { results } => {
                assert_eq!(counter::decode_value(&results[0]).unwrap(), 5);
            }
            other => panic!("expected commit, got {other:?}"),
        }
        c.shutdown();
    }

    #[test]
    fn live_crash_and_failover() {
        let c = cluster();
        assert!(matches!(
            c.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]),
            Ok(TxnOutcome::Committed { .. })
        ));
        // Crash the bootstrap primary of the server group.
        c.crash(Mid(1));
        // A transaction in flight during the view change may abort (the
        // paper's Figure 2 step 3); the application re-runs it. Within a
        // few retries the new view serves it.
        let mut committed_value = None;
        for _ in 0..20 {
            match c.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]) {
                Ok(TxnOutcome::Committed { results }) => {
                    committed_value = Some(counter::decode_value(&results[0]).unwrap());
                    break;
                }
                Ok(_) | Err(_) => std::thread::sleep(Duration::from_millis(100)),
            }
        }
        assert_eq!(committed_value, Some(2), "state survived the failover");
        c.shutdown();
    }

    #[test]
    fn observations_are_collected() {
        let c = ClusterBuilder::new()
            .observe()
            .group(CLIENT, &[Mid(10)], || Box::new(NullModule))
            .group(SERVER, &[Mid(1), Mid(2), Mid(3)], || Box::new(counter::CounterModule))
            .start();
        assert!(matches!(
            c.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]),
            Ok(TxnOutcome::Committed { .. })
        ));
        // Allow backups to apply the commit.
        std::thread::sleep(Duration::from_millis(300));
        let obs = c.observations();
        assert!(
            obs.iter().any(|(_, o)| matches!(o, Observation::TxnCommitted { .. })),
            "commit observed: {obs:?}"
        );
        c.shutdown();
    }

    #[test]
    fn stable_viewid_survives_crash_recover() {
        let c = cluster();
        assert!(c.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]).is_ok());
        // Crash the primary; after failover the group's viewid advances.
        c.crash(Mid(1));
        let mut ok = false;
        for _ in 0..20 {
            if matches!(
                c.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]),
                Ok(TxnOutcome::Committed { .. })
            ) {
                ok = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        assert!(ok);
        let new_viewid = c.stable_viewid(Mid(2)).or(c.stable_viewid(Mid(3))).unwrap();
        // Recover the crashed cohort: it restarts from its *stored*
        // stable viewid and rejoins the (newer) view.
        c.recover(Mid(1));
        let mut rejoined = false;
        for _ in 0..50 {
            std::thread::sleep(Duration::from_millis(100));
            if c.stable_viewid(Mid(1)).is_some_and(|v| v >= new_viewid) {
                rejoined = true;
                break;
            }
        }
        assert!(rejoined, "recovered cohort caught up to {new_viewid}");
        c.shutdown();
    }

    #[test]
    fn durable_cluster_survives_kill_all_and_restart() {
        // The acceptance scenario for the store subsystem: kill an
        // entire 3-cohort group and restart it from its FileStore WALs;
        // the new incarnation must re-form a view retaining every
        // committed transaction.
        let dir = std::env::temp_dir().join(format!("vsr-durable-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let build = || {
            ClusterBuilder::new()
                .durable_files(&dir, FsyncPolicy::EveryRecord)
                .group(CLIENT, &[Mid(10)], || Box::new(NullModule))
                .group(SERVER, &[Mid(1), Mid(2), Mid(3)], || Box::new(counter::CounterModule))
                .start()
        };
        let c = build();
        for _ in 0..3 {
            assert!(matches!(
                c.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]),
                Ok(TxnOutcome::Committed { .. })
            ));
        }
        let metrics = c.store_metrics(Mid(1)).expect("durable cohort has a store");
        assert!(metrics.appends > 0, "primary journaled its records");
        // Kill everything.
        c.shutdown();
        // Restart the whole group from disk: the counter's three
        // increments must still be there, so the next one reads 4.
        let c = build();
        let mut committed_value = None;
        for _ in 0..50 {
            match c.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]) {
                Ok(TxnOutcome::Committed { results }) => {
                    committed_value = Some(counter::decode_value(&results[0]).unwrap());
                    break;
                }
                Ok(_) | Err(_) => std::thread::sleep(Duration::from_millis(100)),
            }
        }
        assert_eq!(committed_value, Some(4), "restarted group kept all committed state");
        c.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_mem_cluster_recovers_crashed_cohort_from_wal() {
        let c = ClusterBuilder::new()
            .durable(FsyncPolicy::EveryRecord)
            .group(CLIENT, &[Mid(10)], || Box::new(NullModule))
            .group(SERVER, &[Mid(1), Mid(2), Mid(3)], || Box::new(counter::CounterModule))
            .start();
        assert!(matches!(
            c.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]),
            Ok(TxnOutcome::Committed { .. })
        ));
        c.crash(Mid(2));
        c.recover(Mid(2));
        // The recovered backup replays its WAL and keeps serving.
        let mut ok = false;
        for _ in 0..20 {
            if matches!(
                c.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]),
                Ok(TxnOutcome::Committed { .. })
            ) {
                ok = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        assert!(ok);
        c.shutdown();
    }

    #[test]
    fn progress_wakeup_is_prompt() {
        // The submit retry loop sleeps on this condvar between rounds;
        // a bump must wake it long before the timeout expires.
        let progress = Arc::new(Progress::default());
        let seen = progress.current();
        let bumper = progress.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            bumper.bump();
        });
        let t0 = Instant::now();
        progress.wait_past(seen, Duration::from_secs(5));
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "woken by the bump, not the timeout: waited {:?}",
            t0.elapsed()
        );
        handle.join().unwrap();
    }

    #[test]
    fn failover_submit_latency_is_bounded() {
        // Regression for the busy-poll submit loop: after a primary
        // crash, the retry rounds sleep on the view-progress condvar
        // (waking as soon as the new view forms) instead of serializing
        // unconditional 100ms naps, so a full failover stays well
        // inside the old worst case of 20 rounds x 100ms on top of the
        // view change itself.
        let c = cluster();
        assert!(matches!(
            c.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]),
            Ok(TxnOutcome::Committed { .. })
        ));
        c.crash(Mid(1));
        let t0 = Instant::now();
        let mut committed = false;
        for _ in 0..20 {
            if matches!(
                c.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]),
                Ok(TxnOutcome::Committed { .. })
            ) {
                committed = true;
                break;
            }
        }
        assert!(committed, "failover never completed");
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "failover took {:?}, submit loop is not being woken",
            t0.elapsed()
        );
        c.shutdown();
    }

    #[test]
    fn metrics_and_traces_are_collected() {
        let c = ClusterBuilder::new()
            .tracing()
            .group(CLIENT, &[Mid(10)], || Box::new(NullModule))
            .group(SERVER, &[Mid(1), Mid(2), Mid(3)], || Box::new(counter::CounterModule))
            .start();
        for _ in 0..3 {
            assert!(matches!(
                c.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]),
                Ok(TxnOutcome::Committed { .. })
            ));
        }
        let m = c.metrics();
        assert_eq!(m.submitted, 3);
        assert_eq!(m.committed, 3);
        assert_eq!(m.commit_latency.count(), 3);
        assert!(m.foreground_msgs > 0, "request/response traffic counted");
        assert!(m.total_msgs() >= m.foreground_msgs);
        let events = c.trace_events();
        assert!(
            events.iter().any(|e| matches!(e.kind, TraceKind::Send { .. })),
            "sends traced: {} events",
            events.len()
        );
        assert!(
            events.iter().any(|e| matches!(e.kind, TraceKind::Recv { .. })),
            "deliveries traced"
        );
        c.shutdown();
    }

    #[test]
    fn unknown_group_errors() {
        let c = cluster();
        assert_eq!(
            c.submit(GroupId(99), vec![]).unwrap_err(),
            SubmitError::UnknownGroup(GroupId(99))
        );
        c.shutdown();
    }
}
