//! # Threaded live runtime
//!
//! Runs the same sans-I/O [`Cohort`](vsr_core::cohort::Cohort#) state
//! machines as the simulator, but on real threads with real clocks:
//! each cohort owns a thread, messages land in bounded drop-oldest
//! mailboxes (vsr-net's [`BoundedQueue`] — the same backpressure policy
//! the TCP transport uses), and timers run on a per-thread timer wheel
//! (1 tick = 1 millisecond).
//!
//! By default messages hop between mailboxes in-process. With
//! [`ClusterBuilder::networked`] the router hands every inter-cohort
//! message to a vsr-net [`Endpoint`] instead, and it travels over a
//! real TCP connection — same cohorts, same effects, real sockets.
//!
//! The runtime exists for the runnable examples: start a cluster, submit
//! transactions, crash and recover cohorts, and watch view changes
//! happen on a wall clock.
//!
//! ```
//! use vsr_app::counter::{self, CounterModule};
//! use vsr_core::module::NullModule;
//! use vsr_core::types::{GroupId, Mid};
//! use vsr_runtime::ClusterBuilder;
//!
//! let cluster = ClusterBuilder::new()
//!     .group(GroupId(1), &[Mid(10)], || Box::new(NullModule))
//!     .group(GroupId(2), &[Mid(1), Mid(2), Mid(3)], || Box::new(CounterModule))
//!     .start();
//! let outcome = cluster.submit(GroupId(1), vec![counter::incr(GroupId(2), 0, 1)]);
//! assert!(matches!(outcome, Ok(vsr_core::cohort::TxnOutcome::Committed { .. })));
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use vsr_core::cohort::{CallOp, Cohort, CohortParams, Effect, Observation, Timer, TxnOutcome};
use vsr_core::config::CohortConfig;
use vsr_core::durable::RecoveredState;
use vsr_core::messages::Message;
use vsr_core::module::Module;
use vsr_core::types::{GroupId, Mid, ViewId, Viewstamp};
use vsr_core::view::Configuration;
use vsr_net::socket::DeliverFn;
use vsr_net::{
    AddrMap, BoundedQueue, DropCounters, Endpoint, NetConfig, NetCounters, NetMetrics, RecvError,
};
use vsr_obs::{Metrics, Recorder, SharedRecorder, TraceEvent, TraceKind};
use vsr_store::{FileStore, FsyncPolicy, SimDisk, Store, StoreError, StoreMetrics};

/// A module factory shared across threads (recovery re-instantiates the
/// module).
pub type SharedFactory = Arc<dyn Fn() -> Box<dyn Module> + Send + Sync>;

/// A cohort's stable store, shared between its thread (which executes
/// `Effect::Persist`) and the cluster (which replays it at recovery).
type SharedStore = Arc<Mutex<Box<dyn Store + Send>>>;

/// Which stable-storage backend cohort threads write to.
#[derive(Debug, Clone, Default)]
enum Durability {
    /// The paper's no-disk design: persist effects are dropped and only
    /// the stable viewid is (notionally) remembered across a crash.
    #[default]
    None,
    /// In-memory [`SimDisk`] WALs: durable across [`Cluster::crash`] /
    /// [`Cluster::recover`] within one process, gone at shutdown.
    Mem(FsyncPolicy),
    /// [`FileStore`] WALs under `dir/cohort-<mid>/`: durable across
    /// whole-cluster shutdown and restart.
    Files { dir: std::path::PathBuf, policy: FsyncPolicy },
}

/// Errors surfaced by [`Cluster::submit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// No member of the client group produced an outcome within the
    /// total submit budget (see [`ClusterBuilder::submit_deadline`]).
    Timeout {
        /// How many retry rounds actually ran before the wall-clock
        /// budget expired.
        rounds: u32,
        /// The member whose reply was being awaited when a deadline
        /// last expired — the cohort to look at first. `None` means no
        /// member ever accepted the request (all crashed/stopped).
        last_peer: Option<Mid>,
    },
    /// The group id is unknown.
    UnknownGroup(GroupId),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Timeout { rounds, last_peer: Some(mid) } => {
                write!(f, "no outcome within the deadline after {rounds} rounds (last waited on cohort {mid})")
            }
            SubmitError::Timeout { rounds, last_peer: None } => {
                write!(f, "no cohort accepted the submission in {rounds} rounds")
            }
            SubmitError::UnknownGroup(g) => write!(f, "unknown group {g}"),
        }
    }
}

impl std::error::Error for SubmitError {}

enum Inbox {
    Msg {
        from: Mid,
        msg: Message,
    },
    Request {
        req_id: u64,
        ops: Vec<CallOp>,
        reply: Sender<TxnOutcome>,
    },
    /// The flusher thread's covering fsync returned: every record
    /// appended up to the `upto` watermark is durable and the effects
    /// parked behind them may go out. `covered` is the frame count the
    /// sync retired, for the group-commit histograms; zero means an
    /// inline sync superseded the retirement (the frames are durable
    /// and already accounted, so this completion only advances the
    /// watermark).
    Synced {
        upto: u64,
        covered: u64,
    },
    /// The covering fsync failed; fatal to the cohort (nothing it was
    /// meant to cover may be acknowledged).
    SyncFailed {
        err: StoreError,
    },
    Stop,
}

/// A cohort's bounded inbox. `Msg` entries are droppable (the network
/// may drop them anyway); `Request` and `Stop` are critical.
type Mailbox = Arc<BoundedQueue<Inbox>>;

/// Routes messages between cohort threads; absent entries are crashed
/// cohorts (their mail is dropped, like the simulator's).
///
/// In networked mode every inter-cohort message leaves through the
/// *sender's* [`Endpoint`] and re-enters via
/// [`deliver_local`](Router::deliver_local) on the receiver's reader
/// thread — the in-process route map then only performs final delivery
/// into the destination mailbox.
struct Router {
    routes: RwLock<BTreeMap<Mid, Mailbox>>,
    endpoints: RwLock<BTreeMap<Mid, Arc<Endpoint>>>,
    networked: bool,
}

impl Router {
    fn new(networked: bool) -> Self {
        Router { routes: RwLock::default(), endpoints: RwLock::default(), networked }
    }

    fn send(&self, from: Mid, to: Mid, msg: Message) {
        if self.networked && to != from {
            // A crashed sender's endpoint is already gone; its mail
            // vanishes, exactly like the network's would.
            if let Some(ep) = self.endpoints.read().get(&from) {
                ep.send(to, &msg);
            }
            return;
        }
        self.deliver_local(from, to, msg);
    }

    /// Final hop: push into the destination mailbox (drop-oldest on
    /// overflow; a missing route is a crashed cohort and drops mail).
    fn deliver_local(&self, from: Mid, to: Mid, msg: Message) {
        if let Some(mailbox) = self.routes.read().get(&to) {
            mailbox.push(Inbox::Msg { from, msg });
        }
    }
}

/// View-progress signal shared between cohort threads and submitters.
///
/// Every `Observation::ViewChanged` bumps the epoch and wakes everyone
/// blocked in [`wait_past`](Progress::wait_past); a submitter that found
/// no acting primary sleeps on it instead of unconditionally burning a
/// fixed poll interval, so a completed view change un-blocks the next
/// round immediately. Uses `std::sync` primitives because the waiters
/// need a condition variable, not just a lock.
#[derive(Default)]
struct Progress {
    epoch: std::sync::Mutex<u64>,
    changed: std::sync::Condvar,
}

impl Progress {
    /// The current epoch; pass it to [`wait_past`](Progress::wait_past).
    fn current(&self) -> u64 {
        *self.epoch.lock().expect("invariant: progress mutex is never poisoned")
    }

    /// Advance the epoch and wake every waiter.
    fn bump(&self) {
        let mut epoch = self.epoch.lock().expect("invariant: progress mutex is never poisoned");
        *epoch += 1;
        self.changed.notify_all();
    }

    /// Block until the epoch advances past `seen` or `timeout` elapses,
    /// whichever comes first.
    fn wait_past(&self, seen: u64, timeout: Duration) {
        let guard = self.epoch.lock().expect("invariant: progress mutex is never poisoned");
        let (_guard, _timed_out) = self
            .changed
            .wait_timeout_while(guard, timeout, |epoch| *epoch <= seen)
            .expect("invariant: progress mutex is never poisoned");
    }
}

struct TimerEntry {
    due: Instant,
    seq: u64,
    timer: Timer,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest due
        // time on top.
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct CohortThread {
    cohort: Cohort,
    rx: Mailbox,
    router: Arc<Router>,
    epoch: Instant,
    timers: BinaryHeap<TimerEntry>,
    timer_seq: u64,
    replies: BTreeMap<u64, Sender<TxnOutcome>>,
    /// Wall-clock submission instants of in-flight requests, for the
    /// leased-read latency histogram (microsecond resolution; the
    /// coarse `now_ticks` millisecond clock would read mostly zero).
    req_t0: BTreeMap<u64, Instant>,
    stable: Arc<Mutex<ViewId>>,
    store: Option<SharedStore>,
    observations: Option<Arc<BoundedQueue<(Mid, Observation)>>>,
    metrics: Arc<Mutex<Metrics>>,
    progress: Arc<Progress>,
    recorder: Option<SharedRecorder>,
    /// Group commit: effects whose visibility promises durability —
    /// protocol sends and client replies — parked until the fsync
    /// covering the records they depend on has happened. Each entry
    /// is stamped with the value of `appended` when it was parked;
    /// stamps are nondecreasing, so a covering fsync up to watermark
    /// `w` releases exactly the prefix with stamp ≤ `w`.
    deferred: Vec<(u64, Effect)>,
    /// Records this cohort has appended to its WAL, mirroring the
    /// store's `appends` counter (initialized from it at spawn so the
    /// two never diverge). The flusher stamps its completions against
    /// the same counter.
    appended: u64,
    /// Highest append watermark confirmed durable — by a flusher
    /// completion, or by a cut-through sync inside the store. Effects
    /// defer while `appended > synced_upto`.
    synced_upto: u64,
    /// Set while re-applying a released batch, so the deferral guard
    /// lets the now-durable effects through even though newer records
    /// may already be dirty again.
    releasing: bool,
    /// Wake token for the self-chaining flusher thread (present when
    /// the store hands out detached sync handles). The flusher loops
    /// covering fsyncs back-to-back until the log is clean, so a token
    /// is only needed on the clean → dirty transition; a full channel
    /// means a wake is already pending. Dropping the sender (cohort
    /// thread exit) stops the flusher.
    flusher_wake: Option<Sender<()>>,
    /// When the oldest currently-unsynced WAL record was appended;
    /// `None` means every appended record is covered by an fsync.
    /// Only meaningful for inline-syncing stores (no flusher).
    dirty_since: Option<Instant>,
    /// Upper bound on how long appended records may wait for their
    /// covering fsync (`FsyncPolicy::Group`'s `max_delay_ms`; zero for
    /// the eager policies, which never leave records unsynced).
    group_max_delay: Duration,
    /// A WAL write or fsync failed; the thread stops instead of acking
    /// state that may not be durable.
    store_failed: bool,
}

/// How many mailbox entries one handler pass may drain before timers
/// and the group-commit flush get a turn. Bounds the latency a
/// saturating producer can impose on timer fires.
const MAX_PASS_ITEMS: usize = 128;

impl CohortThread {
    fn now_ticks(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Record a trace event stamped with this cohort's current
    /// viewstamp (no-op unless the cluster enabled tracing).
    fn trace(&mut self, kind: TraceKind) {
        if self.recorder.is_none() {
            return;
        }
        let vs = self.cohort.history().latest();
        self.trace_with_vs(vs, kind);
    }

    /// Record a trace event with an explicit viewstamp (used where the
    /// observation itself carries the authoritative one).
    fn trace_with_vs(&mut self, vs: Option<Viewstamp>, kind: TraceKind) {
        let tick = self.epoch.elapsed().as_millis() as u64;
        let cohort = self.cohort.mid();
        if let Some(recorder) = &mut self.recorder {
            recorder.record(TraceEvent { tick, cohort, vs, kind });
        }
    }

    fn run(mut self) {
        let mid = self.cohort.mid();
        let now = self.now_ticks();
        let start_effects = self.cohort.start(now);
        self.apply(mid, start_effects);
        'main: loop {
            let timeout = self
                .timers
                .peek()
                .map(|t| t.due.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_millis(50));
            let mut next = match self.rx.recv_timeout(timeout) {
                Ok(item) => Some(item),
                Err(RecvError::TimedOut) => None,
                Err(RecvError::Closed) => break,
            };
            if next.is_some() {
                // One handler pass: drain the waiting mailbox batch
                // under a single deferred buffer flush, so one
                // coalesced BufferSend per backup — and, with group
                // commit, one covering fsync — serves every request
                // and message the pass admitted.
                self.cohort.begin_pass();
                let mut drained = 0;
                while let Some(item) = next.take() {
                    match item {
                        Inbox::Msg { from, msg } => {
                            let now = self.now_ticks();
                            let msg_name = msg.name();
                            if matches!(msg, Message::Chunk { .. }) {
                                self.metrics.lock().snapshot_chunks_received += 1;
                            }
                            let effects = self.cohort.on_message(now, from, msg);
                            self.trace(TraceKind::Recv { from, msg: msg_name });
                            self.apply(mid, effects);
                        }
                        Inbox::Request { req_id, ops, reply } => {
                            self.replies.insert(req_id, reply);
                            self.req_t0.insert(req_id, Instant::now());
                            let now = self.now_ticks();
                            let effects = self.cohort.begin_transaction(now, req_id, ops);
                            // The pipelining depth clients actually
                            // reach: sampled as each request joins the
                            // in-flight set.
                            self.metrics
                                .lock()
                                .inflight_txns
                                .record(self.cohort.inflight_txns() as u64);
                            self.apply(mid, effects);
                        }
                        Inbox::Synced { upto, covered } => {
                            self.on_sync_complete(mid, upto, covered);
                        }
                        Inbox::SyncFailed { err } => {
                            self.fatal_store_error(err);
                        }
                        Inbox::Stop => {
                            let end = self.cohort.end_pass();
                            self.apply(mid, end);
                            break 'main;
                        }
                    }
                    drained += 1;
                    if drained < MAX_PASS_ITEMS {
                        next = self.rx.try_recv();
                    }
                }
                let end = self.cohort.end_pass();
                self.apply(mid, end);
            }
            // Fire all due timers.
            let now_instant = Instant::now();
            while self.timers.peek().is_some_and(|t| t.due <= now_instant) {
                let entry = self.timers.pop().expect("invariant: peek returned Some");
                let now = self.now_ticks();
                // Same accounting rules as the simulator: heartbeats,
                // buffer flushes, and lease housekeeping (the normal end
                // of a grant's life, the scheduled view-change safety
                // pause) are not protocol timeouts; a retry timer's
                // resulting sends are retransmissions.
                if !matches!(
                    entry.timer,
                    Timer::Heartbeat
                        | Timer::BufferFlush
                        | Timer::LeaseExpiry { .. }
                        | Timer::LeaseWait { .. }
                ) {
                    self.metrics.lock().timeouts_fired += 1;
                }
                let is_retry = matches!(
                    entry.timer,
                    Timer::CallRetry { .. }
                        | Timer::PrepareRetry { .. }
                        | Timer::CommitRetry { .. }
                        | Timer::ManagerRetry { .. }
                        | Timer::AgentBeginRetry { .. }
                        | Timer::AgentCallRetry { .. }
                        | Timer::AgentCommitRetry { .. }
                        | Timer::ChunkRetry { .. }
                );
                let timer_name = entry.timer.name();
                let effects = self.cohort.on_timer(now, entry.timer);
                if !effects.is_empty() {
                    self.trace(TraceKind::Timer { timer: timer_name });
                }
                if is_retry {
                    self.metrics.lock().retransmissions +=
                        effects.iter().filter(|e| matches!(e, Effect::Send { .. })).count() as u64;
                }
                self.apply(mid, effects);
            }
            // Group commit: get the covering fsync going for
            // everything this pass appended. With a flusher thread
            // (stores that detach sync handles) a wake token suffices
            // — the flusher chains covering fsyncs back-to-back until
            // the log is clean, so a full channel means it is already
            // on it. Inline-syncing stores flush here, once the
            // mailbox goes idle (the batch is as large as the burst)
            // or the oldest unsynced record has aged `max_delay`.
            if let Some(wake) = &self.flusher_wake {
                if self.appended > self.synced_upto {
                    // vsr-lint: allow(discarded_result, reason = "a full channel means a wake is already pending; a closed one means the flusher died and its SyncFailed is in the mailbox")
                    let _ = wake.try_send(());
                }
            } else if self
                .dirty_since
                .is_some_and(|t| t.elapsed() >= self.group_max_delay || self.rx.is_empty())
            {
                self.flush_store(mid);
            }
            if self.store_failed {
                // The WAL is gone; stop acking and let the cluster
                // crash/recover this cohort from the synced prefix.
                break;
            }
            *self.stable.lock() = self.cohort.stable_viewid();
        }
    }

    fn apply(&mut self, mid: Mid, effects: Vec<Effect>) {
        for effect in effects {
            if self.store_failed {
                // A fatal store error already dropped the deferred
                // batch; nothing later may leak out either.
                return;
            }
            // Group commit: while appended records await their
            // covering fsync, anything that *asserts durability* to the
            // outside — acks, votes, replies, client outcomes — is
            // parked in order behind the flush, stamped with the
            // append watermark it may depend on. `BufferSend` is
            // exempt: replication traffic promises nothing (only the
            // backup's ack, sent after *its* covering fsync, counts
            // toward the sub-majority), so shipping records early
            // overlaps the primary's fsync with the backups' instead
            // of serializing them. Timers and observations also run
            // immediately.
            if self.appended > self.synced_upto
                && !self.releasing
                && match &effect {
                    Effect::Send { msg, .. } => !matches!(msg, Message::BufferSend { .. }),
                    Effect::TxnResult { .. } => true,
                    _ => false,
                }
            {
                self.deferred.push((self.appended, effect));
                continue;
            }
            match effect {
                Effect::Send { to, msg } => {
                    let size = msg.wire_size() as u64;
                    {
                        let mut m = self.metrics.lock();
                        *m.msgs.entry(msg.name()).or_default() += 1;
                        *m.bytes.entry(msg.name()).or_default() += size;
                        if msg.is_view_change() {
                            m.view_change_msgs += 1;
                        } else if msg.is_background() {
                            m.background_msgs += 1;
                        } else {
                            m.foreground_msgs += 1;
                            m.foreground_bytes += size;
                        }
                        if matches!(msg, Message::Chunk { .. }) {
                            m.snapshot_chunks_sent += 1;
                        }
                    }
                    self.trace(TraceKind::Send { to, msg: msg.name() });
                    self.router.send(mid, to, msg);
                }
                Effect::SetTimer { after, timer } => {
                    self.timer_seq += 1;
                    self.timers.push(TimerEntry {
                        due: Instant::now() + Duration::from_millis(after),
                        seq: self.timer_seq,
                        timer,
                    });
                }
                Effect::TxnResult { req_id, outcome, .. } => {
                    self.req_t0.remove(&req_id);
                    if let Some(reply) = self.replies.remove(&req_id) {
                        // vsr-lint: allow(discarded_result, reason = "the submitter may have timed out and dropped its receiver")
                        let _ = reply.send(outcome);
                    }
                }
                Effect::Persist(event) => {
                    if let Some(store) = &self.store {
                        let (result, delta, pre_unsynced, post_unsynced) = {
                            let mut store = store.lock();
                            let before = store.metrics();
                            let pre = store.unsynced_records();
                            let result = store.persist(&event);
                            (result, store.metrics().since(&before), pre, store.unsynced_records())
                        };
                        if let Err(err) = result {
                            self.fatal_store_error(err);
                            return;
                        }
                        {
                            let mut m = self.metrics.lock();
                            m.disk_appends += delta.appends;
                            m.disk_fsyncs += delta.fsyncs;
                            m.disk_bytes_written += delta.bytes_written;
                            m.checkpoints_taken += delta.checkpoints;
                            // An fsync that covered previously deferred
                            // records is a group commit, whether the
                            // batch threshold or a cut-through event
                            // (stable viewid, checkpoint) triggered it.
                            if delta.fsyncs > 0 && pre_unsynced > 0 {
                                m.group_fsyncs += delta.fsyncs;
                                if delta.fsyncs > 1 {
                                    // Two fsyncs (a checkpoint: rotate's
                                    // covering sync, then the checkpoint
                                    // sync) split the batch between them
                                    // — rotate retired the pre-existing
                                    // frames, the second sync this
                                    // persist's own appends.
                                    m.records_per_fsync.record(pre_unsynced);
                                    m.records_per_fsync.record(delta.appends);
                                } else {
                                    // One fsync; frames still unsynced
                                    // after it (an append following a
                                    // size-triggered rotate) were not
                                    // covered by it.
                                    m.records_per_fsync.record(
                                        (pre_unsynced + delta.appends)
                                            .saturating_sub(post_unsynced),
                                    );
                                }
                            }
                        }
                        self.appended += delta.appends;
                        if delta.appends > 0 {
                            self.trace(TraceKind::DiskAppend { bytes: delta.bytes_written });
                        }
                        if post_unsynced > 0 {
                            self.dirty_since.get_or_insert_with(Instant::now);
                        } else {
                            // The store synced inline (cut-through
                            // viewid/checkpoint, batch bound, or an
                            // eager policy): everything appended so
                            // far is durable and may go out.
                            self.dirty_since = None;
                            self.advance_synced(mid, self.appended);
                        }
                    }
                }
                Effect::Observe(obs) => {
                    match &obs {
                        Observation::ViewChanged { is_primary, .. } => {
                            if *is_primary {
                                self.metrics.lock().view_formations += 1;
                            }
                            // Wake submitters stuck waiting for a
                            // primary: the view just (re)formed.
                            self.progress.bump();
                        }
                        Observation::ViewChangeStarted { .. } => {
                            self.metrics.lock().view_change_attempts += 1;
                        }
                        Observation::PrepareProcessed { waited, .. } => {
                            let mut m = self.metrics.lock();
                            if *waited {
                                m.prepares_waited += 1;
                            } else {
                                m.prepares_fast += 1;
                            }
                        }
                        Observation::ForceAbandoned { .. } => {
                            self.metrics.lock().forces_abandoned += 1;
                        }
                        Observation::StatusChanged { from, to, .. } => {
                            self.trace(TraceKind::ViewState { from: from.name(), to: to.name() });
                        }
                        Observation::ForceBegan { vs, .. } => {
                            self.trace_with_vs(Some(*vs), TraceKind::ForceBegin);
                        }
                        Observation::ForceFired { vs, fired, .. } => {
                            self.trace_with_vs(Some(*vs), TraceKind::ForceFire { fired: *fired });
                        }
                        Observation::BufferFlushed { clones_saved, .. } => {
                            self.metrics.lock().buffer_clones_saved += *clones_saved;
                        }
                        Observation::SnapshotTaken { .. } => {
                            self.metrics.lock().snapshots_taken += 1;
                        }
                        Observation::SnapshotInstalled { ticks, .. } => {
                            let mut m = self.metrics.lock();
                            m.snapshots_installed += 1;
                            m.transfer_ticks.record(*ticks);
                        }
                        Observation::ChunkCorruptDropped { .. } => {
                            self.metrics.lock().snapshot_chunks_corrupt += 1;
                        }
                        Observation::ChunkRetried { .. } => {
                            self.metrics.lock().snapshot_chunk_retries += 1;
                        }
                        Observation::StatusesGced { n, .. } => {
                            self.metrics.lock().statuses_gced += *n;
                        }
                        Observation::LeasedRead { req_id, .. } => {
                            let mut m = self.metrics.lock();
                            m.leased_reads += 1;
                            if let Some(t0) = self.req_t0.get(req_id) {
                                m.lease_read_ticks.record(t0.elapsed().as_micros() as u64);
                            }
                        }
                        Observation::LeaseRenewed { .. } => {
                            self.metrics.lock().lease_renewals += 1;
                        }
                        Observation::LeaseReadRejected { .. } => {
                            self.metrics.lock().lease_read_rejected += 1;
                        }
                        Observation::LeaseWaitStarted { .. } => {
                            self.metrics.lock().lease_waits_on_view_change += 1;
                        }
                        Observation::TxnCommitted { .. } | Observation::TxnAborted { .. } => {
                            // Client-visible outcomes are counted once,
                            // in `Cluster::submit`, matching the sim's
                            // client-side accounting.
                        }
                    }
                    if let Some(tx) = &self.observations {
                        // Best-effort telemetry: a full drain evicts its
                        // oldest entry (counted as a mailbox drop) and
                        // never stalls the cohort.
                        tx.push((mid, obs));
                    }
                }
            }
        }
    }

    /// Advance the durable watermark and re-apply the parked prefix it
    /// releases (stamp ≤ watermark). Called only once the records up
    /// to `upto` are durable, so the batch flows straight through
    /// `apply` even while newer records are dirty again.
    fn advance_synced(&mut self, mid: Mid, upto: u64) {
        if upto > self.synced_upto {
            self.synced_upto = upto;
        }
        let n = self.deferred.partition_point(|(stamp, _)| *stamp <= self.synced_upto);
        if n == 0 {
            return;
        }
        let released: Vec<Effect> = self.deferred.drain(..n).map(|(_, effect)| effect).collect();
        self.releasing = true;
        self.apply(mid, released);
        self.releasing = false;
    }

    /// Issue the covering fsync for every record appended since the
    /// last sync and release everything parked behind it. A failed
    /// fsync is fatal: nothing it was meant to cover may be acked.
    /// Only called for inline-syncing stores — cohorts with a flusher
    /// thread never flush on their own thread.
    fn flush_store(&mut self, mid: Mid) {
        let Some(store) = self.store.clone() else {
            self.dirty_since = None;
            return;
        };
        let (result, covered, delta) = {
            let mut store = store.lock();
            let covered = store.unsynced_records();
            let before = store.metrics();
            let result = store.flush();
            (result, covered, store.metrics().since(&before))
        };
        match result {
            Ok(()) => {
                {
                    let mut m = self.metrics.lock();
                    m.disk_fsyncs += delta.fsyncs;
                    if delta.fsyncs > 0 && covered > 0 {
                        m.group_fsyncs += delta.fsyncs;
                        m.records_per_fsync.record(covered);
                    }
                }
                self.dirty_since = None;
                self.advance_synced(mid, self.appended);
            }
            Err(err) => self.fatal_store_error(err),
        }
    }

    /// A flusher completion: the covering fsync for every record up to
    /// the `upto` watermark succeeded (the flusher already retired the
    /// frames in the store). Account the group commit and release the
    /// parked prefix.
    fn on_sync_complete(&mut self, mid: Mid, upto: u64, covered: u64) {
        if self.store_failed {
            return;
        }
        {
            let mut m = self.metrics.lock();
            m.disk_fsyncs += 1;
            // `covered == 0` means an inline cut-through raced the
            // flusher's fsync and already retired (and accounted)
            // these frames: the completion still advances the
            // watermark, but crediting it as a group commit too would
            // inflate the records/fsync numbers A6 reports.
            if covered > 0 {
                m.group_fsyncs += 1;
                m.records_per_fsync.record(covered);
            }
        }
        if upto >= self.appended {
            self.dirty_since = None;
        }
        self.advance_synced(mid, upto);
    }

    /// A WAL append or fsync failed. Nothing the failed operation was
    /// meant to cover may become visible: the parked sends and replies
    /// are dropped (submitters time out and try another member), and
    /// the run loop stops — the runtime analogue of the process crash
    /// the paper assumes on stable-storage failure.
    /// [`Cluster::recover`] restarts the cohort from the synced WAL
    /// prefix.
    fn fatal_store_error(&mut self, _err: StoreError) {
        self.deferred.clear();
        self.releasing = false;
        self.replies.clear();
        self.req_t0.clear();
        self.dirty_since = None;
        self.store_failed = true;
    }
}

/// Body of a cohort's flusher thread: wait for a wake token, then
/// chain covering fsyncs until the log is clean. Each cycle detaches a
/// [`vsr_store::SyncHandle`] under the store lock (with the covered
/// frame count and append watermark), fsyncs *outside* the lock while
/// the cohort thread keeps appending the next batch, retires the
/// covered frames, and posts the completion as a critical mailbox
/// entry (never evicted by backpressure). When the store cannot detach
/// a handle (a failed descriptor duplicate), the cycle degrades to an
/// inline sync under the lock — slower, equally safe — rather than
/// leaving the batch and its parked acks waiting forever. A failed
/// fsync is posted as fatal and stops the thread: nothing it was meant
/// to cover may be acknowledged.
///
/// Cadence: the chain is self-driving — after each fsync it re-probes
/// immediately and only sleeps on the wake channel once the log is
/// clean, so consecutive covering fsyncs need no cohort roundtrip and
/// each one covers whatever accumulated while the previous was on the
/// device. Alternatives measured worse (DESIGN §15): waiting for a
/// fresh pass-end wake between syncs idles the disk for a full
/// roundtrip per batch, and sleeping to accumulate bigger batches
/// costs more than the fsync it tries to amortize on kernels whose
/// minimum real sleep exceeds the fsync latency.
fn flusher_loop(store: &SharedStore, mailbox: &Mailbox, wake: &Receiver<()>) {
    while wake.recv().is_ok() {
        loop {
            let job = {
                let mut store = store.lock();
                let covered = store.unsynced_records();
                if covered == 0 {
                    break;
                }
                let upto = store.metrics().appends;
                match store.sync_handle() {
                    Some(handle) => Ok((Some(handle), covered, upto)),
                    // The duplicate failed mid-run (e.g. fd
                    // exhaustion). The cohort never inline-flushes once
                    // it has a flusher, so stalling here would park its
                    // deferred acks forever; degrade to an inline sync
                    // under the lock instead.
                    None => store.flush().map(|()| (None, covered, upto)),
                }
            };
            let (handle, covered, upto) = match job {
                Ok(job) => job,
                Err(err) => {
                    // vsr-lint: allow(discarded_result, reason = "a closed mailbox means the cohort is already gone; there is nobody left to tell")
                    let _ = mailbox.push_critical(Inbox::SyncFailed { err });
                    return;
                }
            };
            let covered = match handle {
                // Inline fallback: the lock was held, nothing raced.
                None => covered,
                Some(handle) => match handle.sync() {
                    // An inline sync that ran while this fsync was in
                    // flight supersedes the retirement: the batch is
                    // durable either way, but this completion gets no
                    // group-commit credit (covered = 0).
                    Ok(()) => {
                        if store.lock().note_synced(covered) {
                            covered
                        } else {
                            0
                        }
                    }
                    Err(err) => {
                        // vsr-lint: allow(discarded_result, reason = "a closed mailbox means the cohort is already gone; there is nobody left to tell")
                        let _ = mailbox.push_critical(Inbox::SyncFailed { err });
                        return;
                    }
                },
            };
            if !mailbox.push_critical(Inbox::Synced { upto, covered }) {
                return; // mailbox closed: the cohort is gone
            }
        }
    }
}

struct Handle {
    tx: Mailbox,
    join: JoinHandle<()>,
    stable: Arc<Mutex<ViewId>>,
}

/// Everything the networked transport adds to a cluster: the address
/// book, per-cohort endpoints, and counters accumulated from torn-down
/// (crashed) endpoints so totals survive recovery cycles.
struct NetState {
    addrs: Mutex<AddrMap>,
    cfg: NetConfig,
    endpoints: Mutex<BTreeMap<Mid, Arc<Endpoint>>>,
    base: Mutex<NetCounters>,
}

/// Builder for a [`Cluster`].
pub struct ClusterBuilder {
    cfg: CohortConfig,
    groups: Vec<(GroupId, Vec<Mid>, SharedFactory)>,
    observations: bool,
    tracing: bool,
    durability: Durability,
    mailbox_capacity: usize,
    submit_deadline: Duration,
    net_addrs: Option<AddrMap>,
    net_cfg: NetConfig,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder::new()
    }
}

impl std::fmt::Debug for ClusterBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterBuilder").field("groups", &self.groups.len()).finish_non_exhaustive()
    }
}

impl ClusterBuilder {
    /// Start building a cluster with default cohort tuning.
    pub fn new() -> Self {
        ClusterBuilder {
            cfg: CohortConfig::new(),
            groups: Vec::new(),
            observations: false,
            tracing: false,
            durability: Durability::None,
            mailbox_capacity: 4096,
            submit_deadline: Duration::from_secs(5),
            net_addrs: None,
            net_cfg: NetConfig::new(),
        }
    }

    /// Capacity of each cohort's bounded mailbox (and of the
    /// observation drain). Overflow evicts the oldest droppable entry
    /// (counted in the `mailbox_drops` metric) or, when every resident
    /// entry is critical, refuses the new one (counted in
    /// `mailbox_rejections`) — the same drop-oldest policy the TCP
    /// transport applies to its per-peer queues, so in-process and
    /// networked runs share one backpressure story.
    pub fn mailbox_capacity(mut self, capacity: usize) -> Self {
        self.mailbox_capacity = capacity;
        self
    }

    /// The *total* wall-clock budget for one [`Cluster::submit`] call
    /// (default 5 s), shared by every retry round and member contact —
    /// not a per-member wait, so a wedged cluster blocks a submitter
    /// for at most this long. On expiry, [`SubmitError::Timeout`]
    /// reports how many rounds ran and the last peer waited on.
    pub fn submit_deadline(mut self, deadline: Duration) -> Self {
        self.submit_deadline = deadline;
        self
    }

    /// Route every inter-cohort message over real TCP using vsr-net.
    /// `addrs` says where each cohort listens and where peers dial it
    /// (route a cohort through a [`vsr_net::ChaosProxy`] with
    /// [`AddrMap::dial_via`]). The sans-I/O core is untouched: cohorts
    /// emit the same `Effect::Send`s, the router hands them to a
    /// socket instead of a mailbox. Transport retry/backoff reuses the
    /// cluster's [`CohortConfig`] retry knobs.
    pub fn networked(mut self, addrs: AddrMap) -> Self {
        self.net_addrs = Some(addrs);
        self
    }

    /// Override transport tuning (queue capacity, deadlines, reconnect
    /// base). Only meaningful together with
    /// [`networked`](ClusterBuilder::networked); the `retry` field is
    /// replaced by the cluster's cohort config at start so transport
    /// and protocol back off by one policy.
    pub fn net_config(mut self, cfg: NetConfig) -> Self {
        self.net_cfg = cfg;
        self
    }

    /// Capture structured [`TraceEvent`]s from every cohort thread,
    /// drainable via [`Cluster::trace_events`] — the runtime counterpart
    /// of the simulator's `World::enable_tracing`.
    pub fn tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Give every cohort an in-memory WAL ([`SimDisk`]) with the given
    /// fsync policy: state survives [`Cluster::crash`] /
    /// [`Cluster::recover`] within this process, and a recovered cohort
    /// replays its log instead of restarting from the bare viewid.
    pub fn durable(mut self, policy: FsyncPolicy) -> Self {
        self.durability = Durability::Mem(policy);
        self
    }

    /// Give every cohort a file-backed WAL ([`FileStore`]) under
    /// `dir/cohort-<mid>/`. State survives killing the *entire* cluster
    /// and starting a fresh one on the same directory: cohorts that find
    /// existing segments recover from them instead of booting fresh.
    pub fn durable_files(
        mut self,
        dir: impl Into<std::path::PathBuf>,
        policy: FsyncPolicy,
    ) -> Self {
        self.durability = Durability::Files { dir: dir.into(), policy };
        self
    }

    /// Override the cohort tuning knobs.
    pub fn cohorts(mut self, cfg: CohortConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Add a module group (first member is the bootstrap primary).
    pub fn group<F>(mut self, group: GroupId, members: &[Mid], factory: F) -> Self
    where
        F: Fn() -> Box<dyn Module> + Send + Sync + 'static,
    {
        self.groups.push((group, members.to_vec(), Arc::new(factory)));
        self
    }

    /// Collect observations into a channel readable via
    /// [`Cluster::observations`].
    pub fn observe(mut self) -> Self {
        self.observations = true;
        self
    }

    /// Spawn all cohort threads and return the running cluster.
    pub fn start(self) -> Cluster {
        let router = Arc::new(Router::new(self.net_addrs.is_some()));
        let epoch = Instant::now();
        let mut peers = BTreeMap::new();
        for (group, members, _) in &self.groups {
            peers.insert(*group, Configuration::new(*group, members.clone()));
        }
        let mailbox_drops = DropCounters::new();
        let obs_rx = BoundedQueue::new(self.mailbox_capacity, mailbox_drops.clone());
        let obs_tx = self.observations.then(|| Arc::clone(&obs_rx));
        let net = self.net_addrs.map(|addrs| {
            // One retry/backoff policy: the transport jitters and caps
            // its reconnects with the same knobs as protocol retries.
            let mut cfg = self.net_cfg.clone();
            cfg.retry = self.cfg.clone();
            NetState {
                addrs: Mutex::new(addrs),
                cfg,
                endpoints: Mutex::new(BTreeMap::new()),
                base: Mutex::new(NetCounters::default()),
            }
        });
        let cluster = Cluster {
            router,
            handles: Mutex::new(BTreeMap::new()),
            specs: self
                .groups
                .iter()
                .flat_map(|(g, members, f)| {
                    let members = members.clone();
                    let f = f.clone();
                    let g = *g;
                    members.clone().into_iter().map(move |m| (m, (g, members.clone(), f.clone())))
                })
                .collect(),
            peers,
            cfg: self.cfg.clone(),
            epoch,
            next_req: Mutex::new(0),
            observations: obs_rx,
            obs_tx,
            stable_store: Mutex::new(BTreeMap::new()),
            stores: Mutex::new(BTreeMap::new()),
            durability: self.durability.clone(),
            metrics: Arc::new(Mutex::new(Metrics::default())),
            progress: Arc::new(Progress::default()),
            recorder: self.tracing.then(SharedRecorder::new),
            mailbox_capacity: self.mailbox_capacity,
            mailbox_drops,
            submit_deadline: self.submit_deadline,
            net,
        };
        for (group, members, factory) in &self.groups {
            for &mid in members {
                cluster.spawn(*group, mid, members, factory.clone(), false);
            }
        }
        cluster
    }
}

/// A running cluster of cohort threads.
pub struct Cluster {
    router: Arc<Router>,
    handles: Mutex<BTreeMap<Mid, Handle>>,
    specs: BTreeMap<Mid, (GroupId, Vec<Mid>, SharedFactory)>,
    peers: BTreeMap<GroupId, Configuration>,
    cfg: CohortConfig,
    epoch: Instant,
    next_req: Mutex<u64>,
    observations: Arc<BoundedQueue<(Mid, Observation)>>,
    obs_tx: Option<Arc<BoundedQueue<(Mid, Observation)>>>,
    /// Simulated stable storage for the no-disk design: the last stable
    /// viewid of each crashed cohort, read back at recovery.
    stable_store: Mutex<BTreeMap<Mid, ViewId>>,
    /// Per-cohort WALs (durable clusters only). An entry outlives its
    /// cohort thread so a recovery can replay it.
    stores: Mutex<BTreeMap<Mid, SharedStore>>,
    durability: Durability,
    /// The same counter set the simulator's `World` collects, populated
    /// by cohort threads (traffic, observations, disk) and by
    /// [`submit`](Cluster::submit) (client-visible outcomes, latency in
    /// microseconds).
    metrics: Arc<Mutex<Metrics>>,
    /// View-progress condvar submitters sleep on between retry rounds.
    progress: Arc<Progress>,
    /// Installed when the builder enabled [`tracing`](ClusterBuilder::tracing).
    recorder: Option<SharedRecorder>,
    /// Capacity for cohort mailboxes (shared with any spawned endpoint's
    /// per-peer queues via [`NetConfig`]).
    mailbox_capacity: usize,
    /// Overflow accounting shared by every mailbox and the observation
    /// drain: evictions surface as `mailbox_drops` and rejected pushes
    /// as `mailbox_rejections` in [`metrics`](Cluster::metrics).
    mailbox_drops: DropCounters,
    /// Per-round outcome deadline for [`submit`](Cluster::submit).
    submit_deadline: Duration,
    /// Present when the cluster routes messages over TCP.
    net: Option<NetState>,
}

impl Cluster {
    /// Open (or look up) the WAL for `mid` according to the cluster's
    /// durability mode.
    fn store_for(&self, mid: Mid) -> Option<SharedStore> {
        let mut stores = self.stores.lock();
        if let Some(store) = stores.get(&mid) {
            return Some(store.clone());
        }
        let store: Box<dyn Store + Send> = match &self.durability {
            Durability::None => return None,
            Durability::Mem(policy) => Box::new(SimDisk::new(*policy)),
            Durability::Files { dir, policy } => Box::new(
                FileStore::open(dir.join(format!("cohort-{}", mid.0)), *policy)
                    // vsr-lint: allow(expect_used, reason = "startup misconfiguration; crashing with the io::Error is the right behavior")
                    .expect("open cohort wal directory"),
            ),
        };
        let store = Arc::new(Mutex::new(store));
        stores.insert(mid, store.clone());
        Some(store)
    }

    fn spawn(
        &self,
        group: GroupId,
        mid: Mid,
        members: &[Mid],
        factory: SharedFactory,
        recovering: bool,
    ) {
        let params = CohortParams {
            cfg: self.cfg.clone(),
            mid,
            configuration: Configuration::new(group, members.to_vec()),
            initial_primary: members[0],
            peers: self.peers.clone(),
            module: factory(),
        };
        let bootstrap = ViewId::initial(members[0]);
        let store = self.store_for(mid);
        let cohort = match &store {
            Some(store) => {
                // The WAL is the single source of truth: a freshly
                // started cluster whose store already holds state (an
                // earlier incarnation's files, or an earlier crash in
                // this process) recovers from it; a pristine store means
                // a true bootstrap.
                let rs = store.lock().recover(bootstrap);
                let pristine =
                    rs.checkpoint.is_none() && rs.tail.is_empty() && rs.stable_viewid == bootstrap;
                if pristine && !recovering {
                    Cohort::new(params)
                } else {
                    Cohort::recover(params, rs)
                }
            }
            None if recovering => {
                let stable = self.stable_store.lock().get(&mid).copied().unwrap_or(bootstrap);
                Cohort::recover(params, RecoveredState::viewid_only(stable))
            }
            None => Cohort::new(params),
        };
        self.metrics.lock().records_replayed += cohort.records_replayed();
        let mailbox = BoundedQueue::new(self.mailbox_capacity, self.mailbox_drops.clone());
        self.router.routes.write().insert(mid, Arc::clone(&mailbox));
        // Networked clusters give every cohort its own transport
        // endpoint before its thread starts; inbound frames land back in
        // the local mailbox via the router's final-delivery hop.
        if let Some(net) = &self.net {
            let (listener, bind_addr, dials) = {
                let mut addrs = net.addrs.lock();
                (addrs.take_listener(mid), addrs.bind_addr(mid), addrs.dial_addrs())
            };
            let bind_addr = bind_addr
                // vsr-lint: allow(expect_used, reason = "a networked cluster whose address book misses a cohort is a startup misconfiguration")
                .expect("address book entry for cohort");
            let net_metrics = Arc::new(NetMetrics::default());
            let router = Arc::clone(&self.router);
            let deliver: DeliverFn =
                Arc::new(move |from, msg| router.deliver_local(from, mid, msg));
            let endpoint = match listener {
                // A pre-bound listener (AddrMap::loopback) is adopted
                // as-is; otherwise bind the configured address, retrying
                // briefly so a recovery can win the race against its old
                // incarnation's accept thread releasing the port.
                Some(l) => Endpoint::start(mid, l, &dials, net.cfg.clone(), net_metrics, deliver),
                None => Endpoint::bind(
                    mid,
                    bind_addr,
                    &dials,
                    net.cfg.clone(),
                    net_metrics,
                    deliver,
                    Duration::from_secs(5),
                ),
            }
            // vsr-lint: allow(expect_used, reason = "failing to bind the configured transport address is a startup misconfiguration; crashing with the io::Error is the right behavior")
            .expect("start cohort transport endpoint");
            let endpoint = Arc::new(endpoint);
            net.endpoints.lock().insert(mid, Arc::clone(&endpoint));
            self.router.endpoints.write().insert(mid, endpoint);
        }
        let stable = Arc::new(Mutex::new(cohort.stable_viewid()));
        // Group commit's advisory latency bound lives here: the stores
        // are wall-clock-free, so the cohort thread owns the deadline
        // by which appended records must get their covering fsync.
        let group_max_delay = match &self.durability {
            Durability::Mem(FsyncPolicy::Group { max_delay_ms, .. })
            | Durability::Files { policy: FsyncPolicy::Group { max_delay_ms, .. }, .. } => {
                Duration::from_millis(*max_delay_ms)
            }
            Durability::None | Durability::Mem(_) | Durability::Files { .. } => Duration::ZERO,
        };
        // Stores that detach sync handles get a flusher thread: the
        // covering fsync runs there, overlapped with the cohort
        // appending its next batch. A spawn failure falls back to
        // inline flushing — slower, equally safe.
        let flusher_wake = store.as_ref().and_then(|store| {
            store.lock().sync_handle()?;
            let (wake_tx, wake_rx) = bounded::<()>(1);
            let store = Arc::clone(store);
            let flusher_mailbox = Arc::clone(&mailbox);
            std::thread::Builder::new()
                .name(format!("flush-{mid}"))
                .spawn(move || flusher_loop(&store, &flusher_mailbox, &wake_rx))
                .ok()
                .map(|_| wake_tx)
        });
        let (appended, synced_upto) = store
            .as_ref()
            .map(|s| {
                let s = s.lock();
                let appended = s.metrics().appends;
                (appended, appended.saturating_sub(s.unsynced_records()))
            })
            .unwrap_or((0, 0));
        let thread = CohortThread {
            cohort,
            rx: Arc::clone(&mailbox),
            router: self.router.clone(),
            epoch: self.epoch,
            timers: BinaryHeap::new(),
            timer_seq: 0,
            replies: BTreeMap::new(),
            req_t0: BTreeMap::new(),
            stable: stable.clone(),
            store,
            observations: self.obs_tx.clone(),
            metrics: self.metrics.clone(),
            progress: self.progress.clone(),
            recorder: self.recorder.clone(),
            deferred: Vec::new(),
            appended,
            synced_upto,
            releasing: false,
            flusher_wake,
            dirty_since: None,
            group_max_delay,
            store_failed: false,
        };
        let join = std::thread::Builder::new()
            .name(format!("cohort-{mid}"))
            .spawn(move || thread.run())
            // vsr-lint: allow(expect_used, reason = "thread spawn failure at cluster construction is unrecoverable")
            .expect("spawn cohort thread");
        self.handles.lock().insert(mid, Handle { tx: mailbox, join, stable });
    }

    /// Submit a transaction to `client_group` and block until an outcome
    /// arrives, trying each member until one acts as primary (after a
    /// crash it can take a view change for a new primary to emerge).
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownGroup`] for an unknown group;
    /// [`SubmitError::Timeout`] when no member produces an outcome.
    pub fn submit(
        &self,
        client_group: GroupId,
        ops: Vec<CallOp>,
    ) -> Result<TxnOutcome, SubmitError> {
        let config =
            self.peers.get(&client_group).ok_or(SubmitError::UnknownGroup(client_group))?;
        let members: Vec<Mid> = config.members().to_vec();
        self.metrics.lock().submitted += 1;
        let t0 = Instant::now();
        let result = self.submit_rounds(&members, &ops);
        {
            let mut m = self.metrics.lock();
            match &result {
                Ok(TxnOutcome::Committed { .. }) => {
                    m.committed += 1;
                    // Microseconds, not milliseconds: in-memory commits
                    // finish well under 1 ms, and whole-ms samples made
                    // every A6 percentile table read 0.
                    m.commit_latency.record(t0.elapsed().as_micros() as u64);
                }
                Ok(TxnOutcome::Aborted { .. }) => m.aborted += 1,
                Ok(TxnOutcome::Unresolved) | Err(_) => m.unresolved += 1,
            }
        }
        result
    }

    /// The retry loop behind [`submit`](Cluster::submit): try each
    /// member until one acts as primary, within one *total* wall-clock
    /// budget ([`ClusterBuilder::submit_deadline`]). An earlier version
    /// granted the full deadline to every member of every round, so a
    /// wedged cluster could block a submitter for `members × 20 ×
    /// deadline` (minutes); now the budget bounds the whole attempt and
    /// [`SubmitError::Timeout`] reports how many rounds actually ran.
    /// Between rounds, sleep on the view-progress condvar so a
    /// completing view change wakes the submitter immediately instead
    /// of costing a full poll interval.
    fn submit_rounds(&self, members: &[Mid], ops: &[CallOp]) -> Result<TxnOutcome, SubmitError> {
        let deadline = Instant::now() + self.submit_deadline;
        // One member may not monopolize the budget: cap each wait so
        // several members (and rounds) get a turn even when the first
        // contact never answers.
        let slice = (self.submit_deadline / 4).max(Duration::from_millis(50));
        let mut rounds = 0;
        let mut last_peer = None;
        loop {
            let epoch = self.progress.current();
            rounds += 1;
            for &mid in members {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(SubmitError::Timeout { rounds, last_peer });
                }
                let tx = { self.handles.lock().get(&mid).map(|h| h.tx.clone()) };
                let Some(tx) = tx else { continue };
                let req_id = {
                    let mut n = self.next_req.lock();
                    *n += 1;
                    *n
                };
                let (reply_tx, reply_rx) = bounded(1);
                // Critical: a request must never be evicted by message
                // backpressure (the client would silently lose it).
                if !tx.push_critical(Inbox::Request { req_id, ops: ops.to_vec(), reply: reply_tx })
                {
                    continue; // mailbox closed: the cohort is stopping
                }
                match reply_rx.recv_timeout(remaining.min(slice)) {
                    Ok(TxnOutcome::Aborted {
                        reason: vsr_core::cohort::AbortReason::NotPrimary,
                    }) => continue,
                    Ok(outcome) => return Ok(outcome),
                    Err(_) => {
                        // This member accepted the request but produced
                        // no outcome inside its slice — remember it as
                        // the cohort to investigate first.
                        last_peer = Some(mid);
                        continue;
                    }
                }
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(SubmitError::Timeout { rounds, last_peer });
            }
            self.progress.wait_past(epoch, remaining.min(Duration::from_millis(100)));
        }
    }

    /// A snapshot of the cluster's aggregate metrics — the same counter
    /// set the simulator's `World::metrics` reports, with commit
    /// latencies in microseconds instead of ticks. Transport counters
    /// (networked clusters) fold in live endpoints plus the accumulated
    /// totals of endpoints torn down by earlier crashes.
    pub fn metrics(&self) -> Metrics {
        let mut m = self.metrics.lock().clone();
        m.mailbox_drops = self.mailbox_drops.evictions();
        m.mailbox_rejections = self.mailbox_drops.rejections();
        if let Some(net) = &self.net {
            let mut totals = *net.base.lock();
            for endpoint in net.endpoints.lock().values() {
                totals.add(endpoint.metrics().snapshot());
            }
            m.net_frames_sent = totals.frames_sent;
            m.net_frames_recvd = totals.frames_recvd;
            m.net_reconnects = totals.reconnects;
            m.net_crc_rejects = totals.crc_rejects;
            m.net_queue_drops = totals.queue_drops;
            m.net_queue_rejections = totals.queue_rejections;
            m.net_deadline_hits = totals.deadline_hits;
            m.net_frames_coalesced = totals.frames_coalesced;
        }
        m
    }

    /// Drain the structured trace events captured so far. Empty unless
    /// the cluster was built with [`ClusterBuilder::tracing`].
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.recorder.as_ref().map(SharedRecorder::take).unwrap_or_default()
    }

    /// Tear down a cohort's transport endpoint (networked clusters
    /// only), folding its counters into the accumulated base so totals
    /// survive the crash/recover cycle.
    fn teardown_endpoint(&self, mid: Mid) {
        let Some(net) = &self.net else { return };
        self.router.endpoints.write().remove(&mid);
        let endpoint = net.endpoints.lock().remove(&mid);
        if let Some(endpoint) = endpoint {
            endpoint.shutdown();
            net.base.lock().add(endpoint.metrics().snapshot());
        }
    }

    /// Crash a cohort: its thread stops, its endpoint (if networked)
    /// closes — peers see resets and begin reconnect backoff — and its
    /// mail is dropped. The stable viewid is captured for a later
    /// [`recover`](Self::recover).
    pub fn crash(&self, mid: Mid) {
        let handle = self.handles.lock().remove(&mid);
        self.router.routes.write().remove(&mid);
        self.teardown_endpoint(mid);
        if let Some(handle) = handle {
            let stable = *handle.stable.lock();
            handle.tx.push_critical(Inbox::Stop);
            handle.tx.close();
            // vsr-lint: allow(discarded_result, reason = "a crash-simulating thread may panic on its way down; the join result is the point of the crash")
            let _ = handle.join.join();
            self.stable_store.lock().insert(mid, stable);
        }
    }

    /// Recover a crashed cohort. A durable cohort replays its WAL
    /// (possibly rejoining up to date — see `vsr_store`'s safety rule);
    /// otherwise it restarts from its stable viewid alone.
    pub fn recover(&self, mid: Mid) {
        if self.handles.lock().contains_key(&mid) {
            return;
        }
        let Some((group, members, factory)) = self.specs.get(&mid).cloned() else { return };
        self.spawn(group, mid, &members, factory, true);
    }

    /// Disk counters of a durable cohort's store (`None` for the no-disk
    /// design).
    pub fn store_metrics(&self, mid: Mid) -> Option<StoreMetrics> {
        self.stores.lock().get(&mid).map(|s| s.lock().metrics())
    }

    /// Fault injection: make the next `n` fsyncs of `mid`'s store fail
    /// (backends without injection, like [`FileStore`], ignore it).
    /// The cohort thread treats a failed covering fsync as fatal — it
    /// stops without acking anything the fsync was meant to cover —
    /// so after arming this, expect the cohort to need
    /// [`crash`](Cluster::crash)/[`recover`](Cluster::recover).
    pub fn fail_next_syncs(&self, mid: Mid, n: u64) {
        if let Some(store) = self.stores.lock().get(&mid) {
            store.lock().fail_next_syncs(n);
        }
    }

    /// The stable viewid last recorded by a live cohort.
    pub fn stable_viewid(&self, mid: Mid) -> Option<ViewId> {
        self.handles.lock().get(&mid).map(|h| *h.stable.lock())
    }

    /// Drain any observations collected so far (requires
    /// [`ClusterBuilder::observe`]).
    pub fn observations(&self) -> Vec<(Mid, Observation)> {
        std::iter::from_fn(|| self.observations.try_recv()).collect()
    }

    /// Stop every cohort thread (and transport endpoint) and dismantle
    /// the cluster.
    pub fn shutdown(self) {
        let mids: Vec<Mid> = self.handles.lock().keys().copied().collect();
        // Endpoints first: with the sockets gone no new mail arrives,
        // so cohort threads drain and stop promptly.
        for &mid in &mids {
            self.teardown_endpoint(mid);
        }
        let mut handles = self.handles.lock();
        for mid in mids {
            if let Some(handle) = handles.remove(&mid) {
                handle.tx.push_critical(Inbox::Stop);
                handle.tx.close();
                // vsr-lint: allow(discarded_result, reason = "join failure at shutdown means the thread already died; there is nothing left to clean up")
                let _ = handle.join.join();
            }
        }
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("cohorts", &self.handles.lock().len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsr_app::counter;
    use vsr_core::module::NullModule;

    const CLIENT: GroupId = GroupId(1);
    const SERVER: GroupId = GroupId(2);

    fn cluster() -> Cluster {
        ClusterBuilder::new()
            .group(CLIENT, &[Mid(10)], || Box::new(NullModule))
            .group(SERVER, &[Mid(1), Mid(2), Mid(3)], || Box::new(counter::CounterModule))
            .start()
    }

    #[test]
    fn live_commit() {
        let c = cluster();
        let outcome = c.submit(CLIENT, vec![counter::incr(SERVER, 0, 5)]).unwrap();
        match outcome {
            TxnOutcome::Committed { results } => {
                assert_eq!(counter::decode_value(&results[0]).unwrap(), 5);
            }
            other => panic!("expected commit, got {other:?}"),
        }
        c.shutdown();
    }

    #[test]
    fn live_crash_and_failover() {
        let c = cluster();
        assert!(matches!(
            c.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]),
            Ok(TxnOutcome::Committed { .. })
        ));
        // Crash the bootstrap primary of the server group.
        c.crash(Mid(1));
        // A transaction in flight during the view change may abort (the
        // paper's Figure 2 step 3); the application re-runs it. Within a
        // few retries the new view serves it.
        let mut committed_value = None;
        for _ in 0..20 {
            match c.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]) {
                Ok(TxnOutcome::Committed { results }) => {
                    committed_value = Some(counter::decode_value(&results[0]).unwrap());
                    break;
                }
                Ok(_) | Err(_) => std::thread::sleep(Duration::from_millis(100)),
            }
        }
        assert_eq!(committed_value, Some(2), "state survived the failover");
        c.shutdown();
    }

    #[test]
    fn observations_are_collected() {
        let c = ClusterBuilder::new()
            .observe()
            .group(CLIENT, &[Mid(10)], || Box::new(NullModule))
            .group(SERVER, &[Mid(1), Mid(2), Mid(3)], || Box::new(counter::CounterModule))
            .start();
        assert!(matches!(
            c.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]),
            Ok(TxnOutcome::Committed { .. })
        ));
        // Allow backups to apply the commit.
        std::thread::sleep(Duration::from_millis(300));
        let obs = c.observations();
        assert!(
            obs.iter().any(|(_, o)| matches!(o, Observation::TxnCommitted { .. })),
            "commit observed: {obs:?}"
        );
        c.shutdown();
    }

    #[test]
    fn stable_viewid_survives_crash_recover() {
        let c = cluster();
        assert!(c.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]).is_ok());
        // Crash the primary; after failover the group's viewid advances.
        c.crash(Mid(1));
        let mut ok = false;
        for _ in 0..20 {
            if matches!(
                c.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]),
                Ok(TxnOutcome::Committed { .. })
            ) {
                ok = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        assert!(ok);
        let new_viewid = c.stable_viewid(Mid(2)).or(c.stable_viewid(Mid(3))).unwrap();
        // Recover the crashed cohort: it restarts from its *stored*
        // stable viewid and rejoins the (newer) view.
        c.recover(Mid(1));
        let mut rejoined = false;
        for _ in 0..50 {
            std::thread::sleep(Duration::from_millis(100));
            if c.stable_viewid(Mid(1)).is_some_and(|v| v >= new_viewid) {
                rejoined = true;
                break;
            }
        }
        assert!(rejoined, "recovered cohort caught up to {new_viewid}");
        c.shutdown();
    }

    #[test]
    fn durable_cluster_survives_kill_all_and_restart() {
        // The acceptance scenario for the store subsystem: kill an
        // entire 3-cohort group and restart it from its FileStore WALs;
        // the new incarnation must re-form a view retaining every
        // committed transaction.
        let dir = std::env::temp_dir().join(format!("vsr-durable-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let build = || {
            ClusterBuilder::new()
                .durable_files(&dir, FsyncPolicy::EveryRecord)
                .group(CLIENT, &[Mid(10)], || Box::new(NullModule))
                .group(SERVER, &[Mid(1), Mid(2), Mid(3)], || Box::new(counter::CounterModule))
                .start()
        };
        let c = build();
        for _ in 0..3 {
            assert!(matches!(
                c.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]),
                Ok(TxnOutcome::Committed { .. })
            ));
        }
        let metrics = c.store_metrics(Mid(1)).expect("durable cohort has a store");
        assert!(metrics.appends > 0, "primary journaled its records");
        // Kill everything.
        c.shutdown();
        // Restart the whole group from disk: the counter's three
        // increments must still be there, so the next one reads 4.
        let c = build();
        let mut committed_value = None;
        for _ in 0..50 {
            match c.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]) {
                Ok(TxnOutcome::Committed { results }) => {
                    committed_value = Some(counter::decode_value(&results[0]).unwrap());
                    break;
                }
                Ok(_) | Err(_) => std::thread::sleep(Duration::from_millis(100)),
            }
        }
        assert_eq!(committed_value, Some(4), "restarted group kept all committed state");
        c.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_mem_cluster_recovers_crashed_cohort_from_wal() {
        let c = ClusterBuilder::new()
            .durable(FsyncPolicy::EveryRecord)
            .group(CLIENT, &[Mid(10)], || Box::new(NullModule))
            .group(SERVER, &[Mid(1), Mid(2), Mid(3)], || Box::new(counter::CounterModule))
            .start();
        assert!(matches!(
            c.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]),
            Ok(TxnOutcome::Committed { .. })
        ));
        c.crash(Mid(2));
        c.recover(Mid(2));
        // The recovered backup replays its WAL and keeps serving.
        let mut ok = false;
        for _ in 0..20 {
            if matches!(
                c.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]),
                Ok(TxnOutcome::Committed { .. })
            ) {
                ok = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        assert!(ok);
        c.shutdown();
    }

    #[test]
    fn flusher_falls_back_to_inline_flush_when_handle_unavailable() {
        // Regression: a store whose `sync_handle()` fails mid-run (e.g.
        // descriptor-duplicate failure under fd exhaustion) must not
        // strand the batch — cohorts with a flusher never inline-flush
        // themselves, so the flusher degrades to an inline flush under
        // the lock and still posts the covering completion.
        use vsr_core::durable::DurableEvent;
        #[derive(Debug)]
        struct NoHandleStore {
            unsynced: u64,
            appends: u64,
        }
        // `sync_handle` keeps its default `None`: every probe must take
        // the inline path.
        impl Store for NoHandleStore {
            fn persist(&mut self, _event: &DurableEvent) -> Result<(), StoreError> {
                self.appends += 1;
                self.unsynced += 1;
                Ok(())
            }
            fn flush(&mut self) -> Result<(), StoreError> {
                self.unsynced = 0;
                Ok(())
            }
            fn unsynced_records(&self) -> u64 {
                self.unsynced
            }
            fn recover(&mut self, fallback: ViewId) -> RecoveredState {
                RecoveredState::viewid_only(fallback)
            }
            fn policy(&self) -> FsyncPolicy {
                FsyncPolicy::Group { max_batch: 64, max_delay_ms: 5 }
            }
            fn metrics(&self) -> StoreMetrics {
                StoreMetrics { appends: self.appends, ..StoreMetrics::default() }
            }
        }
        let store: SharedStore =
            Arc::new(Mutex::new(Box::new(NoHandleStore { unsynced: 7, appends: 7 })));
        let mailbox: Mailbox = BoundedQueue::new(8, DropCounters::new());
        let (wake_tx, wake_rx) = bounded::<()>(1);
        wake_tx.send(()).unwrap();
        drop(wake_tx); // one wake; the closed channel then stops the loop
        flusher_loop(&store, &mailbox, &wake_rx);
        assert_eq!(store.lock().unsynced_records(), 0, "inline fallback flushed the batch");
        assert!(
            matches!(mailbox.try_recv(), Some(Inbox::Synced { upto: 7, covered: 7 })),
            "the inline fallback posts the covering completion"
        );
    }

    #[test]
    fn progress_wakeup_is_prompt() {
        // The submit retry loop sleeps on this condvar between rounds;
        // a bump must wake it long before the timeout expires.
        let progress = Arc::new(Progress::default());
        let seen = progress.current();
        let bumper = progress.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            bumper.bump();
        });
        let t0 = Instant::now();
        progress.wait_past(seen, Duration::from_secs(5));
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "woken by the bump, not the timeout: waited {:?}",
            t0.elapsed()
        );
        handle.join().unwrap();
    }

    #[test]
    fn failover_submit_latency_is_bounded() {
        // Regression for the busy-poll submit loop: after a primary
        // crash, the retry rounds sleep on the view-progress condvar
        // (waking as soon as the new view forms) instead of serializing
        // unconditional 100ms naps, so a full failover stays well
        // inside the old worst case of 20 rounds x 100ms on top of the
        // view change itself.
        let c = cluster();
        assert!(matches!(
            c.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]),
            Ok(TxnOutcome::Committed { .. })
        ));
        c.crash(Mid(1));
        let t0 = Instant::now();
        let mut committed = false;
        for _ in 0..20 {
            if matches!(
                c.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]),
                Ok(TxnOutcome::Committed { .. })
            ) {
                committed = true;
                break;
            }
        }
        assert!(committed, "failover never completed");
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "failover took {:?}, submit loop is not being woken",
            t0.elapsed()
        );
        c.shutdown();
    }

    #[test]
    fn metrics_and_traces_are_collected() {
        let c = ClusterBuilder::new()
            .tracing()
            .group(CLIENT, &[Mid(10)], || Box::new(NullModule))
            .group(SERVER, &[Mid(1), Mid(2), Mid(3)], || Box::new(counter::CounterModule))
            .start();
        for _ in 0..3 {
            assert!(matches!(
                c.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]),
                Ok(TxnOutcome::Committed { .. })
            ));
        }
        let m = c.metrics();
        assert_eq!(m.submitted, 3);
        assert_eq!(m.committed, 3);
        assert_eq!(m.commit_latency.count(), 3);
        assert!(m.foreground_msgs > 0, "request/response traffic counted");
        assert!(m.total_msgs() >= m.foreground_msgs);
        let events = c.trace_events();
        assert!(
            events.iter().any(|e| matches!(e.kind, TraceKind::Send { .. })),
            "sends traced: {} events",
            events.len()
        );
        assert!(
            events.iter().any(|e| matches!(e.kind, TraceKind::Recv { .. })),
            "deliveries traced"
        );
        c.shutdown();
    }

    #[test]
    fn unknown_group_errors() {
        let c = cluster();
        assert_eq!(
            c.submit(GroupId(99), vec![]).unwrap_err(),
            SubmitError::UnknownGroup(GroupId(99))
        );
        c.shutdown();
    }
}
