//! Snapshot transfer machinery: content-addressed digests, bounded
//! CRC-checked chunking, and stop-and-wait reassembly.
//!
//! This crate is deliberately a *leaf*: it knows nothing about views,
//! histories, or group state. A snapshot here is an opaque byte string
//! produced by `vsr-core`'s codec; this crate answers three questions
//! about it:
//!
//! 1. **Identity** — [`SnapDigest::of`] names the bytes, so a cohort can
//!    recognize "I already have that snapshot" without transferring it,
//!    and a fetcher can prove it received what was promised.
//! 2. **Division** — [`chunk`] slices the bytes into bounded pieces,
//!    each carrying a CRC32C so a single corrupted transfer is detected
//!    per-chunk (and only that chunk is re-requested), not after
//!    shipping the whole state.
//! 3. **Reassembly** — [`Assembler`] accepts chunks strictly in order
//!    (stop-and-wait keeps the protocol trivially flow-controlled and
//!    deterministic), rejects damaged or misdirected pieces, and
//!    verifies the end-to-end digest before releasing the bytes.
//!
//! Everything is pure and deterministic; the transport (simulated
//! router or TCP frames) and the retry policy belong to the caller.

use std::fmt;

// ---------------------------------------------------------------------
// digest
// ---------------------------------------------------------------------

/// A 128-bit content digest naming one snapshot.
///
/// FNV-1a in its 128-bit form: not cryptographic, but an integrity
/// check against transport and disk corruption in the same spirit as
/// the WAL's CRC framing — and, unlike a CRC, wide enough that two
/// distinct snapshots alive in one group colliding is not a practical
/// concern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SnapDigest(pub [u8; 16]);

/// FNV-1a 128-bit offset basis.
const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime.
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

impl SnapDigest {
    /// Digest a byte string.
    pub fn of(bytes: &[u8]) -> Self {
        let mut h = FNV128_OFFSET;
        for &b in bytes {
            h ^= u128::from(b);
            h = h.wrapping_mul(FNV128_PRIME);
        }
        // Fold the length in so a run of trailing zeros cannot be
        // silently dropped or extended by a buggy transport.
        h ^= bytes.len() as u128;
        h = h.wrapping_mul(FNV128_PRIME);
        SnapDigest(h.to_le_bytes())
    }
}

impl fmt::Display for SnapDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// crc32c
// ---------------------------------------------------------------------

/// CRC32C (Castagnoli) lookup table, built at compile time — same
/// idiom as the WAL's framing table.
const fn crc32c_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0x82f6_3b78 } else { crc >> 1 };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32C of a byte string — the same polynomial the TCP transport's
/// frames use, computed independently here so the crate stays a leaf.
pub fn crc32c(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32c_table();
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------
// chunking
// ---------------------------------------------------------------------

/// Default chunk payload bound: large enough to amortize per-message
/// overhead, small enough that a chunk fits comfortably inside one
/// transport frame (vsr-net caps frames at 16 MiB).
pub const DEFAULT_CHUNK_BYTES: usize = 64 * 1024;

/// One outbound piece of a snapshot, ready to be placed in a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkOut<'a> {
    /// Chunk position, `0..total`.
    pub index: u32,
    /// Total number of chunks in the snapshot.
    pub total: u32,
    /// CRC32C of `payload`.
    pub crc: u32,
    /// The bytes of this chunk.
    pub payload: &'a [u8],
}

/// Number of chunks a byte string of length `len` divides into under a
/// `chunk_bytes` bound. Zero-length snapshots still occupy one (empty)
/// chunk so the transfer protocol has no special case.
pub fn chunk_count(len: usize, chunk_bytes: usize) -> u32 {
    assert!(chunk_bytes > 0, "chunk size must be positive");
    if len == 0 {
        return 1;
    }
    (len.div_ceil(chunk_bytes)) as u32
}

/// Slice chunk `index` out of `bytes`. Returns `None` when `index` is
/// out of range — a stale or hostile request, not a panic.
pub fn chunk(bytes: &[u8], index: u32, chunk_bytes: usize) -> Option<ChunkOut<'_>> {
    let total = chunk_count(bytes.len(), chunk_bytes);
    if index >= total {
        return None;
    }
    let start = index as usize * chunk_bytes;
    let end = (start + chunk_bytes).min(bytes.len());
    let payload = &bytes[start..end];
    Some(ChunkOut { index, total, crc: crc32c(payload), payload })
}

// ---------------------------------------------------------------------
// reassembly
// ---------------------------------------------------------------------

/// Why an incoming chunk was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkError {
    /// The payload's CRC32C did not match the advertised CRC: the chunk
    /// was corrupted in flight. Re-request the same index.
    Corrupt,
    /// The chunk's index is not the one awaited (stop-and-wait accepts
    /// strictly in order; duplicates and strays are dropped).
    WrongIndex,
    /// The advertised total disagrees with earlier chunks of this
    /// transfer, or is zero.
    BadTotal,
    /// A non-final chunk's payload size disagrees with the transfer's
    /// chunk size, or a chunk overruns the declared total.
    BadSize,
    /// All chunks arrived but the assembled bytes do not hash to the
    /// digest being fetched. The assembler resets to the start.
    DigestMismatch,
}

impl fmt::Display for ChunkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ChunkError::Corrupt => "chunk payload failed CRC",
            ChunkError::WrongIndex => "chunk index out of order",
            ChunkError::BadTotal => "chunk total inconsistent",
            ChunkError::BadSize => "chunk payload size inconsistent",
            ChunkError::DigestMismatch => "assembled bytes do not match digest",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ChunkError {}

/// What [`Assembler::accept`] produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Progress {
    /// The chunk was accepted; request this index next.
    Need(u32),
    /// Every chunk arrived and the digest verified: the snapshot bytes.
    Complete(Vec<u8>),
}

/// Reassembles one snapshot from in-order chunks.
///
/// The assembler is strict: out-of-order, duplicated, corrupt, or
/// inconsistently-sized chunks are rejected with a [`ChunkError`] and
/// do not advance the transfer, so a lossy or adversarial network can
/// delay completion but never corrupt it.
#[derive(Debug, Clone)]
pub struct Assembler {
    digest: SnapDigest,
    chunk_bytes: usize,
    total: Option<u32>,
    buf: Vec<u8>,
    next: u32,
}

impl Assembler {
    /// Start assembling the snapshot named `digest`, transferred in
    /// chunks of at most `chunk_bytes` bytes.
    pub fn new(digest: SnapDigest, chunk_bytes: usize) -> Self {
        assert!(chunk_bytes > 0, "chunk size must be positive");
        Assembler { digest, chunk_bytes, total: None, buf: Vec::new(), next: 0 }
    }

    /// The digest this assembler is fetching.
    pub fn digest(&self) -> SnapDigest {
        self.digest
    }

    /// The index the assembler wants next (what to put in the next
    /// chunk request).
    pub fn next_index(&self) -> u32 {
        self.next
    }

    /// Chunks accepted so far.
    pub fn received(&self) -> u32 {
        self.next
    }

    /// Offer a chunk. On success returns either the next index to
    /// request or the complete, digest-verified bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`ChunkError`] describing why the chunk was rejected;
    /// the assembler's state is unchanged except for
    /// [`ChunkError::DigestMismatch`], which resets the transfer to the
    /// beginning (the source served bytes that do not hash to the
    /// promised digest, so nothing received can be trusted).
    pub fn accept(
        &mut self,
        index: u32,
        total: u32,
        crc: u32,
        payload: &[u8],
    ) -> Result<Progress, ChunkError> {
        if total == 0 {
            return Err(ChunkError::BadTotal);
        }
        if let Some(t) = self.total {
            if t != total {
                return Err(ChunkError::BadTotal);
            }
        }
        if index != self.next {
            return Err(ChunkError::WrongIndex);
        }
        if index >= total {
            return Err(ChunkError::BadTotal);
        }
        // Every chunk but the last must be exactly chunk_bytes; the
        // last must fit within it (and only a sole chunk may be empty).
        let last = index + 1 == total;
        if (!last && payload.len() != self.chunk_bytes)
            || payload.len() > self.chunk_bytes
            || (last && total > 1 && payload.is_empty())
        {
            return Err(ChunkError::BadSize);
        }
        if crc32c(payload) != crc {
            return Err(ChunkError::Corrupt);
        }
        self.total = Some(total);
        self.buf.extend_from_slice(payload);
        self.next += 1;
        if last {
            if SnapDigest::of(&self.buf) != self.digest {
                self.buf.clear();
                self.next = 0;
                self.total = None;
                return Err(ChunkError::DigestMismatch);
            }
            return Ok(Progress::Complete(std::mem::take(&mut self.buf)));
        }
        Ok(Progress::Need(self.next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 % 251) as u8).collect()
    }

    fn transfer(bytes: &[u8], chunk_bytes: usize) -> Vec<u8> {
        let digest = SnapDigest::of(bytes);
        let mut asm = Assembler::new(digest, chunk_bytes);
        loop {
            let c = chunk(bytes, asm.next_index(), chunk_bytes).expect("index in range");
            match asm.accept(c.index, c.total, c.crc, c.payload).expect("clean chunk accepted") {
                Progress::Need(_) => {}
                Progress::Complete(out) => return out,
            }
        }
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let a = SnapDigest::of(b"hello");
        assert_eq!(a, SnapDigest::of(b"hello"));
        assert_ne!(a, SnapDigest::of(b"hellp"));
        assert_ne!(SnapDigest::of(b""), SnapDigest::of(b"\0"));
        assert_ne!(SnapDigest::of(b"\0"), SnapDigest::of(b"\0\0"));
        assert_eq!(format!("{a}").len(), 32);
    }

    #[test]
    fn crc32c_known_vector() {
        // RFC 3720 test vector: CRC32C of "123456789".
        assert_eq!(crc32c(b"123456789"), 0xe306_9283);
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn chunk_count_boundaries() {
        assert_eq!(chunk_count(0, 4), 1);
        assert_eq!(chunk_count(1, 4), 1);
        assert_eq!(chunk_count(4, 4), 1);
        assert_eq!(chunk_count(5, 4), 2);
        assert_eq!(chunk_count(8, 4), 2);
        assert_eq!(chunk_count(9, 4), 3);
    }

    #[test]
    fn chunk_out_of_range_is_none() {
        let b = blob(10);
        assert!(chunk(&b, 3, 4).is_none());
        assert!(chunk(&b, 2, 4).is_some());
    }

    #[test]
    fn roundtrip_various_sizes() {
        for n in [0, 1, 3, 4, 5, 8, 1000, 64 * 1024 + 1] {
            let b = blob(n);
            assert_eq!(transfer(&b, 4 * 1024), b, "size {n}");
            if n < 100 {
                assert_eq!(transfer(&b, 4), b, "size {n} tiny chunks");
            }
        }
    }

    #[test]
    fn empty_snapshot_is_one_empty_chunk() {
        let c = chunk(&[], 0, 8).expect("empty blob still has chunk 0");
        assert_eq!((c.index, c.total), (0, 1));
        assert!(c.payload.is_empty());
        assert_eq!(transfer(&[], 8), Vec::<u8>::new());
    }

    #[test]
    fn corrupt_chunk_rejected_and_recoverable() {
        let b = blob(20);
        let digest = SnapDigest::of(&b);
        let mut asm = Assembler::new(digest, 8);
        let c = chunk(&b, 0, 8).expect("in range");
        let mut bad = c.payload.to_vec();
        bad[3] ^= 0x40;
        assert_eq!(asm.accept(c.index, c.total, c.crc, &bad), Err(ChunkError::Corrupt));
        // The transfer is not poisoned: the clean chunk still lands.
        assert_eq!(asm.accept(c.index, c.total, c.crc, c.payload), Ok(Progress::Need(1)));
    }

    #[test]
    fn out_of_order_and_duplicate_rejected() {
        let b = blob(20);
        let mut asm = Assembler::new(SnapDigest::of(&b), 8);
        let c1 = chunk(&b, 1, 8).expect("in range");
        assert_eq!(asm.accept(c1.index, c1.total, c1.crc, c1.payload), Err(ChunkError::WrongIndex));
        let c0 = chunk(&b, 0, 8).expect("in range");
        assert_eq!(asm.accept(c0.index, c0.total, c0.crc, c0.payload), Ok(Progress::Need(1)));
        assert_eq!(asm.accept(c0.index, c0.total, c0.crc, c0.payload), Err(ChunkError::WrongIndex));
    }

    #[test]
    fn inconsistent_total_and_size_rejected() {
        let b = blob(20);
        let mut asm = Assembler::new(SnapDigest::of(&b), 8);
        let c0 = chunk(&b, 0, 8).expect("in range");
        assert_eq!(asm.accept(c0.index, 0, c0.crc, c0.payload), Err(ChunkError::BadTotal));
        assert_eq!(asm.accept(c0.index, c0.total, c0.crc, c0.payload), Ok(Progress::Need(1)));
        let c1 = chunk(&b, 1, 8).expect("in range");
        assert_eq!(asm.accept(c1.index, 9, c1.crc, c1.payload), Err(ChunkError::BadTotal));
        // A short non-final payload (with a valid CRC of the short
        // bytes) must be rejected by size, not accepted.
        let short = &c1.payload[..4];
        assert_eq!(asm.accept(c1.index, c1.total, crc32c(short), short), Err(ChunkError::BadSize));
    }

    #[test]
    fn digest_mismatch_resets_transfer() {
        let b = blob(20);
        let other = blob(21);
        // Fetch *b's* digest but serve bytes of `other`: per-chunk CRCs
        // pass, the end-to-end digest must not.
        let mut asm = Assembler::new(SnapDigest::of(&b), 8);
        let mut progress = 0;
        loop {
            let c = chunk(&other, progress, 8).expect("in range");
            match asm.accept(c.index, c.total, c.crc, c.payload) {
                Ok(Progress::Need(next)) => progress = next,
                Ok(Progress::Complete(_)) => panic!("wrong bytes must not complete"),
                Err(e) => {
                    assert_eq!(e, ChunkError::DigestMismatch);
                    break;
                }
            }
        }
        // Reset: the assembler starts over and a clean transfer works.
        assert_eq!(asm.next_index(), 0);
        let done = loop {
            let c = chunk(&b, asm.next_index(), 8).expect("in range");
            match asm.accept(c.index, c.total, c.crc, c.payload).expect("clean chunk") {
                Progress::Need(_) => {}
                Progress::Complete(out) => break out,
            }
        };
        assert_eq!(done, b);
    }
}
