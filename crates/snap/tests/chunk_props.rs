//! Property tests for snapshot chunking and reassembly, mirroring
//! `crates/store/tests/wal_props.rs` (durable codec) and
//! `crates/net/tests/codec_props.rs` (transport codec).
//!
//! Invariants under arbitrary blobs, chunk sizes, and damage:
//!
//! 1. **Round trip** — any blob survives chunk → assemble bit-for-bit,
//!    for any chunk size.
//! 2. **Truncation fails** — a transfer missing its tail never
//!    completes (the assembler keeps asking for the next index).
//! 3. **Bit flips never deliver** — flipping any bit of any chunk's
//!    payload is rejected by the CRC; flipping payload *and* fixing the
//!    CRC is still caught by the end-to-end digest.

use proptest::prelude::*;
use vsr_snap::{chunk, chunk_count, crc32c, Assembler, ChunkError, Progress, SnapDigest};

fn run_transfer(bytes: &[u8], chunk_bytes: usize) -> Vec<u8> {
    let mut asm = Assembler::new(SnapDigest::of(bytes), chunk_bytes);
    loop {
        let c = chunk(bytes, asm.next_index(), chunk_bytes).expect("index in range");
        match asm.accept(c.index, c.total, c.crc, c.payload).expect("clean chunk accepted") {
            Progress::Need(_) => {}
            Progress::Complete(out) => return out,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn any_blob_roundtrips(
        blob in prop::collection::vec(any::<u8>(), 0..4096),
        chunk_bytes in 1usize..512,
    ) {
        prop_assert_eq!(run_transfer(&blob, chunk_bytes), blob);
    }

    #[test]
    fn chunk_count_matches_enumeration(
        len in 0usize..10_000,
        chunk_bytes in 1usize..512,
    ) {
        let blob = vec![0xA5u8; len];
        let total = chunk_count(len, chunk_bytes);
        for i in 0..total {
            prop_assert!(chunk(&blob, i, chunk_bytes).is_some());
        }
        prop_assert!(chunk(&blob, total, chunk_bytes).is_none());
        let bytes: usize = (0..total)
            .map(|i| chunk(&blob, i, chunk_bytes).expect("in range").payload.len())
            .sum();
        prop_assert_eq!(bytes, len);
    }

    #[test]
    fn truncated_transfer_never_completes(
        blob in prop::collection::vec(any::<u8>(), 64..2048),
        chunk_bytes in 1usize..64,
    ) {
        let total = chunk_count(blob.len(), chunk_bytes);
        prop_assume!(total >= 2);
        let mut asm = Assembler::new(SnapDigest::of(&blob), chunk_bytes);
        // Deliver every chunk but the last; the transfer must still be
        // incomplete and waiting on exactly the missing index.
        for i in 0..total - 1 {
            let c = chunk(&blob, i, chunk_bytes).expect("in range");
            match asm.accept(c.index, c.total, c.crc, c.payload).expect("clean chunk") {
                Progress::Need(next) => prop_assert_eq!(next, i + 1),
                Progress::Complete(_) => prop_assert!(false, "completed without final chunk"),
            }
        }
        prop_assert_eq!(asm.next_index(), total - 1);
    }

    #[test]
    fn bit_flipped_chunk_is_rejected_by_crc(
        blob in prop::collection::vec(any::<u8>(), 1..2048),
        chunk_bytes in 1usize..256,
        pick in any::<u64>(),
        bit in any::<u64>(),
    ) {
        let total = chunk_count(blob.len(), chunk_bytes);
        let target = (pick % u64::from(total)) as u32;
        // Drive the assembler up to the target chunk, then damage it.
        let mut asm = Assembler::new(SnapDigest::of(&blob), chunk_bytes);
        for i in 0..target {
            let c = chunk(&blob, i, chunk_bytes).expect("in range");
            prop_assert_eq!(
                asm.accept(c.index, c.total, c.crc, c.payload).expect("clean chunk"),
                Progress::Need(i + 1)
            );
        }
        let c = chunk(&blob, target, chunk_bytes).expect("in range");
        prop_assume!(!c.payload.is_empty());
        let mut bad = c.payload.to_vec();
        let flip = (bit % (bad.len() as u64 * 8)) as usize;
        bad[flip / 8] ^= 1 << (flip % 8);
        prop_assert_eq!(asm.accept(c.index, c.total, c.crc, &bad), Err(ChunkError::Corrupt));
        // The clean chunk still lands afterwards: corruption is not
        // sticky.
        prop_assert!(asm.accept(c.index, c.total, c.crc, c.payload).is_ok());
    }

    #[test]
    fn crc_fixed_flip_is_caught_by_digest(
        blob in prop::collection::vec(any::<u8>(), 1..1024),
        chunk_bytes in 1usize..128,
        pick in any::<u64>(),
        bit in any::<u64>(),
    ) {
        // An adversarial relay flips a payload bit and recomputes the
        // per-chunk CRC. Per-chunk checks pass; the end-to-end digest
        // must reject the assembled bytes (and reset the transfer).
        let total = chunk_count(blob.len(), chunk_bytes);
        let target = (pick % u64::from(total)) as u32;
        let mut asm = Assembler::new(SnapDigest::of(&blob), chunk_bytes);
        let mut completed = false;
        for i in 0..total {
            let c = chunk(&blob, i, chunk_bytes).expect("in range");
            let (crc, payload) = if i == target && !c.payload.is_empty() {
                let mut bad = c.payload.to_vec();
                let flip = (bit % (bad.len() as u64 * 8)) as usize;
                bad[flip / 8] ^= 1 << (flip % 8);
                (crc32c(&bad), bad)
            } else {
                (c.crc, c.payload.to_vec())
            };
            match asm.accept(c.index, c.total, crc, &payload) {
                Ok(Progress::Need(_)) => {}
                Ok(Progress::Complete(out)) => {
                    // Only legal if the flip never happened (empty
                    // target payload).
                    prop_assert_eq!(&out, &blob);
                    completed = true;
                }
                Err(e) => {
                    prop_assert_eq!(e, ChunkError::DigestMismatch);
                    prop_assert_eq!(asm.next_index(), 0, "mismatch resets the transfer");
                    completed = true;
                }
            }
        }
        prop_assert!(completed, "transfer neither completed nor detected damage");
    }
}
