//! Structured trace events and the recorder trait that captures them.
//!
//! The sans-I/O core never records anything itself: cohorts emit
//! protocol-level facts through `Effect::Observe`, and the harness that
//! drives them (the sim `World` or the runtime `Cluster`) translates
//! effects, deliveries, and timer fires into [`TraceEvent`]s pushed at
//! an installed [`Recorder`]. Tracing is off unless a recorder is
//! installed, so the hot path pays nothing by default.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use vsr_core::types::{Mid, Viewstamp};

/// One structured trace record: when, who, at what protocol position,
/// and what happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated tick (sim) or milliseconds since cluster start
    /// (runtime).
    pub tick: u64,
    /// The cohort (or agent) the event happened at.
    pub cohort: Mid,
    /// The cohort's current viewstamp, when one is known. Agents and
    /// cohorts without a formed view report `None`.
    pub vs: Option<Viewstamp>,
    /// What happened.
    pub kind: TraceKind,
}

/// The event taxonomy. Names are stable: exporters key on
/// [`TraceKind::name`] and the CI schema check validates against it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A message left this cohort.
    Send {
        /// Destination module.
        to: Mid,
        /// Message name (e.g. `"call"`, `"buffer-send"`).
        msg: &'static str,
    },
    /// A message arrived and was processed at this cohort.
    Recv {
        /// Originating module.
        from: Mid,
        /// Message name.
        msg: &'static str,
    },
    /// A timer fired at this cohort.
    Timer {
        /// Timer name (e.g. `"heartbeat"`, `"call-retry"`).
        timer: &'static str,
    },
    /// The primary registered a force that could not complete
    /// immediately and now waits on the sub-majority watermark.
    ForceBegin,
    /// Pending forces completed: the watermark passed their timestamps.
    ForceFire {
        /// How many pending forces fired together.
        fired: u64,
    },
    /// The cohort moved between view-management states
    /// (active / view manager / underling).
    ViewState {
        /// State before the transition.
        from: &'static str,
        /// State after the transition.
        to: &'static str,
    },
    /// Frames were appended to this cohort's durable log.
    DiskAppend {
        /// Bytes written, framing included.
        bytes: u64,
    },
}

impl TraceKind {
    /// The stable kind name used by exporters and schema checks.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::Send { .. } => "send",
            TraceKind::Recv { .. } => "recv",
            TraceKind::Timer { .. } => "timer",
            TraceKind::ForceBegin => "force-begin",
            TraceKind::ForceFire { .. } => "force-fire",
            TraceKind::ViewState { .. } => "view-state",
            TraceKind::DiskAppend { .. } => "disk-append",
        }
    }
}

/// Sink for trace events. Harnesses install one; everything upstream
/// stays pure.
pub trait Recorder {
    /// Capture one event.
    fn record(&mut self, event: TraceEvent);
}

/// A recorder that drops everything (tracing disabled).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&mut self, _event: TraceEvent) {}
}

/// A clonable, thread-safe recorder backed by a shared vector.
///
/// Clones share the same buffer, so a harness can keep one handle
/// while handing another to worker threads, then drain with
/// [`take`](SharedRecorder::take).
#[derive(Debug, Clone, Default)]
pub struct SharedRecorder {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl SharedRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> SharedRecorder {
        SharedRecorder::default()
    }

    /// Drain all captured events, leaving the buffer empty.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().expect("invariant: recorder mutex not poisoned"))
    }

    /// Copy the captured events without draining.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("invariant: recorder mutex not poisoned").clone()
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("invariant: recorder mutex not poisoned").len()
    }

    /// True if nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Recorder for SharedRecorder {
    fn record(&mut self, event: TraceEvent) {
        self.events.lock().expect("invariant: recorder mutex not poisoned").push(event);
    }
}

/// Render events as a human-readable causal timeline, one line per
/// event: tick, cohort, viewstamp, event kind and detail. Used by
/// nemesis repros to explain the final failing plan.
pub fn render_timeline(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        let vs = match ev.vs {
            Some(vs) => format!("v{}.m{}+{}", vs.id.counter, vs.id.manager.0, vs.ts.0),
            None => "-".to_string(),
        };
        let detail = match ev.kind {
            TraceKind::Send { to, msg } => format!("send {msg} -> {to}"),
            TraceKind::Recv { from, msg } => format!("recv {msg} <- {from}"),
            TraceKind::Timer { timer } => format!("timer {timer}"),
            TraceKind::ForceBegin => "force-begin".to_string(),
            TraceKind::ForceFire { fired } => format!("force-fire x{fired}"),
            TraceKind::ViewState { from, to } => format!("view-state {from} -> {to}"),
            TraceKind::DiskAppend { bytes } => format!("disk-append {bytes}B"),
        };
        let _ =
            writeln!(out, "t={:<8} {:<5} {:<16} {}", ev.tick, ev.cohort.to_string(), vs, detail);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsr_core::types::{Timestamp, ViewId};

    fn sample() -> Vec<TraceEvent> {
        let vs = Viewstamp { id: ViewId { counter: 2, manager: Mid(1) }, ts: Timestamp(7) };
        vec![
            TraceEvent {
                tick: 5,
                cohort: Mid(1),
                vs: Some(vs),
                kind: TraceKind::Send { to: Mid(2), msg: "call" },
            },
            TraceEvent {
                tick: 6,
                cohort: Mid(2),
                vs: None,
                kind: TraceKind::Recv { from: Mid(1), msg: "call" },
            },
            TraceEvent {
                tick: 9,
                cohort: Mid(1),
                vs: Some(vs),
                kind: TraceKind::ViewState { from: "active", to: "view-manager" },
            },
        ]
    }

    #[test]
    fn shared_recorder_accumulates_and_drains() {
        let handle = SharedRecorder::new();
        let mut writer = handle.clone();
        for ev in sample() {
            writer.record(ev);
        }
        assert_eq!(handle.len(), 3);
        let events = handle.take();
        assert_eq!(events.len(), 3);
        assert!(handle.is_empty());
    }

    #[test]
    fn timeline_mentions_tick_cohort_viewstamp_and_kind() {
        let text = render_timeline(&sample());
        assert!(text.contains("t=5"));
        assert!(text.contains("m1"));
        assert!(text.contains("v2.m1+7"));
        assert!(text.contains("send call -> m2"));
        assert!(text.contains("view-state active -> view-manager"));
    }
}
