//! A minimal JSON value, writer, and parser.
//!
//! The exporters need dependency-free JSON. The subset here covers the
//! trace schema exactly: objects with ordered keys, arrays, strings,
//! unsigned integers, booleans, and null. The parser exists so
//! exports can round-trip through a structural check (and so CI can
//! validate the JSONL artifact) without external crates; it rejects
//! anything outside the subset (floats, negative numbers) loudly.

use std::fmt::Write as _;

/// A parsed or constructed JSON value. Object keys keep insertion
/// order, so writing a parsed value reproduces the original bytes for
/// documents this module itself produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An unsigned integer (the only number form the schema uses).
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a `Num`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Serialize a value to compact JSON (no whitespace).
pub fn write_json(value: &JsonValue) -> String {
    let mut out = String::new();
    write_value(&mut out, value);
    out
}

fn write_value(out: &mut String, value: &JsonValue) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(true) => out.push_str("true"),
        JsonValue::Bool(false) => out.push_str("false"),
        JsonValue::Num(n) => {
            let _ = write!(out, "{n}");
        }
        JsonValue::Str(s) => write_string(out, s),
        JsonValue::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        JsonValue::Obj(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON document. Errors carry a byte offset and reason.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']' at {pos:?}, got {other:?}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos:?}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(fields));
                    }
                    other => return Err(format!("expected ',' or '}}' at {pos:?}, got {other:?}")),
                }
            }
        }
        Some(b'0'..=b'9') => {
            let start = *pos;
            while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
            if matches!(bytes.get(*pos), Some(b'.' | b'e' | b'E')) {
                return Err(format!("unsupported non-integer number at offset {start}"));
            }
            let text = std::str::from_utf8(&bytes[start..*pos])
                .map_err(|_| "invalid utf-8 in number".to_string())?;
            text.parse::<u64>().map(JsonValue::Num).map_err(|e| format!("bad number: {e}"))
        }
        Some(other) => Err(format!("unexpected byte {other:?} at offset {pos:?}")),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("expected '{literal}' at offset {pos:?}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos:?}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "invalid utf-8 in string".to_string());
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    other => return Err(format!("unsupported escape {other:?}")),
                }
                *pos += 1;
            }
            Some(&b) => {
                out.push(b);
                *pos += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let src = r#"{"tick":12,"name":"call","vs":null,"flags":[true,false],"nest":{"a":1}}"#;
        let value = parse_json(src).expect("parses");
        assert_eq!(write_json(&value), src);
        assert_eq!(value.get("tick").and_then(JsonValue::as_u64), Some(12));
        assert_eq!(value.get("name").and_then(JsonValue::as_str), Some("call"));
    }

    #[test]
    fn rejects_floats_and_garbage() {
        assert!(parse_json("1.5").is_err());
        assert!(parse_json("{\"a\":").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{} x").is_err());
    }

    #[test]
    fn escapes_roundtrip() {
        let value = JsonValue::Str("a\"b\\c\nd".to_string());
        let text = write_json(&value);
        assert_eq!(parse_json(&text).expect("parses"), value);
    }
}
