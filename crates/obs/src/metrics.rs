//! Aggregate measurements, shared by the simulator and the thread
//! runtime so both report the same counter set.
//!
//! Historically this lived in `vsr-sim` and kept every commit latency
//! in an unbounded `Vec<u64>`; latencies now land in a fixed-size
//! [`Histogram`] (zero allocation per sample), and the runtime
//! `Cluster` populates the same struct the sim `World` does.

use std::collections::BTreeMap;

use crate::hist::Histogram;

/// Counters and samples a harness records from effects and
/// observations.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Messages sent, by message name.
    pub msgs: BTreeMap<&'static str, u64>,
    /// Bytes sent, by message name.
    pub bytes: BTreeMap<&'static str, u64>,
    /// Foreground (request/response) messages.
    pub foreground_msgs: u64,
    /// Foreground (request/response) bytes.
    pub foreground_bytes: u64,
    /// Background replication traffic (buffer streaming, heartbeats).
    pub background_msgs: u64,
    /// View change protocol messages.
    pub view_change_msgs: u64,
    /// Transactions submitted.
    pub submitted: u64,
    /// Transactions committed (client-visible).
    pub committed: u64,
    /// Transactions aborted (client-visible).
    pub aborted: u64,
    /// Transactions whose outcome was unresolved at the client.
    pub unresolved: u64,
    /// Commit latencies in ticks (submission → committed report),
    /// log-bucketed.
    pub commit_latency: Histogram,
    /// Number of view formations observed (one per new primary start).
    pub view_formations: u64,
    /// Prepares processed without waiting for a force (Section 3.7 fast
    /// path).
    pub prepares_fast: u64,
    /// Prepares that had to wait for a force.
    pub prepares_waited: u64,
    /// Forces abandoned (each one triggers a view change).
    pub forces_abandoned: u64,
    /// Messages re-sent by retry timers (call, prepare, commit, view
    /// manager, and agent retries): how hard recovery paths are working.
    pub retransmissions: u64,
    /// Protocol timeout firings (every timer except the periodic
    /// heartbeat and buffer-flush ticks).
    pub timeouts_fired: u64,
    /// View-change attempts started (some fail and are retried; compare
    /// with [`view_formations`](Metrics::view_formations) for the
    /// success rate).
    pub view_change_attempts: u64,
    /// Record-window clones the primary's buffer flush avoided by
    /// sharing one clone per distinct ack watermark.
    pub buffer_clones_saved: u64,
    /// WAL frames appended across all disks (durable configurations
    /// only; zero under the paper's no-disk design).
    pub disk_appends: u64,
    /// Fsyncs issued across all disks.
    pub disk_fsyncs: u64,
    /// Bytes written across all disks, framing included.
    pub disk_bytes_written: u64,
    /// Checkpoint frames written across all disks.
    pub checkpoints_taken: u64,
    /// Log records replayed by recovering cohorts (counts only complete
    /// recoveries; a paper-minimum viewid-only recovery replays none).
    pub records_replayed: u64,
    /// Snapshots materialized (boundary snapshots plus ad-hoc snapshots
    /// taken when a new primary starts a view without a fresh one).
    pub snapshots_taken: u64,
    /// Snapshots installed after a chunked state transfer. Digest-match
    /// and already-held installs cost nothing and are not counted.
    pub snapshots_installed: u64,
    /// Snapshot chunks served (`chunk` messages sent).
    pub snapshot_chunks_sent: u64,
    /// Snapshot chunks received by fetching cohorts.
    pub snapshot_chunks_received: u64,
    /// Chunk requests re-sent because the previous request went
    /// unanswered.
    pub snapshot_chunk_retries: u64,
    /// Chunks dropped for a CRC mismatch, or whole transfers restarted
    /// for an assembled-digest mismatch.
    pub snapshot_chunks_corrupt: u64,
    /// `Done` transaction status entries garbage-collected out of the
    /// group state (one per retired aid; bounds status-map growth).
    pub statuses_gced: u64,
    /// Chunked state-transfer durations in ticks (first chunk request →
    /// snapshot installed), log-bucketed.
    pub transfer_ticks: Histogram,
    /// In-process mail dropped by a full bounded cohort mailbox or
    /// observation drain (drop-oldest overflow policy; zero while
    /// consumers keep up).
    pub mailbox_drops: u64,
    /// Message frames written to peer sockets (networked transport
    /// only; zero for in-process and simulated runs).
    pub net_frames_sent: u64,
    /// Message frames received and decoded from peer sockets.
    pub net_frames_recvd: u64,
    /// Socket (re)connection attempts made by peer links after an
    /// established connection failed.
    pub net_reconnects: u64,
    /// Inbound frames rejected by the CRC or the message decoder; each
    /// one also drops its connection, because a corrupt byte stream
    /// cannot be resynchronized.
    pub net_crc_rejects: u64,
    /// Outbound frames dropped by a full per-peer bounded queue
    /// (drop-oldest overflow policy).
    pub net_queue_drops: u64,
    /// Read/write deadline expiries on peer sockets (gray-slow peers
    /// degrade to timeouts instead of wedging the cohort thread).
    pub net_deadline_hits: u64,
    /// In-process mail *refused* by a bounded mailbox full of critical
    /// entries (lost-new, vs `mailbox_drops`' lost-old evictions).
    pub mailbox_rejections: u64,
    /// Outbound frames refused by a per-peer queue full of critical
    /// entries (lost-new, vs `net_queue_drops`' lost-old evictions).
    pub net_queue_rejections: u64,
    /// Outbound frames that rode an already-scheduled vectored write
    /// instead of costing their own writer wakeup (a writer pass that
    /// drains n frames in one write counts n-1 here).
    pub net_frames_coalesced: u64,
    /// Covering fsyncs issued by group commit: one sync making a whole
    /// batch of appended records durable at once.
    pub group_fsyncs: u64,
    /// Records made durable per covering group-commit fsync,
    /// log-bucketed (batch size distribution).
    pub records_per_fsync: Histogram,
    /// Coordinator transactions in flight on the primary, sampled at
    /// each handler pass, log-bucketed (pipelining depth distribution).
    pub inflight_txns: Histogram,
    /// Read-only transactions served from the primary's local state
    /// under a read lease (no event records, no force, no disk).
    pub leased_reads: u64,
    /// Lease grants that renewed an already-live grant (steady-state
    /// piggybacked renewals; first-time grants are not counted).
    pub lease_renewals: u64,
    /// Read-only submissions that reached a leased primary but fell back
    /// to the coordinated path (write access, lock conflict, or
    /// application error).
    pub lease_read_rejected: u64,
    /// View changes whose new primary had to sit out the skew-adjusted
    /// maximum lease before accepting writes (no explicit revocation
    /// from the previous primary covered the previous view).
    pub lease_waits_on_view_change: u64,
    /// Leased-read latencies (submission → local reply), log-bucketed.
    /// Ticks in the simulator, microseconds in the thread runtime.
    pub lease_read_ticks: Histogram,
}

impl Metrics {
    /// Total messages sent.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.values().sum()
    }

    /// Total bytes sent.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.values().sum()
    }

    /// Mean commit latency in ticks, if any transaction committed.
    /// Exact: the histogram tracks the sample sum alongside buckets.
    pub fn mean_commit_latency(&self) -> Option<f64> {
        self.commit_latency.mean()
    }

    /// A latency percentile (0.0–1.0) by ceil nearest-rank, if any
    /// transaction committed.
    ///
    /// The old vec-based computation rounded `(len-1)·p` to nearest,
    /// which made p99 of 100 samples report the *second*-largest value
    /// (index 98 of 99). Ceil nearest-rank (`ceil(len·p)`, 1-based)
    /// reports the 99th.
    pub fn latency_percentile(&self, p: f64) -> Option<u64> {
        self.commit_latency.percentile(p)
    }

    /// Messages per committed transaction (foreground + background).
    pub fn msgs_per_commit(&self) -> Option<f64> {
        if self.committed == 0 {
            return None;
        }
        Some(self.total_msgs() as f64 / self.committed as f64)
    }

    /// Fraction of prepares that took the no-wait fast path.
    pub fn prepare_fast_fraction(&self) -> Option<f64> {
        let total = self.prepares_fast + self.prepares_waited;
        if total == 0 {
            return None;
        }
        Some(self.prepares_fast as f64 / total as f64)
    }

    /// Every scalar counter with its stable name, in declaration
    /// order. The sim-vs-runtime parity test keys on these names, so
    /// both harnesses expose exactly this set.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("foreground_msgs", self.foreground_msgs),
            ("foreground_bytes", self.foreground_bytes),
            ("background_msgs", self.background_msgs),
            ("view_change_msgs", self.view_change_msgs),
            ("submitted", self.submitted),
            ("committed", self.committed),
            ("aborted", self.aborted),
            ("unresolved", self.unresolved),
            ("commit_latency_count", self.commit_latency.count()),
            ("view_formations", self.view_formations),
            ("prepares_fast", self.prepares_fast),
            ("prepares_waited", self.prepares_waited),
            ("forces_abandoned", self.forces_abandoned),
            ("retransmissions", self.retransmissions),
            ("timeouts_fired", self.timeouts_fired),
            ("view_change_attempts", self.view_change_attempts),
            ("buffer_clones_saved", self.buffer_clones_saved),
            ("disk_appends", self.disk_appends),
            ("disk_fsyncs", self.disk_fsyncs),
            ("disk_bytes_written", self.disk_bytes_written),
            ("checkpoints_taken", self.checkpoints_taken),
            ("records_replayed", self.records_replayed),
            ("snapshots_taken", self.snapshots_taken),
            ("snapshots_installed", self.snapshots_installed),
            ("snapshot_chunks_sent", self.snapshot_chunks_sent),
            ("snapshot_chunks_received", self.snapshot_chunks_received),
            ("snapshot_chunk_retries", self.snapshot_chunk_retries),
            ("snapshot_chunks_corrupt", self.snapshot_chunks_corrupt),
            ("snapshot_transfer_count", self.transfer_ticks.count()),
            ("statuses_gced", self.statuses_gced),
            ("mailbox_drops", self.mailbox_drops),
            ("net_frames_sent", self.net_frames_sent),
            ("net_frames_recvd", self.net_frames_recvd),
            ("net_reconnects", self.net_reconnects),
            ("net_crc_rejects", self.net_crc_rejects),
            ("net_queue_drops", self.net_queue_drops),
            ("net_deadline_hits", self.net_deadline_hits),
            ("mailbox_rejections", self.mailbox_rejections),
            ("net_queue_rejections", self.net_queue_rejections),
            ("net_frames_coalesced", self.net_frames_coalesced),
            ("group_fsyncs", self.group_fsyncs),
            ("records_per_fsync_count", self.records_per_fsync.count()),
            ("inflight_txns_count", self.inflight_txns.count()),
            ("leased_reads", self.leased_reads),
            ("lease_renewals", self.lease_renewals),
            ("lease_read_rejected", self.lease_read_rejected),
            ("lease_waits_on_view_change", self.lease_waits_on_view_change),
            ("lease_read_count", self.lease_read_ticks.count()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_latencies(samples: &[u64]) -> Metrics {
        let mut m = Metrics::default();
        for &v in samples {
            m.commit_latency.record(v);
        }
        m
    }

    #[test]
    fn empty_metrics_have_no_latency() {
        let m = Metrics::default();
        assert_eq!(m.mean_commit_latency(), None);
        assert_eq!(m.latency_percentile(0.5), None);
        assert_eq!(m.msgs_per_commit(), None);
        assert_eq!(m.prepare_fast_fraction(), None);
        assert_eq!(m.total_msgs(), 0);
    }

    #[test]
    fn latency_stats() {
        let mut m = with_latencies(&[10, 20, 30, 40]);
        m.committed = 4;
        assert_eq!(m.mean_commit_latency(), Some(25.0));
        assert_eq!(m.latency_percentile(0.0), Some(10));
        assert_eq!(m.latency_percentile(1.0), Some(40));
        let p50 = m.latency_percentile(0.5).expect("has samples");
        assert!((20..=30).contains(&p50));
    }

    #[test]
    fn p99_of_1_to_100_is_99() {
        // Regression: the old computation rounded (len-1)·p to nearest,
        // so p99 of 100 samples returned sorted[98] — but only by luck
        // (round(98.01) = 98 → value 99); for p50 it returned
        // sorted[50] = 51 instead of the nearest-rank 50. Ceil
        // nearest-rank pins both.
        let m = with_latencies(&(1..=100).collect::<Vec<_>>());
        assert_eq!(m.latency_percentile(0.99), Some(99));
        assert_eq!(m.latency_percentile(0.5), Some(50));
    }

    #[test]
    fn percentiles_match_old_vec_computation_on_small_samples() {
        // E1-scale latencies (well under 32 ticks) are stored exactly,
        // so the histogram reproduces the old sorted-vec values.
        let samples = [8u64, 9, 9, 9, 10, 9, 8, 9, 9, 10];
        let m = with_latencies(&samples);
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        for (p, rank) in [(0.5, 5usize), (0.99, 10)] {
            assert_eq!(m.latency_percentile(p), Some(sorted[rank - 1]), "p={p}");
        }
    }

    #[test]
    fn fast_fraction() {
        let m = Metrics { prepares_fast: 3, prepares_waited: 1, ..Metrics::default() };
        assert_eq!(m.prepare_fast_fraction(), Some(0.75));
    }

    #[test]
    fn counter_names_are_unique() {
        let m = Metrics::default();
        let names: Vec<_> = m.counters().into_iter().map(|(n, _)| n).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }
}
