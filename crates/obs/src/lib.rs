//! vsr-obs: structured tracing and telemetry for Viewstamped
//! Replication.
//!
//! The paper's evaluation is about *where time and messages go* —
//! calls run at the primary (§3.7), forces wait on a sub-majority
//! (§3), a view change costs one round (§4.1) — so the harnesses need
//! to explain runs event-by-event, not just in aggregate. This crate
//! provides the shared vocabulary:
//!
//! - [`TraceEvent`] / [`TraceKind`]: one structured record per
//!   interesting moment (send, recv, timer, force-begin, force-fire,
//!   view-state transition, disk append), captured through the
//!   [`Recorder`] trait. The sans-I/O core emits protocol facts via
//!   `Effect::Observe`; the sim `World` and runtime `Cluster` each
//!   install a recorder and translate.
//! - [`Histogram`]: fixed 64 × 32 log-bucketed latency histogram,
//!   zero allocation on record, exact mean, ceil nearest-rank
//!   percentiles.
//! - [`Metrics`]: the counter set both harnesses report (moved here
//!   from `vsr-sim` so the runtime can share it).
//! - Exporters: [`export_jsonl`] and [`export_chrome`] produce
//!   strings; [`validate_jsonl`] is the CI schema check;
//!   [`render_timeline`] prints the causal timeline nemesis repros
//!   embed.
//!
//! No dependencies beyond `vsr-core` (for the id types), no I/O, no
//! wall-clock reads: the crate is enrolled in the `determinism` and
//! `sans_io` lint families.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
pub mod export;
pub mod hist;
pub mod json;
pub mod metrics;

pub use event::{render_timeline, NullRecorder, Recorder, SharedRecorder, TraceEvent, TraceKind};
pub use export::{export_chrome, export_jsonl, parse_jsonl, validate_jsonl};
pub use hist::Histogram;
pub use json::{parse_json, write_json, JsonValue};
pub use metrics::Metrics;
