//! Log-bucketed latency histogram (HDR-style).
//!
//! Fixed 64 × 32 layout: 64 power-of-two ranges, each split into 32
//! linear sub-buckets. Values below 32 land in dedicated exact slots;
//! a value in range `b ≥ 1` (covering `[32·2^(b-1), 32·2^b)`) is
//! bucketed with relative error below `1/32`. Recording is a single
//! array increment — no allocation, ever — so the hot path can afford
//! one per committed transaction.

/// Number of power-of-two ranges.
const RANGES: usize = 64;
/// Linear sub-buckets per range.
const SUB: usize = 32;
/// Total slots. Only 61 ranges are reachable for `u64` values; the
/// fixed 64 × 32 layout keeps index arithmetic branch-free.
const SLOTS: usize = RANGES * SUB;

/// A fixed-size log-bucketed histogram of `u64` samples.
///
/// Tracks exact `count`, `sum`, `min`, and `max` alongside the bucket
/// array, so [`mean`](Histogram::mean) is exact and the extreme
/// percentiles (rank 1 and rank `count`) are exact; interior
/// percentiles report the upper bound of the containing sub-bucket
/// (exact below 32, off by at most 1 below 128, relative error below
/// `1/32` beyond that).
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; SLOTS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { counts: [0; SLOTS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The slot index for a value. Values below 32 are exact; larger
    /// values use the top 5 bits below the most significant bit as a
    /// linear sub-bucket within their power-of-two range.
    fn slot(value: u64) -> usize {
        if value < SUB as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros() as usize;
        let range = msb - 4;
        let sub = ((value >> (range - 1)) as usize) - SUB;
        range * SUB + sub
    }

    /// The largest value that maps to `slot` — the reported
    /// representative, so bucketed percentiles never under-estimate.
    fn slot_high(slot: usize) -> u64 {
        if slot < SUB {
            return slot as u64;
        }
        let range = slot / SUB;
        let sub = (slot % SUB) as u64;
        let width = 1u64 << (range - 1);
        ((SUB as u64 + sub) << (range - 1)) + (width - 1)
    }

    /// Record one sample. Zero allocation.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::slot(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (exact, saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact maximum sample, if any.
    pub fn max(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Exact minimum sample, if any.
    pub fn min(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Exact mean of recorded samples, if any.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// A percentile (0.0–1.0) by ceil nearest-rank: the reported value
    /// is the smallest sample whose cumulative rank reaches
    /// `ceil(count · p)`. Rank 1 and rank `count` return the exact
    /// tracked `min` / `max`; interior ranks return the upper bound of
    /// the containing sub-bucket.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((self.count as f64 * p).ceil() as u64).clamp(1, self.count);
        if rank == 1 {
            return Some(self.min);
        }
        if rank == self.count {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (slot, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::slot_high(slot));
            }
        }
        Some(self.max)
    }

    /// The samples recorded since `baseline` (which must be an earlier
    /// snapshot of this histogram). `count`, `sum`, and `mean` of the
    /// delta are exact; `min` / `max` are bucket bounds, since the
    /// exact extremes of a window are not recoverable from snapshots.
    pub fn since(&self, baseline: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for ((o, &a), &b) in
            out.counts.iter_mut().zip(self.counts.iter()).zip(baseline.counts.iter())
        {
            *o = a.saturating_sub(b);
        }
        out.count = self.count.saturating_sub(baseline.count);
        out.sum = self.sum.saturating_sub(baseline.sum);
        if out.count > 0 {
            let lowest = out.counts.iter().position(|&c| c > 0).map(|s| {
                if s < SUB {
                    s as u64
                } else {
                    Self::slot_high(s - 1) + 1
                }
            });
            let highest = out.counts.iter().rposition(|&c| c > 0).map(Self::slot_high);
            out.min = lowest.unwrap_or(u64::MAX);
            out.max = highest.unwrap_or(0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 31] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(31));
        assert_eq!(h.percentile(0.5), Some(1));
    }

    #[test]
    fn slot_roundtrip_bounds() {
        // Every value's representative is >= the value and within the
        // documented error bound.
        for v in (0u64..4096).chain([1 << 20, (1 << 20) + 12345, u64::MAX >> 3, u64::MAX]) {
            let rep = Histogram::slot_high(Histogram::slot(v));
            assert!(rep >= v, "rep {rep} < value {v}");
            if v < 32 {
                assert_eq!(rep, v);
            } else {
                // Width of the containing sub-bucket is 2^(range-1) = v/32-ish.
                assert!(rep - v <= v / 16, "rep {rep} too far from {v}");
            }
        }
    }

    #[test]
    fn slots_are_monotone_in_value() {
        let mut prev = 0;
        for v in 0u64..100_000 {
            let s = Histogram::slot(v);
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        for v in [100u64, 200, 300, 401] {
            h.record(v);
        }
        assert_eq!(h.mean(), Some(250.25));
    }

    #[test]
    fn percentiles_match_nearest_rank_on_exact_range() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.50), Some(50));
        // 90 and 91 share a width-2 sub-bucket; the upper bound is
        // reported, within the documented ±1 error below 128.
        assert_eq!(h.percentile(0.90), Some(91));
        assert_eq!(h.percentile(0.99), Some(99));
        assert_eq!(h.percentile(1.0), Some(100));
        assert_eq!(h.percentile(0.0), Some(1));
    }

    #[test]
    fn since_subtracts_a_snapshot() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        let snap = h.clone();
        h.record(30);
        h.record(50);
        let delta = h.since(&snap);
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.sum(), 80);
        assert_eq!(delta.mean(), Some(40.0));
    }

    #[test]
    fn empty_histogram_reports_none() {
        let h = Histogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.max(), None);
    }
}
