//! Trace exporters: JSONL event dumps and chrome://tracing documents.
//!
//! Both exporters return `String`s — writing them to disk (or not) is
//! the caller's business, which keeps this crate inside the sans-I/O
//! boundary. [`validate_jsonl`] is the schema check CI runs against
//! the nemesis trace artifact.

use crate::event::{TraceEvent, TraceKind};
use crate::json::{parse_json, write_json, JsonValue};

/// Export events as JSONL: one compact JSON object per line, stable
/// key order, schema documented in DESIGN.md §11.
pub fn export_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&write_json(&event_to_json(ev)));
        out.push('\n');
    }
    out
}

/// Export events as a chrome://tracing document (JSON object format,
/// instant events). Load it at `chrome://tracing` or in Perfetto:
/// ticks become microseconds, cohorts become threads.
pub fn export_chrome(events: &[TraceEvent]) -> String {
    let trace_events: Vec<JsonValue> = events
        .iter()
        .map(|ev| {
            let name = match ev.kind {
                TraceKind::Send { msg, .. } => format!("send {msg}"),
                TraceKind::Recv { msg, .. } => format!("recv {msg}"),
                TraceKind::Timer { timer } => format!("timer {timer}"),
                TraceKind::ForceBegin => "force-begin".to_string(),
                TraceKind::ForceFire { .. } => "force-fire".to_string(),
                TraceKind::ViewState { to, .. } => format!("view-state {to}"),
                TraceKind::DiskAppend { .. } => "disk-append".to_string(),
            };
            JsonValue::Obj(vec![
                ("name".to_string(), JsonValue::Str(name)),
                ("cat".to_string(), JsonValue::Str(ev.kind.name().to_string())),
                ("ph".to_string(), JsonValue::Str("i".to_string())),
                ("ts".to_string(), JsonValue::Num(ev.tick)),
                ("pid".to_string(), JsonValue::Num(0)),
                ("tid".to_string(), JsonValue::Num(ev.cohort.0)),
                ("s".to_string(), JsonValue::Str("t".to_string())),
                ("args".to_string(), event_args(ev)),
            ])
        })
        .collect();
    write_json(&JsonValue::Obj(vec![("traceEvents".to_string(), JsonValue::Arr(trace_events))]))
}

fn event_to_json(ev: &TraceEvent) -> JsonValue {
    let vs = match ev.vs {
        None => JsonValue::Null,
        Some(vs) => JsonValue::Obj(vec![
            ("view".to_string(), JsonValue::Num(vs.id.counter)),
            ("manager".to_string(), JsonValue::Num(vs.id.manager.0)),
            ("ts".to_string(), JsonValue::Num(vs.ts.0)),
        ]),
    };
    let mut fields = vec![
        ("tick".to_string(), JsonValue::Num(ev.tick)),
        ("cohort".to_string(), JsonValue::Num(ev.cohort.0)),
        ("vs".to_string(), vs),
        ("kind".to_string(), JsonValue::Str(ev.kind.name().to_string())),
    ];
    if let JsonValue::Obj(args) = event_args(ev) {
        fields.extend(args);
    }
    JsonValue::Obj(fields)
}

/// Kind-specific payload fields, shared by both exporters.
fn event_args(ev: &TraceEvent) -> JsonValue {
    JsonValue::Obj(match ev.kind {
        TraceKind::Send { to, msg } => vec![
            ("to".to_string(), JsonValue::Num(to.0)),
            ("msg".to_string(), JsonValue::Str(msg.to_string())),
        ],
        TraceKind::Recv { from, msg } => vec![
            ("from".to_string(), JsonValue::Num(from.0)),
            ("msg".to_string(), JsonValue::Str(msg.to_string())),
        ],
        TraceKind::Timer { timer } => {
            vec![("timer".to_string(), JsonValue::Str(timer.to_string()))]
        }
        TraceKind::ForceBegin => vec![],
        TraceKind::ForceFire { fired } => vec![("fired".to_string(), JsonValue::Num(fired))],
        TraceKind::ViewState { from, to } => vec![
            ("from_state".to_string(), JsonValue::Str(from.to_string())),
            ("to_state".to_string(), JsonValue::Str(to.to_string())),
        ],
        TraceKind::DiskAppend { bytes } => vec![("bytes".to_string(), JsonValue::Num(bytes))],
    })
}

/// All kind names the schema accepts, with the payload keys each
/// requires.
const KIND_FIELDS: &[(&str, &[&str])] = &[
    ("send", &["to", "msg"]),
    ("recv", &["from", "msg"]),
    ("timer", &["timer"]),
    ("force-begin", &[]),
    ("force-fire", &["fired"]),
    ("view-state", &["from_state", "to_state"]),
    ("disk-append", &["bytes"]),
];

/// Parse a JSONL export back into JSON values, one per line.
pub fn parse_jsonl(text: &str) -> Result<Vec<JsonValue>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| parse_json(line).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

/// Validate a JSONL export against the trace schema: every line must
/// be an object with `tick` (u64), `cohort` (u64), `vs` (null or a
/// `{view, manager, ts}` object), `kind` (a known name), and the
/// kind's required payload fields. Returns the number of valid events.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let values = parse_jsonl(text)?;
    for (i, value) in values.iter().enumerate() {
        validate_event(value).map_err(|e| format!("event {}: {e}", i + 1))?;
    }
    Ok(values.len())
}

fn validate_event(value: &JsonValue) -> Result<(), String> {
    if value.get("tick").and_then(JsonValue::as_u64).is_none() {
        return Err("missing numeric 'tick'".to_string());
    }
    if value.get("cohort").and_then(JsonValue::as_u64).is_none() {
        return Err("missing numeric 'cohort'".to_string());
    }
    match value.get("vs") {
        Some(JsonValue::Null) => {}
        Some(vs @ JsonValue::Obj(_)) => {
            for key in ["view", "manager", "ts"] {
                if vs.get(key).and_then(JsonValue::as_u64).is_none() {
                    return Err(format!("vs missing numeric '{key}'"));
                }
            }
        }
        _ => return Err("missing 'vs' (null or object)".to_string()),
    }
    let kind = value
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "missing string 'kind'".to_string())?;
    let (_, required) = KIND_FIELDS
        .iter()
        .find(|(name, _)| *name == kind)
        .ok_or_else(|| format!("unknown kind '{kind}'"))?;
    for key in *required {
        if value.get(key).is_none() {
            return Err(format!("kind '{kind}' missing field '{key}'"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsr_core::types::{Mid, Timestamp, ViewId, Viewstamp};

    fn sample() -> Vec<TraceEvent> {
        let vs = Viewstamp { id: ViewId { counter: 3, manager: Mid(2) }, ts: Timestamp(11) };
        vec![
            TraceEvent {
                tick: 1,
                cohort: Mid(1),
                vs: Some(vs),
                kind: TraceKind::Send { to: Mid(2), msg: "call" },
            },
            TraceEvent {
                tick: 2,
                cohort: Mid(2),
                vs: None,
                kind: TraceKind::Recv { from: Mid(1), msg: "call" },
            },
            TraceEvent {
                tick: 3,
                cohort: Mid(2),
                vs: Some(vs),
                kind: TraceKind::Timer { timer: "heartbeat" },
            },
            TraceEvent { tick: 4, cohort: Mid(1), vs: Some(vs), kind: TraceKind::ForceBegin },
            TraceEvent {
                tick: 5,
                cohort: Mid(1),
                vs: Some(vs),
                kind: TraceKind::ForceFire { fired: 2 },
            },
            TraceEvent {
                tick: 6,
                cohort: Mid(3),
                vs: None,
                kind: TraceKind::ViewState { from: "active", to: "underling" },
            },
            TraceEvent {
                tick: 7,
                cohort: Mid(3),
                vs: Some(vs),
                kind: TraceKind::DiskAppend { bytes: 640 },
            },
        ]
    }

    #[test]
    fn jsonl_roundtrips_through_parse() {
        let events = sample();
        let text = export_jsonl(&events);
        let parsed = parse_jsonl(&text).expect("parses");
        assert_eq!(parsed.len(), events.len());
        // Re-serializing the parsed values reproduces the export
        // byte-for-byte (ordered keys, integer-only numbers).
        let rewritten: String =
            parsed.iter().map(|v| format!("{}\n", crate::json::write_json(v))).collect();
        assert_eq!(rewritten, text);
    }

    #[test]
    fn jsonl_passes_schema_check() {
        let text = export_jsonl(&sample());
        assert_eq!(validate_jsonl(&text), Ok(sample().len()));
    }

    #[test]
    fn schema_check_rejects_malformed_events() {
        assert!(validate_jsonl("{\"tick\":1}\n").is_err());
        assert!(
            validate_jsonl("{\"tick\":1,\"cohort\":2,\"vs\":null,\"kind\":\"nope\"}\n").is_err()
        );
        assert!(
            validate_jsonl("{\"tick\":1,\"cohort\":2,\"vs\":null,\"kind\":\"send\",\"to\":3}\n")
                .is_err(),
            "send without msg must fail"
        );
    }

    #[test]
    fn chrome_export_is_valid_json_with_one_event_per_trace() {
        let events = sample();
        let doc = export_chrome(&events);
        let value = parse_json(&doc).expect("chrome export parses");
        match value.get("traceEvents") {
            Some(JsonValue::Arr(items)) => assert_eq!(items.len(), events.len()),
            other => panic!("traceEvents missing: {other:?}"),
        }
    }
}
