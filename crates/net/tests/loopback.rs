//! Integration tests for the TCP transport over real loopback sockets:
//! endpoint-to-endpoint delivery, reconnection after an endpoint dies,
//! bounded-queue overflow, half-open detection, and every chaos-proxy
//! toxic observable from the transport counters.

use std::collections::BTreeMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use vsr_core::messages::Message;
use vsr_core::types::{GroupId, Mid, ViewId};
use vsr_net::socket::DeliverFn;
use vsr_net::{AddrMap, ChaosProxy, Endpoint, NetConfig, NetMetrics};

fn probe(group: u64) -> Message {
    Message::Probe { group: GroupId(group), reply_to: Mid(0) }
}

type Seen = Arc<Mutex<Vec<(Mid, Message)>>>;

fn collector() -> (Seen, DeliverFn) {
    let seen: Seen = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&seen);
    let deliver: DeliverFn =
        Arc::new(move |from, msg| sink.lock().expect("collector lock").push((from, msg)));
    (seen, deliver)
}

fn wait_until(timeout: Duration, mut ready: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if ready() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    ready()
}

/// Start an endpoint for `mid` from a shared address map.
fn endpoint_from(addrs: &mut AddrMap, mid: Mid, cfg: &NetConfig, deliver: DeliverFn) -> Endpoint {
    let listener = addrs.take_listener(mid).expect("loopback map holds the listener");
    Endpoint::start(
        mid,
        listener,
        &addrs.dial_addrs(),
        cfg.clone(),
        Arc::new(NetMetrics::default()),
        deliver,
    )
    .expect("endpoint starts")
}

#[test]
fn frames_flow_both_ways_with_sender_identity() {
    let a = Mid(1);
    let b = Mid(2);
    let mut addrs = AddrMap::loopback(&[a, b]).expect("bind loopback");
    let cfg = NetConfig::new();
    let (seen_a, deliver_a) = collector();
    let (seen_b, deliver_b) = collector();
    let ep_a = endpoint_from(&mut addrs, a, &cfg, deliver_a);
    let ep_b = endpoint_from(&mut addrs, b, &cfg, deliver_b);

    for i in 0..50 {
        assert!(ep_a.send(b, &probe(i)));
        assert!(ep_b.send(a, &probe(100 + i)));
    }
    assert!(
        wait_until(Duration::from_secs(5), || {
            seen_a.lock().expect("lock").len() == 50 && seen_b.lock().expect("lock").len() == 50
        }),
        "all frames delivered: a={}, b={}",
        seen_a.lock().expect("lock").len(),
        seen_b.lock().expect("lock").len(),
    );
    let at_b = seen_b.lock().expect("lock").clone();
    assert!(at_b.iter().all(|(from, _)| *from == a), "sender mid travels in the frame");
    assert_eq!(at_b[0].1, probe(0), "frames arrive in order per link");
    assert!(ep_a.metrics().snapshot().frames_sent >= 50);
    assert!(ep_b.metrics().snapshot().frames_recvd >= 50);
    // Fresh links: first dials are not reconnects.
    assert_eq!(ep_a.metrics().snapshot().reconnects, 0);
    ep_a.shutdown();
    ep_b.shutdown();
}

#[test]
fn sending_to_an_unknown_peer_is_refused() {
    let a = Mid(1);
    let mut addrs = AddrMap::loopback(&[a]).expect("bind loopback");
    let (_, deliver) = collector();
    let ep = endpoint_from(&mut addrs, a, &NetConfig::new(), deliver);
    assert!(!ep.send(Mid(99), &probe(0)), "no link for an unmapped mid");
}

#[test]
fn peer_restart_reconnects_and_delivery_resumes() {
    let a = Mid(1);
    let b = Mid(2);
    let mut addrs = AddrMap::loopback(&[a, b]).expect("bind loopback");
    let mut cfg = NetConfig::new();
    cfg.reconnect_base_ms = 20;
    let (_, deliver_a) = collector();
    let (seen_b, deliver_b) = collector();
    let ep_a = endpoint_from(&mut addrs, a, &cfg, deliver_a);
    let b_bind = addrs.bind_addr(b).expect("b is mapped");
    let ep_b = endpoint_from(&mut addrs, b, &cfg, deliver_b);

    assert!(ep_a.send(b, &probe(0)));
    assert!(wait_until(Duration::from_secs(5), || !seen_b.lock().expect("lock").is_empty()));

    // Kill b. a's writer sees resets and enters reconnect backoff.
    ep_b.shutdown();
    drop(ep_b);

    // Restart b on the same address (SO_REUSEADDR + bind retry window).
    let (seen_b2, deliver_b2) = collector();
    let ep_b2 = Endpoint::bind(
        b,
        b_bind,
        &addrs.dial_addrs(),
        cfg.clone(),
        Arc::new(NetMetrics::default()),
        deliver_b2,
        Duration::from_secs(5),
    )
    .expect("rebind after restart");

    // Keep offering traffic until the link re-establishes; frames sent
    // into the downtime window are dropped, exactly like the network.
    assert!(
        wait_until(Duration::from_secs(10), || {
            ep_a.send(b, &probe(7));
            !seen_b2.lock().expect("lock").is_empty()
        }),
        "delivery resumed after restart"
    );
    assert!(ep_a.metrics().snapshot().reconnects > 0, "the redial was counted as a reconnect");
    ep_a.shutdown();
    ep_b2.shutdown();
}

#[test]
fn full_queue_to_a_dead_peer_drops_oldest_and_never_blocks() {
    let a = Mid(1);
    let b = Mid(2);
    // b has an address but never starts an endpoint: a's link stays in
    // connect/backoff forever while its queue fills.
    let mut addrs = AddrMap::loopback(&[a, b]).expect("bind loopback");
    drop(addrs.take_listener(b)); // close b's port so connects fail fast
    let mut cfg = NetConfig::new();
    cfg.queue_capacity = 8;
    let (_, deliver) = collector();
    let ep = endpoint_from(&mut addrs, a, &cfg, deliver);

    let t0 = Instant::now();
    for i in 0..100 {
        ep.send(b, &probe(i));
    }
    assert!(t0.elapsed() < Duration::from_secs(1), "sends never block on a dead peer");
    let m = ep.metrics().snapshot();
    assert!(m.queue_drops >= 92, "overflow drops counted: {}", m.queue_drops);
    ep.shutdown();
}

#[test]
fn stalled_partial_frame_trips_the_read_deadline() {
    let a = Mid(1);
    let mut addrs = AddrMap::loopback(&[a]).expect("bind loopback");
    let mut cfg = NetConfig::new();
    cfg.read_deadline_ms = 200;
    let (seen, deliver) = collector();
    let metrics = Arc::new(NetMetrics::default());
    let listener = addrs.take_listener(a).expect("listener");
    let ep = Endpoint::start(a, listener, &BTreeMap::new(), cfg, Arc::clone(&metrics), deliver)
        .expect("endpoint starts");

    // A raw client sends half a frame and goes silent: the gray failure
    // the read deadline exists to catch.
    let mut sock = TcpStream::connect(ep.local_addr()).expect("connect");
    sock.write_all(&[64, 0, 0, 0]).expect("half a header");
    assert!(
        wait_until(Duration::from_secs(5), || metrics.deadline_hits.load(Ordering::Relaxed) > 0),
        "reader declared the connection half-open"
    );
    assert!(seen.lock().expect("lock").is_empty(), "no frame was fabricated");
    ep.shutdown();
}

#[test]
fn corrupt_frames_are_rejected_and_the_link_recovers() {
    let a = Mid(1);
    let b = Mid(2);
    let mut addrs = AddrMap::loopback(&[a, b]).expect("bind loopback");
    // Route a→b through a proxy that corrupts one bit per chunk.
    let proxy = ChaosProxy::spawn(addrs.bind_addr(b).expect("b mapped"), 0xC0FFEE).expect("proxy");
    addrs.dial_via(b, proxy.addr());
    let mut cfg = NetConfig::new();
    cfg.reconnect_base_ms = 20;
    let (_, deliver_a) = collector();
    let (seen_b, deliver_b) = collector();
    let b_metrics = Arc::new(NetMetrics::default());
    let ep_a = endpoint_from(&mut addrs, a, &cfg, deliver_a);
    let listener = addrs.take_listener(b).expect("listener");
    let ep_b = Endpoint::start(
        b,
        listener,
        &addrs.dial_addrs(),
        cfg.clone(),
        Arc::clone(&b_metrics),
        deliver_b,
    )
    .expect("endpoint starts");

    proxy.set_corrupt_permille(1000);
    assert!(
        wait_until(Duration::from_secs(10), || {
            ep_a.send(b, &probe(1));
            b_metrics.crc_rejects.load(Ordering::Relaxed) > 0
        }),
        "corrupted frames were rejected by CRC"
    );

    proxy.set_corrupt_permille(0);
    let before = seen_b.lock().expect("lock").len();
    assert!(
        wait_until(Duration::from_secs(10), || {
            ep_a.send(b, &probe(2));
            seen_b.lock().expect("lock").len() > before
        }),
        "clean frames flow again after the corruption stops"
    );
    ep_a.shutdown();
    ep_b.shutdown();
}

#[test]
fn partition_black_holes_then_heals() {
    let a = Mid(1);
    let b = Mid(2);
    let mut addrs = AddrMap::loopback(&[a, b]).expect("bind loopback");
    let proxy = ChaosProxy::spawn(addrs.bind_addr(b).expect("b mapped"), 7).expect("proxy");
    addrs.dial_via(b, proxy.addr());
    let cfg = NetConfig::new();
    let (_, deliver_a) = collector();
    let (seen_b, deliver_b) = collector();
    let ep_a = endpoint_from(&mut addrs, a, &cfg, deliver_a);
    let ep_b = endpoint_from(&mut addrs, b, &cfg, deliver_b);

    assert!(wait_until(Duration::from_secs(5), || {
        ep_a.send(b, &probe(1));
        !seen_b.lock().expect("lock").is_empty()
    }));

    proxy.set_partitioned(true);
    std::thread::sleep(Duration::from_millis(100));
    let at_partition = seen_b.lock().expect("lock").len();
    for i in 0..20 {
        ep_a.send(b, &probe(i));
    }
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(
        seen_b.lock().expect("lock").len(),
        at_partition,
        "a partitioned link delivers nothing"
    );

    proxy.set_partitioned(false);
    assert!(
        wait_until(Duration::from_secs(10), || {
            ep_a.send(b, &probe(9));
            seen_b.lock().expect("lock").len() > at_partition
        }),
        "delivery resumes once the partition heals"
    );
    ep_a.shutdown();
    ep_b.shutdown();
}

#[test]
fn slow_close_and_loss_force_reconnects_without_losing_the_link() {
    let a = Mid(1);
    let b = Mid(2);
    let mut addrs = AddrMap::loopback(&[a, b]).expect("bind loopback");
    let proxy = ChaosProxy::spawn(addrs.bind_addr(b).expect("b mapped"), 99).expect("proxy");
    addrs.dial_via(b, proxy.addr());
    let mut cfg = NetConfig::new();
    cfg.reconnect_base_ms = 20;
    let (_, deliver_a) = collector();
    let (seen_b, deliver_b) = collector();
    let ep_a = endpoint_from(&mut addrs, a, &cfg, deliver_a);
    let ep_b = endpoint_from(&mut addrs, b, &cfg, deliver_b);

    assert!(wait_until(Duration::from_secs(5), || {
        ep_a.send(b, &probe(1));
        !seen_b.lock().expect("lock").is_empty()
    }));

    // Sever every live proxied connection with a lingering close, then
    // run a lossy phase; the link must keep reconnecting through both.
    proxy.slow_close_all(50);
    proxy.set_loss_permille(300);
    let before = seen_b.lock().expect("lock").len();
    assert!(
        wait_until(Duration::from_secs(15), || {
            ep_a.send(b, &probe(5));
            seen_b.lock().expect("lock").len() > before + 10
        }),
        "frames keep arriving through loss and reconnects"
    );
    assert!(
        ep_a.metrics().snapshot().reconnects > 0,
        "the severed connection forced at least one reconnect"
    );
    proxy.set_loss_permille(0);
    ep_a.shutdown();
    ep_b.shutdown();
}

#[test]
fn latency_toxic_delays_but_delivers() {
    let a = Mid(1);
    let b = Mid(2);
    let mut addrs = AddrMap::loopback(&[a, b]).expect("bind loopback");
    let proxy = ChaosProxy::spawn(addrs.bind_addr(b).expect("b mapped"), 3).expect("proxy");
    addrs.dial_via(b, proxy.addr());
    let cfg = NetConfig::new();
    let (_, deliver_a) = collector();
    let (seen_b, deliver_b) = collector();
    let ep_a = endpoint_from(&mut addrs, a, &cfg, deliver_a);
    let ep_b = endpoint_from(&mut addrs, b, &cfg, deliver_b);

    proxy.set_latency_ms(150);
    let t0 = Instant::now();
    ep_a.send(b, &probe(1));
    assert!(wait_until(Duration::from_secs(10), || !seen_b.lock().expect("lock").is_empty()));
    assert!(
        t0.elapsed() >= Duration::from_millis(100),
        "latency toxic added delay (took {:?})",
        t0.elapsed()
    );
    ep_a.shutdown();
    ep_b.shutdown();
}

#[test]
fn sender_mid_is_not_trusted_beyond_the_frame() {
    // The deliver callback receives whatever mid the frame claims; a
    // raw socket can impersonate. This documents the trust model: the
    // transport authenticates nothing (the protocol tolerates arbitrary
    // senders), it only guarantees integrity of what was sent.
    let a = Mid(1);
    let mut addrs = AddrMap::loopback(&[a]).expect("bind loopback");
    let (seen, deliver) = collector();
    let listener = addrs.take_listener(a).expect("listener");
    let ep = Endpoint::start(
        a,
        listener,
        &BTreeMap::new(),
        NetConfig::new(),
        Arc::new(NetMetrics::default()),
        deliver,
    )
    .expect("endpoint starts");
    let mut sock = TcpStream::connect(ep.local_addr()).expect("connect");
    sock.write_all(&vsr_net::frame_message(Mid(42), &probe(6))).expect("write frame");
    assert!(wait_until(Duration::from_secs(5), || !seen.lock().expect("lock").is_empty()));
    assert_eq!(seen.lock().expect("lock")[0], (Mid(42), probe(6)));
    ep.shutdown();
}

#[test]
fn im_alive_exercises_viewid_payloads_end_to_end() {
    // A non-trivial payload (viewids carry two u64s) through the whole
    // stack, as the cohort heartbeat path will send it.
    let a = Mid(1);
    let b = Mid(2);
    let mut addrs = AddrMap::loopback(&[a, b]).expect("bind loopback");
    let cfg = NetConfig::new();
    let (_, deliver_a) = collector();
    let (seen_b, deliver_b) = collector();
    let ep_a = endpoint_from(&mut addrs, a, &cfg, deliver_a);
    let ep_b = endpoint_from(&mut addrs, b, &cfg, deliver_b);
    let msg = Message::ImAlive { from: a, viewid: ViewId { counter: 17, manager: Mid(3) } };
    assert!(ep_a.send(b, &msg));
    assert!(wait_until(Duration::from_secs(5), || !seen_b.lock().expect("lock").is_empty()));
    assert_eq!(seen_b.lock().expect("lock")[0], (a, msg));
    ep_a.shutdown();
    ep_b.shutdown();
}
