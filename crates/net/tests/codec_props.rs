//! Property tests for the message wire codec and the frame layer,
//! mirroring `crates/store/tests/wal_props.rs` for the durable codec.
//!
//! The invariants under test, for arbitrary messages and arbitrary
//! damage:
//!
//! 1. **Round trip** — every `Message` variant survives
//!    `encode_message` → `decode_message` bit-for-bit, and survives a
//!    full frame trip (`frame_message` → `FrameBuf`) regardless of how
//!    the byte stream is chunked.
//! 2. **Truncation fails** — decoding any strict prefix of an encoded
//!    message is an error, never a partial or garbage message.
//! 3. **Bit flips never deliver** — flipping any single bit of a frame
//!    must not hand the application a message: the CRC (payload), the
//!    length bound (header), or the decoder rejects it.

use proptest::prelude::*;
use vsr_core::event::{EventKind, EventRecord};
use vsr_core::messages::{CallOutcome, CallRefusal, Message, QueryOutcome};
use vsr_core::pset::PSet;
use vsr_core::types::{Aid, CallId, GroupId, Mid, Timestamp, ViewId, Viewstamp};
use vsr_core::view::View;
use vsr_core::wire::{decode_message, encode_message};
use vsr_net::{frame_message, FrameBuf};

fn vid(c: u64) -> ViewId {
    ViewId { counter: c, manager: Mid(c % 3) }
}

fn vs(c: u64, ts: u64) -> Viewstamp {
    Viewstamp::new(vid(c), Timestamp(ts))
}

fn aid(seq: u64) -> Aid {
    Aid { group: GroupId(seq % 5), view: vid(1 + seq % 2), seq }
}

/// The number of `Message` variants `message_from` can produce; tags
/// are taken modulo this, so `0..VARIANTS` enumerates all of them.
const VARIANTS: u64 = 32;

/// Decode a sampled `(tag, a, b, data, flag)` tuple into a `Message`,
/// covering every variant with payloads that vary with the sample.
fn message_from(tag: u64, a: u64, b: u64, data: &[u8], flag: bool) -> Message {
    // Primary and backups must be disjoint (`View::new` asserts it).
    let view = View::new(Mid(10 + a % 4), vec![Mid(b % 4), Mid(4 + b % 3)]);
    let pset: PSet = (0..a % 4).map(|g| (GroupId(g), vs(1 + g % 2, b + g))).collect();
    let call_id = CallId { aid: aid(a), seq: b };
    let newer = flag.then(|| (vid(a + 1), view.clone()));
    match tag % VARIANTS {
        0 => Message::Call {
            viewid: vid(a),
            call_id,
            proc: String::from_utf8_lossy(data).into_owned(),
            args: data.to_vec(),
        },
        1 => Message::CallReply {
            call_id,
            outcome: if flag {
                CallOutcome::Ok { result: data.to_vec(), pset }
            } else if b.is_multiple_of(2) {
                CallOutcome::Refused(CallRefusal::LockTimeout)
            } else {
                CallOutcome::Refused(CallRefusal::Application(
                    String::from_utf8_lossy(data).into_owned(),
                ))
            },
        },
        2 => Message::CallReject { call_id, newer },
        3 => Message::Prepare { aid: aid(a), pset, coordinator: Mid(b) },
        4 => Message::PrepareOk { aid: aid(a), group: GroupId(b), read_only: flag },
        5 => Message::PrepareRefuse { aid: aid(a), group: GroupId(b) },
        6 => Message::Commit { aid: aid(a), coordinator: Mid(b) },
        7 => Message::CommitDone { aid: aid(a), group: GroupId(b) },
        8 => Message::Abort { aid: aid(a) },
        9 => Message::Redirect { group: GroupId(b), newer },
        10 => Message::Query { aid: aid(a), reply_to: Mid(b) },
        11 => Message::QueryReply {
            aid: aid(a),
            outcome: match b % 4 {
                0 => QueryOutcome::Committed,
                1 => QueryOutcome::Aborted,
                2 => QueryOutcome::Active,
                _ => QueryOutcome::Unknown,
            },
        },
        12 => Message::ClientBegin { req: a, reply_to: Mid(b) },
        13 => Message::ClientBeginAck { req: a, aid: aid(b) },
        14 => Message::ClientCommit { aid: aid(a), pset, reply_to: Mid(b) },
        15 => Message::ClientAbort { aid: aid(a) },
        16 => Message::ClientOutcome { aid: aid(a), committed: flag },
        17 => Message::ClientPing { aid: aid(a), reply_to: Mid(b) },
        18 => Message::ClientPong { aid: aid(a) },
        19 => Message::Probe { group: GroupId(a), reply_to: Mid(b) },
        20 => Message::ProbeReply { group: GroupId(a), viewid: vid(b), view },
        21 => Message::BufferSend {
            viewid: vid(a),
            from: Mid(b),
            records: (0..data.len() as u64 % 4)
                .map(|ts| EventRecord {
                    vs: vs(a, b + ts),
                    kind: EventKind::Committed { aid: aid(ts) },
                })
                .collect::<Vec<_>>()
                .into(),
        },
        22 => Message::BufferAck { viewid: vid(a), from: Mid(b), upto: Timestamp(a ^ b) },
        23 => Message::ImAlive { from: Mid(b), viewid: vid(a) },
        24 => Message::Invite { viewid: vid(a), manager: Mid(b) },
        25 => Message::AcceptNormal {
            viewid: vid(a + 1),
            from: Mid(b),
            latest: vs(a, b),
            was_primary: flag,
        },
        26 => Message::AcceptCrashed { viewid: vid(a + 1), from: Mid(b), stable_viewid: vid(a) },
        27 => Message::InitView { viewid: vid(a), view },
        28 => Message::GetChunk {
            digest: vsr_core::snapshot::SnapDigest::of(data),
            index: (a % 1000) as u32,
            reply_to: Mid(b),
        },
        29 => Message::Chunk {
            digest: vsr_core::snapshot::SnapDigest::of(data),
            index: (a % 1000) as u32,
            total: (1 + b % 1000) as u32,
            crc: vsr_core::snapshot::crc32c(data),
            payload: data.to_vec(),
        },
        30 => Message::LeaseGrant { viewid: vid(a), from: Mid(b) },
        _ => Message::LeaseRevoke { viewid: vid(a), from: Mid(b) },
    }
}

/// A strategy over the tuple `message_from` consumes.
fn msg_inputs() -> impl Strategy<Value = (u64, u64, u64, Vec<u8>, bool)> {
    (
        0..VARIANTS,
        0u64..1 << 20,
        0u64..1 << 20,
        prop::collection::vec(any::<u8>(), 0..48),
        any::<bool>(),
    )
}

#[test]
fn every_variant_roundtrips_raw_and_framed() {
    // Deterministic exhaustive sweep over the tags, independent of what
    // the property sampler happens to draw.
    for tag in 0..VARIANTS {
        let msg = message_from(tag, 3, 5, b"exhaustive", tag.is_multiple_of(2));
        let decoded = decode_message(&encode_message(&msg)).expect("raw roundtrip");
        assert_eq!(decoded, msg, "tag {tag}");
        let mut fbuf = FrameBuf::new();
        fbuf.extend(&frame_message(Mid(9), &msg));
        let (from, framed) = fbuf.next_frame().expect("frame ok").expect("frame complete");
        assert_eq!((from, framed), (Mid(9), msg), "tag {tag}");
    }
}

/// `PROPTEST_CASES` overrides the default sweep size; the Miri CI job
/// sets it low because interpreted execution is ~100× slower.
fn case_budget(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(case_budget(192)))]

    #[test]
    fn any_message_roundtrips((tag, a, b, data, flag) in msg_inputs()) {
        let msg = message_from(tag, a, b, &data, flag);
        let bytes = encode_message(&msg);
        prop_assert_eq!(decode_message(&bytes).expect("decodes"), msg);
    }

    #[test]
    fn framed_message_survives_arbitrary_chunking(
        (tag, a, b, data, flag) in msg_inputs(),
        from in 0u64..1 << 20,
        chunk in 1usize..64,
    ) {
        let msg = message_from(tag, a, b, &data, flag);
        let wire = frame_message(Mid(from), &msg);
        let mut fbuf = FrameBuf::new();
        let mut out = Vec::new();
        for piece in wire.chunks(chunk) {
            fbuf.extend(piece);
            while let Some(decoded) = fbuf.next_frame().expect("clean stream never errors") {
                out.push(decoded);
            }
        }
        prop_assert_eq!(out, vec![(Mid(from), msg)]);
        prop_assert!(!fbuf.has_partial(), "stream fully consumed");
    }

    #[test]
    fn truncated_message_fails((tag, a, b, data, flag) in msg_inputs(), cut in 0usize..4096) {
        let bytes = encode_message(&message_from(tag, a, b, &data, flag));
        prop_assume!(!bytes.is_empty());
        let cut = cut % bytes.len();
        prop_assert!(
            decode_message(&bytes[..cut]).is_err(),
            "prefix of {cut}/{} bytes must not decode",
            bytes.len()
        );
    }

    #[test]
    fn bit_flipped_frame_never_delivers(
        (tag, a, b, data, flag) in msg_inputs(),
        bit in 0usize..1 << 16,
    ) {
        let mut wire = frame_message(Mid(1), &message_from(tag, a, b, &data, flag));
        let bit = bit % (wire.len() * 8);
        wire[bit / 8] ^= 1 << (bit % 8);
        let mut fbuf = FrameBuf::new();
        fbuf.extend(&wire);
        // A flipped length bit may leave the buffer waiting for bytes
        // that will never come (Ok(None)); any complete frame must be
        // rejected by the length bound, the CRC, or the decoder.
        match fbuf.next_frame() {
            Ok(None) | Err(_) => {}
            Ok(Some((from, msg))) => {
                prop_assert!(false, "corrupt frame delivered: from {from:?}, {}", msg.name());
            }
        }
    }

    #[test]
    fn trailing_garbage_inside_a_frame_fails(
        (tag, a, b, data, flag) in msg_inputs(),
    ) {
        // A frame whose payload has extra bytes after a valid message is
        // a framing bug or an attack, not a message; the decoder's
        // exhaustion check must throw it out even though the CRC (which
        // covers whatever the frame carries) passes.
        let msg = message_from(tag, a, b, &data, flag);
        let mut payload = 1u64.to_le_bytes().to_vec();
        payload.extend_from_slice(&encode_message(&msg));
        payload.push(0xAA);
        let crc = vsr_store::frame::crc32(&payload);
        let mut wire = (payload.len() as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&crc.to_le_bytes());
        wire.extend_from_slice(&payload);
        let mut fbuf = FrameBuf::new();
        fbuf.extend(&wire);
        prop_assert!(fbuf.next_frame().is_err());
    }
}
