//! Socket frame format and incremental reassembly.
//!
//! Every frame on the wire is
//!
//! ```text
//! [payload len: u32 LE][crc32(payload): u32 LE][payload]
//! payload = [sender mid: u64 LE][vsr_core::wire::encode_message bytes]
//! ```
//!
//! — the same header shape as the WAL's `vsr_store::frame` (and the
//! same CRC-32), so one integrity discipline covers disk and network.
//! The sender mid travels in every frame: links need no handshake, and
//! a frame is meaningful on whatever connection it arrives over.
//!
//! Decoding is fail-safe, mirroring the durable-event codec: a bad
//! length, CRC mismatch, or malformed message body is an error, never
//! garbage. A TCP stream that fails to decode cannot be resynchronized
//! (there is no frame delimiter to hunt for), so callers treat any
//! [`FrameError`] as fatal for that connection and reconnect.

use std::fmt;

use vsr_core::messages::Message;
use vsr_core::types::Mid;
use vsr_core::wire::{decode_message, encode_message};
use vsr_store::frame::crc32;

/// Bytes of `[len][crc]` preceding each payload.
pub const HEADER_BYTES: usize = 8;

/// Upper bound on a single payload. Nothing the protocol sends
/// approaches this; its purpose is to reject a garbage length prefix
/// before it turns into a giant allocation.
pub const MAX_FRAME_BYTES: usize = 1 << 24;

/// Why a byte stream failed to yield a frame. All variants are fatal
/// for the connection they arrive on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_FRAME_BYTES`] or is too short to
    /// hold the sender mid.
    BadLength {
        /// The claimed payload length.
        len: usize,
    },
    /// The payload does not match its CRC.
    CrcMismatch,
    /// The CRC passed but the message body failed to decode — which
    /// means sender and receiver disagree about the codec, not that
    /// bytes flipped in flight.
    Malformed {
        /// The decoder context that failed (see `vsr_core::wire`).
        context: &'static str,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadLength { len } => write!(f, "frame length {len} out of bounds"),
            FrameError::CrcMismatch => write!(f, "frame payload failed its CRC"),
            FrameError::Malformed { context } => {
                write!(f, "frame payload malformed while decoding {context}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Encode one message as a complete frame, ready for `write_all`.
pub fn frame_message(from: Mid, msg: &Message) -> Vec<u8> {
    let body = encode_message(msg);
    let mut payload = Vec::with_capacity(8 + body.len());
    payload.extend_from_slice(&from.0.to_le_bytes());
    payload.extend_from_slice(&body);
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Incremental frame reassembly over an arbitrary chunking of the byte
/// stream. Feed whatever `read` returned with [`extend`](FrameBuf::extend),
/// then drain complete frames with [`next_frame`](FrameBuf::next_frame).
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    /// Consumed prefix; compacted away once it outgrows the live tail.
    pos: usize,
}

impl FrameBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuf::default()
    }

    /// Append raw bytes from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes received but not yet consumed as a complete frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Is a frame sitting half-received? Read-deadline tracking keys on
    /// this: an idle connection is fine, a stalled partial frame is a
    /// half-open link.
    pub fn has_partial(&self) -> bool {
        self.pending_bytes() > 0
    }

    /// Decode the next complete frame, if the buffer holds one.
    ///
    /// `Ok(None)` means "need more bytes". Any `Err` is fatal for the
    /// connection: resynchronizing an undelimited stream is impossible.
    pub fn next_frame(&mut self) -> Result<Option<(Mid, Message)>, FrameError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < HEADER_BYTES {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if !(8..=MAX_FRAME_BYTES).contains(&len) {
            return Err(FrameError::BadLength { len });
        }
        if avail.len() < HEADER_BYTES + len {
            return Ok(None);
        }
        let want = u32::from_le_bytes([avail[4], avail[5], avail[6], avail[7]]);
        let payload = &avail[HEADER_BYTES..HEADER_BYTES + len];
        if crc32(payload) != want {
            return Err(FrameError::CrcMismatch);
        }
        let from = Mid(u64::from_le_bytes([
            payload[0], payload[1], payload[2], payload[3], payload[4], payload[5], payload[6],
            payload[7],
        ]));
        let msg = decode_message(&payload[8..])
            .map_err(|e| FrameError::Malformed { context: e.context })?;
        self.pos += HEADER_BYTES + len;
        // Compact once the consumed prefix dominates, so a long-lived
        // connection does not grow its buffer without bound.
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(Some((from, msg)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsr_core::messages::Message;
    use vsr_core::types::GroupId;

    fn probe() -> Message {
        Message::Probe { group: GroupId(2), reply_to: Mid(9) }
    }

    #[test]
    fn frame_round_trips() {
        let bytes = frame_message(Mid(7), &probe());
        let mut fb = FrameBuf::new();
        fb.extend(&bytes);
        let (from, msg) = fb.next_frame().expect("decodes").expect("complete");
        assert_eq!(from, Mid(7));
        assert_eq!(msg, probe());
        assert!(fb.next_frame().expect("no error on empty").is_none());
        assert!(!fb.has_partial());
    }

    #[test]
    fn byte_at_a_time_chunking() {
        let bytes = frame_message(Mid(7), &probe());
        let mut fb = FrameBuf::new();
        for (i, b) in bytes.iter().enumerate() {
            fb.extend(std::slice::from_ref(b));
            let got = fb.next_frame().expect("no error");
            if i + 1 < bytes.len() {
                assert!(got.is_none(), "complete too early at byte {i}");
                assert!(fb.has_partial());
            } else {
                assert_eq!(got, Some((Mid(7), probe())));
            }
        }
    }

    #[test]
    fn two_frames_in_one_read() {
        let mut bytes = frame_message(Mid(1), &probe());
        bytes.extend_from_slice(&frame_message(Mid(2), &probe()));
        let mut fb = FrameBuf::new();
        fb.extend(&bytes);
        assert_eq!(fb.next_frame().expect("ok").map(|(m, _)| m), Some(Mid(1)));
        assert_eq!(fb.next_frame().expect("ok").map(|(m, _)| m), Some(Mid(2)));
        assert!(fb.next_frame().expect("ok").is_none());
    }

    #[test]
    fn flipped_bit_is_a_crc_mismatch() {
        let bytes = frame_message(Mid(7), &probe());
        for bit in 0..(bytes.len() * 8) {
            let mut bad = bytes.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            let mut fb = FrameBuf::new();
            fb.extend(&bad);
            match fb.next_frame() {
                Err(_) => {}
                Ok(None) => {} // flip grew the length prefix: truncated, still safe
                Ok(Some((from, msg))) => {
                    panic!("bit {bit} decoded as {from:?}/{}", msg.name())
                }
            }
        }
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut fb = FrameBuf::new();
        fb.extend(&(u32::MAX).to_le_bytes());
        fb.extend(&[0, 0, 0, 0]);
        assert!(matches!(fb.next_frame(), Err(FrameError::BadLength { .. })));
    }

    #[test]
    fn undersized_length_rejected() {
        let mut fb = FrameBuf::new();
        fb.extend(&4u32.to_le_bytes());
        fb.extend(&[0u8; 8]);
        assert!(matches!(fb.next_frame(), Err(FrameError::BadLength { len: 4 })));
    }

    #[test]
    fn compaction_keeps_decoding_correct() {
        let one = frame_message(Mid(7), &probe());
        let mut fb = FrameBuf::new();
        let n = 1 + 8192 / one.len();
        for _ in 0..n {
            fb.extend(&one);
        }
        for _ in 0..n {
            assert!(fb.next_frame().expect("ok").is_some());
        }
        assert!(fb.next_frame().expect("ok").is_none());
        assert_eq!(fb.pending_bytes(), 0);
    }
}
