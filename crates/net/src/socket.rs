//! The I/O edge: TCP endpoints that carry [`Message`] frames between
//! cohort runtimes.
//!
//! Thread shape per [`Endpoint`]:
//!
//! * one **accept** thread on the local listener;
//! * one **reader** thread per inbound connection — reassembles frames
//!   with [`FrameBuf`] and hands decoded messages to the deliver
//!   callback. A CRC/decode failure or a stalled partial frame kills
//!   the connection (the remote's writer will reconnect);
//! * one **writer** thread per peer in the dial map — drives a
//!   [`LinkFsm`] through connect / established / half-open /
//!   reconnecting, draining that peer's [`BoundedQueue`] while the
//!   link is up.
//!
//! Losing frames is always acceptable where blocking is not: the
//! cohort thread enqueues and moves on; queue overflow, link downtime,
//! and deadline teardowns all surface as counted drops that the
//! protocol's retry timers paper over, exactly as they do for a lossy
//! network. All sleeps and deadline checks poll the shutdown flag, so
//! teardown completes in a bounded couple hundred milliseconds.

// vsr-lint: allow-file(net_io, reason = "this module IS the transport; sockets live here so every other crate stays sans-I/O")
// vsr-lint: allow-file(os_thread, reason = "accept/reader/writer threads are the runtime edge; protocol state stays in the sans-I/O core")
// vsr-lint: allow-file(wall_clock, reason = "read deadlines and reconnect backoff are measured against real time by nature")

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use vsr_core::messages::Message;
use vsr_core::types::Mid;

use crate::frame::{frame_message, FrameBuf};
use crate::link::{LinkFsm, LinkState};
use crate::queue::{BoundedQueue, RecvError};
use crate::{NetConfig, NetMetrics};

/// How often blocked reads/receives wake to poll the shutdown flag.
const POLL_MS: u64 = 50;
/// Granularity of backoff sleeps (so shutdown is never stuck behind a
/// long reconnect delay).
const BACKOFF_SLICE_MS: u64 = 20;
/// Caps on one writer pass's coalesced batch: total payload bytes and
/// frame count. Bounds both the vectored-write slice array and how
/// long a batch can monopolize the socket before deadline checks run.
const MAX_COALESCED_BYTES: usize = 256 * 1024;
const MAX_COALESCED_FRAMES: usize = 1024;

/// Write every byte of every buffer with vectored writes, tracking a
/// `(buffer index, offset)` cursor across short writes.
/// `Write::write_all_vectored` / `IoSlice::advance_slices` would do
/// this but are nightly-unstable, so the loop is hand-rolled: rebuild
/// the slice array from the cursor after each write.
fn write_vectored_all(sock: &mut TcpStream, bufs: &[Vec<u8>]) -> io::Result<()> {
    let mut idx = 0;
    let mut off = 0;
    let mut slices: Vec<io::IoSlice<'_>> = Vec::with_capacity(bufs.len());
    while idx < bufs.len() {
        slices.clear();
        slices.push(io::IoSlice::new(&bufs[idx][off..]));
        for buf in &bufs[idx + 1..] {
            slices.push(io::IoSlice::new(buf));
        }
        let mut n = sock.write_vectored(&slices)?;
        if n == 0 {
            return Err(io::Error::from(io::ErrorKind::WriteZero));
        }
        while n > 0 && idx < bufs.len() {
            let left = bufs[idx].len() - off;
            if n >= left {
                n -= left;
                idx += 1;
                off = 0;
            } else {
                off += n;
                n = 0;
            }
        }
    }
    Ok(())
}

/// Callback invoked by reader threads for every decoded frame:
/// `(sender mid, message)`. Runs on the reader thread — implementations
/// must hand off quickly (e.g. push into a cohort mailbox).
pub type DeliverFn = Arc<dyn Fn(Mid, Message) + Send + Sync>;

// ------------------------------------------------------------- AddrMap

/// The cluster's address book: where each cohort listens and where
/// peers should dial to reach it.
///
/// The two are distinct on purpose: pointing a cohort's *dial* address
/// at a [`ChaosProxy`](crate::ChaosProxy) front (via
/// [`dial_via`](AddrMap::dial_via)) routes every peer's traffic to it
/// through the proxy while it keeps listening where it always did.
///
/// [`loopback`](AddrMap::loopback) binds ephemeral listeners eagerly
/// and *holds* them, closing the pick-a-port/rebind race: the port is
/// owned from the moment it is known, and the endpoint later adopts
/// the live listener via [`take_listener`](AddrMap::take_listener).
#[derive(Debug)]
pub struct AddrMap {
    entries: BTreeMap<Mid, AddrEntry>,
}

#[derive(Debug)]
struct AddrEntry {
    bind: SocketAddr,
    dial: SocketAddr,
    listener: Option<TcpListener>,
}

impl AddrMap {
    /// Bind every mid to an ephemeral loopback port, keeping the live
    /// listeners until endpoints adopt them.
    pub fn loopback(mids: &[Mid]) -> io::Result<AddrMap> {
        let mut entries = BTreeMap::new();
        for &mid in mids {
            let listener = TcpListener::bind(("127.0.0.1", 0))?;
            let addr = listener.local_addr()?;
            entries.insert(mid, AddrEntry { bind: addr, dial: addr, listener: Some(listener) });
        }
        Ok(AddrMap { entries })
    }

    /// An address book over explicit, caller-managed addresses (no
    /// pre-bound listeners; each endpoint binds at start).
    pub fn from_addrs(addrs: BTreeMap<Mid, SocketAddr>) -> AddrMap {
        AddrMap {
            entries: addrs
                .into_iter()
                .map(|(mid, addr)| (mid, AddrEntry { bind: addr, dial: addr, listener: None }))
                .collect(),
        }
    }

    /// Route all traffic *to* `mid` through `front` (a chaos proxy
    /// listening on `front` and forwarding to the cohort's bind
    /// address). No-op for an unknown mid.
    pub fn dial_via(&mut self, mid: Mid, front: SocketAddr) {
        if let Some(e) = self.entries.get_mut(&mid) {
            e.dial = front;
        }
    }

    /// Every mid in the book, ascending.
    pub fn mids(&self) -> Vec<Mid> {
        self.entries.keys().copied().collect()
    }

    /// Where `mid` listens (and re-binds after a crash).
    pub fn bind_addr(&self, mid: Mid) -> Option<SocketAddr> {
        self.entries.get(&mid).map(|e| e.bind)
    }

    /// Where peers dial to reach `mid` (the proxy front, if routed).
    pub fn dial_addr(&self, mid: Mid) -> Option<SocketAddr> {
        self.entries.get(&mid).map(|e| e.dial)
    }

    /// The full dial map for building an endpoint's peer set.
    pub fn dial_addrs(&self) -> BTreeMap<Mid, SocketAddr> {
        self.entries.iter().map(|(&mid, e)| (mid, e.dial)).collect()
    }

    /// Adopt the pre-bound listener for `mid`, if this map still holds
    /// one. After a crash the listener is gone — recovery re-binds
    /// [`bind_addr`](AddrMap::bind_addr) instead.
    pub fn take_listener(&mut self, mid: Mid) -> Option<TcpListener> {
        self.entries.get_mut(&mid).and_then(|e| e.listener.take())
    }
}

// ------------------------------------------------------------ Endpoint

struct Shared {
    local: Mid,
    cfg: NetConfig,
    metrics: Arc<NetMetrics>,
    deliver: DeliverFn,
    closed: AtomicBool,
    listen_addr: SocketAddr,
    readers: Mutex<Vec<JoinHandle<()>>>,
}

struct PeerLink {
    queue: Arc<BoundedQueue<Vec<u8>>>,
    writer: Mutex<Option<JoinHandle<()>>>,
}

/// One cohort's transport endpoint: a listener plus an outbound link
/// per peer. Dropping (or [`shutdown`](Endpoint::shutdown)ing) the
/// endpoint closes the listener and joins every thread, which is what
/// "crashing" a cohort means to the network — peers see connection
/// resets and begin reconnect backoff.
pub struct Endpoint {
    shared: Arc<Shared>,
    links: BTreeMap<Mid, PeerLink>,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl Endpoint {
    /// Start an endpoint on an already-bound listener. `peers` maps
    /// every *other* cohort to its dial address; `deliver` receives
    /// each decoded inbound frame on a reader thread.
    pub fn start(
        local: Mid,
        listener: TcpListener,
        peers: &BTreeMap<Mid, SocketAddr>,
        cfg: NetConfig,
        metrics: Arc<NetMetrics>,
        deliver: DeliverFn,
    ) -> io::Result<Endpoint> {
        let listen_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            local,
            cfg,
            metrics,
            deliver,
            closed: AtomicBool::new(false),
            listen_addr,
            readers: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("net-accept-{}", local.0))
                .spawn(move || accept_loop(&shared, &listener))?
        };
        let mut links = BTreeMap::new();
        for (&peer, &dial) in peers {
            if peer == local {
                continue;
            }
            let queue = BoundedQueue::new(shared.cfg.queue_capacity, shared.metrics.queue.clone());
            let writer = {
                let shared = Arc::clone(&shared);
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("net-writer-{}-{}", local.0, peer.0))
                    .spawn(move || writer_loop(&shared, peer, dial, &queue))?
            };
            links.insert(peer, PeerLink { queue, writer: Mutex::new(Some(writer)) });
        }
        Ok(Endpoint { shared, links, accept: Mutex::new(Some(accept)) })
    }

    /// Bind `bind_addr` and start. Retries the bind for up to
    /// `rebind_for`, because a recovering cohort's old listener (and
    /// its accept thread) may take a moment to release the port.
    pub fn bind(
        local: Mid,
        bind_addr: SocketAddr,
        peers: &BTreeMap<Mid, SocketAddr>,
        cfg: NetConfig,
        metrics: Arc<NetMetrics>,
        deliver: DeliverFn,
        rebind_for: Duration,
    ) -> io::Result<Endpoint> {
        let deadline = Instant::now() + rebind_for;
        let listener = loop {
            match TcpListener::bind(bind_addr) {
                Ok(l) => break l,
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(POLL_MS));
                }
            }
        };
        Endpoint::start(local, listener, peers, cfg, metrics, deliver)
    }

    /// The address this endpoint accepts on.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.listen_addr
    }

    /// Queue a message for `to`. Never blocks: a full queue evicts its
    /// oldest frame (counted in the metrics); an unknown peer returns
    /// `false`. Delivery is best-effort by design — the protocol's
    /// retry timers own reliability.
    pub fn send(&self, to: Mid, msg: &Message) -> bool {
        match self.links.get(&to) {
            Some(link) => link.queue.push(frame_message(self.shared.local, msg)),
            None => false,
        }
    }

    /// This endpoint's transport counters.
    pub fn metrics(&self) -> &Arc<NetMetrics> {
        &self.shared.metrics
    }

    /// Stop all threads and close every connection. Idempotent; also
    /// runs on drop. Takes `&self` so a shared (`Arc`) endpoint can be
    /// torn down by whoever notices the crash first.
    pub fn shutdown(&self) {
        if self.shared.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        for link in self.links.values() {
            link.queue.close();
        }
        // Unblock the accept thread with a throwaway connection.
        TcpStream::connect_timeout(&self.shared.listen_addr, Duration::from_millis(250)).ok();
        if let Some(h) = self.accept.lock().unwrap_or_else(PoisonError::into_inner).take() {
            h.join().ok();
        }
        for link in self.links.values() {
            let writer = link.writer.lock().unwrap_or_else(PoisonError::into_inner).take();
            if let Some(h) = writer {
                h.join().ok();
            }
        }
        let readers = {
            let mut guard = self.shared.readers.lock().unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *guard)
        };
        for h in readers {
            h.join().ok();
        }
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ------------------------------------------------------------- threads

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        match listener.accept() {
            Ok((sock, _)) => {
                if shared.closed.load(Ordering::SeqCst) {
                    return;
                }
                let reader = {
                    let shared = Arc::clone(shared);
                    std::thread::Builder::new()
                        .name(format!("net-reader-{}", shared.local.0))
                        .spawn(move || reader_loop(&shared, sock))
                };
                match reader {
                    Ok(h) => shared.readers.lock().unwrap_or_else(PoisonError::into_inner).push(h),
                    Err(_) => continue, // out of threads: drop the connection
                }
            }
            Err(_) => {
                if shared.closed.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(POLL_MS));
            }
        }
    }
}

fn reader_loop(shared: &Arc<Shared>, mut sock: TcpStream) {
    sock.set_read_timeout(Some(Duration::from_millis(POLL_MS))).ok();
    let mut fbuf = FrameBuf::new();
    let mut chunk = vec![0u8; 64 * 1024];
    let mut last_progress = Instant::now();
    let read_deadline = Duration::from_millis(shared.cfg.read_deadline_ms);
    loop {
        if shared.closed.load(Ordering::SeqCst) {
            sock.shutdown(Shutdown::Both).ok();
            return;
        }
        match sock.read(&mut chunk) {
            Ok(0) => return, // orderly close from the peer
            Ok(n) => {
                last_progress = Instant::now();
                fbuf.extend(&chunk[..n]);
                loop {
                    match fbuf.next_frame() {
                        Ok(Some((from, msg))) => {
                            shared.metrics.frames_recvd.fetch_add(1, Ordering::Relaxed);
                            (shared.deliver)(from, msg);
                        }
                        Ok(None) => break,
                        Err(_) => {
                            // Corrupt stream: unrecoverable on this
                            // connection. Drop it; the peer reconnects.
                            shared.metrics.crc_rejects.fetch_add(1, Ordering::Relaxed);
                            sock.shutdown(Shutdown::Both).ok();
                            return;
                        }
                    }
                }
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                // Idle is fine; a *stalled partial frame* is a half-open
                // connection and trips the read deadline.
                if fbuf.has_partial() && last_progress.elapsed() >= read_deadline {
                    shared.metrics.deadline_hits.fetch_add(1, Ordering::Relaxed);
                    sock.shutdown(Shutdown::Both).ok();
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return, // reset/aborted: the peer will redial us
        }
    }
}

fn writer_loop(
    shared: &Arc<Shared>,
    peer: Mid,
    dial: SocketAddr,
    queue: &Arc<BoundedQueue<Vec<u8>>>,
) {
    let salt = shared.local.0.rotate_left(32) ^ peer.0;
    let mut fsm = LinkFsm::new(salt);
    let mut sock: Option<TcpStream> = None;
    let cfg = &shared.cfg;
    loop {
        if shared.closed.load(Ordering::SeqCst) {
            if let Some(s) = &sock {
                s.shutdown(Shutdown::Both).ok();
            }
            return;
        }
        match fsm.state() {
            LinkState::Connecting => {
                if fsm.is_reconnect() {
                    shared.metrics.reconnects.fetch_add(1, Ordering::Relaxed);
                }
                let timeout = Duration::from_millis(cfg.connect_timeout_ms);
                match TcpStream::connect_timeout(&dial, timeout) {
                    Ok(s) => {
                        s.set_nodelay(true).ok();
                        s.set_write_timeout(Some(Duration::from_millis(cfg.write_deadline_ms)))
                            .ok();
                        sock = Some(s);
                        fsm.connected();
                    }
                    Err(_) => {
                        fsm.failed(cfg);
                    }
                }
            }
            LinkState::Established => {
                match queue.recv_timeout(Duration::from_millis(POLL_MS)) {
                    Ok(first) => {
                        // Coalesce: drain whatever else the cohort has
                        // queued for this peer (bounded so one slow
                        // pass cannot hold the batch open forever) and
                        // push it all in one vectored write instead of
                        // one syscall per frame.
                        let mut batch = Vec::with_capacity(8);
                        let mut batch_bytes = first.len();
                        batch.push(first);
                        while batch_bytes < MAX_COALESCED_BYTES
                            && batch.len() < MAX_COALESCED_FRAMES
                        {
                            match queue.try_recv() {
                                Some(bytes) => {
                                    batch_bytes += bytes.len();
                                    batch.push(bytes);
                                }
                                None => break,
                            }
                        }
                        let result = match sock.as_mut() {
                            Some(s) => write_vectored_all(s, &batch),
                            // Established without a socket cannot
                            // happen; treat it as an I/O failure.
                            None => Err(io::Error::from(io::ErrorKind::NotConnected)),
                        };
                        match result {
                            Ok(()) => {
                                let n = batch.len() as u64;
                                shared.metrics.frames_sent.fetch_add(n, Ordering::Relaxed);
                                shared.metrics.frames_coalesced.fetch_add(n - 1, Ordering::Relaxed);
                            }
                            Err(e)
                                if matches!(
                                    e.kind(),
                                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                                ) =>
                            {
                                // Gray-slow peer: the write deadline
                                // fired. Half-open → tear down. The
                                // frames in flight are lost, like any
                                // network drop.
                                shared.metrics.deadline_hits.fetch_add(1, Ordering::Relaxed);
                                fsm.stalled();
                            }
                            Err(_) => {
                                fsm.failed(cfg);
                                sock = None;
                            }
                        }
                    }
                    Err(RecvError::TimedOut) => {} // idle; re-check shutdown
                    Err(RecvError::Closed) => {
                        if let Some(s) = &sock {
                            s.shutdown(Shutdown::Both).ok();
                        }
                        return;
                    }
                }
            }
            LinkState::HalfOpen => {
                if let Some(s) = sock.take() {
                    s.shutdown(Shutdown::Both).ok();
                }
                fsm.failed(cfg);
            }
            LinkState::Reconnecting => {
                let mut left = fsm.backoff_ms();
                while left > 0 && !shared.closed.load(Ordering::SeqCst) {
                    let slice = left.min(BACKOFF_SLICE_MS);
                    std::thread::sleep(Duration::from_millis(slice));
                    left -= slice;
                }
                fsm.backoff_elapsed();
            }
        }
    }
}
