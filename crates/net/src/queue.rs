//! The workspace's one backpressure policy: a bounded MPSC queue that
//! drops the *oldest* droppable entry on overflow instead of blocking
//! the producer.
//!
//! Both transports use it — per-peer outbound socket queues in
//! [`crate::socket`] and the in-process cohort mailboxes in
//! vsr-runtime — so "what happens when a consumer can't keep up" has
//! exactly one answer: the newest message is admitted, the oldest
//! unprocessed one is dropped, the drop is counted, and the producer
//! (a cohort thread holding protocol state) never stalls. Dropping old
//! mail is safe for the same reason the network may drop it: every
//! protocol interaction is covered by a retry timer, and retries carry
//! fresher state than the queue entry they replace.
//!
//! Entries pushed with [`push_critical`](BoundedQueue::push_critical)
//! (control items like shutdown, or client requests with a waiting
//! reply channel) are never evicted and may transiently exceed the
//! capacity — overflow policy applies only to traffic the protocol can
//! regenerate.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Why a receive returned no item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No item arrived within the timeout; the queue is still open.
    TimedOut,
    /// The queue is closed and drained; no item will ever arrive.
    Closed,
}

struct State<T> {
    items: VecDeque<(T, bool)>, // (item, droppable)
    closed: bool,
}

/// Shared overflow accounting for a family of queues. Two outcomes,
/// two counters: an *eviction* admits the new item by dropping the
/// oldest droppable resident (lost-old), a *rejection* refuses the new
/// item because every resident is critical (lost-new). Conflating them
/// would hide which side of the queue is losing traffic — an operator
/// tuning capacity needs to know whether backpressure is shedding
/// stale retransmissions (benign) or refusing fresh work (not).
#[derive(Debug, Clone, Default)]
pub struct DropCounters {
    evictions: Arc<AtomicU64>,
    rejections: Arc<AtomicU64>,
}

impl DropCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        DropCounters::default()
    }

    /// Successful-eviction total (oldest droppable entry removed to
    /// admit a newer push).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Rejected-push total (queue full of critical entries; the new
    /// item was refused).
    pub fn rejections(&self) -> u64 {
        self.rejections.load(Ordering::Relaxed)
    }
}

/// A bounded multi-producer queue with drop-oldest overflow. See the
/// module docs for the policy rationale.
pub struct BoundedQueue<T> {
    capacity: usize,
    drops: DropCounters,
    state: Mutex<State<T>>,
    ready: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` droppable entries (minimum
    /// 1). Overflow outcomes increment `drops` — pass counters shared
    /// with the harness's metrics so losses are observable, not silent.
    pub fn new(capacity: usize, drops: DropCounters) -> Arc<Self> {
        Arc::new(BoundedQueue {
            capacity: capacity.max(1),
            drops,
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        // A panicking holder poisons the mutex; the queue state itself
        // is always consistent (every mutation is a single push/pop),
        // so continuing past poison is sound and keeps shutdown paths
        // working even after a thread dies.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueue a droppable item. Returns `false` if the item was *not*
    /// admitted (queue closed, or full of critical entries). When a
    /// full queue admits the item by evicting the oldest droppable
    /// entry, the eviction is counted and this still returns `true`.
    pub fn push(&self, item: T) -> bool {
        let mut s = self.lock();
        if s.closed {
            return false;
        }
        if s.items.len() >= self.capacity {
            match s.items.iter().position(|(_, droppable)| *droppable) {
                Some(oldest) => {
                    s.items.remove(oldest);
                    self.drops.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    // Every resident entry outranks this one: the new
                    // item is refused, which is a different loss than
                    // an eviction and counted separately.
                    self.drops.rejections.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
            }
        }
        s.items.push_back((item, true));
        drop(s);
        self.ready.notify_one();
        true
    }

    /// Enqueue an item the overflow policy must never evict. Critical
    /// items may transiently push the queue past its capacity; they
    /// are rare control messages, not traffic. Returns `false` only if
    /// the queue is closed.
    pub fn push_critical(&self, item: T) -> bool {
        let mut s = self.lock();
        if s.closed {
            return false;
        }
        s.items.push_back((item, false));
        drop(s);
        self.ready.notify_one();
        true
    }

    /// Dequeue, waiting up to `timeout`. A closed queue still drains
    /// its remaining items before reporting [`RecvError::Closed`].
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvError> {
        let s = self.lock();
        let (mut s, _wait) = self
            .ready
            .wait_timeout_while(s, timeout, |s| s.items.is_empty() && !s.closed)
            .unwrap_or_else(PoisonError::into_inner);
        match s.items.pop_front() {
            Some((item, _)) => Ok(item),
            None if s.closed => Err(RecvError::Closed),
            None => Err(RecvError::TimedOut),
        }
    }

    /// Dequeue without waiting.
    pub fn try_recv(&self) -> Option<T> {
        self.lock().items.pop_front().map(|(item, _)| item)
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Is the queue empty right now?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Close the queue: producers are refused from now on, consumers
    /// drain what remains and then see [`RecvError::Closed`].
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Evictions counted by this queue's shared counters (oldest
    /// droppable entry removed to admit a newer push).
    pub fn evicted_count(&self) -> u64 {
        self.drops.evictions()
    }

    /// Rejected pushes counted by this queue's shared counters (new
    /// item refused because every resident entry is critical).
    pub fn rejected_count(&self) -> u64 {
        self.drops.rejections()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(capacity: usize) -> Arc<BoundedQueue<u32>> {
        BoundedQueue::new(capacity, DropCounters::new())
    }

    #[test]
    fn fifo_within_capacity() {
        let q = q(4);
        for i in 0..4 {
            assert!(q.push(i));
        }
        for i in 0..4 {
            assert_eq!(q.recv_timeout(Duration::from_millis(10)), Ok(i));
        }
        assert_eq!(q.recv_timeout(Duration::from_millis(1)), Err(RecvError::TimedOut));
        assert_eq!(q.evicted_count(), 0);
        assert_eq!(q.rejected_count(), 0);
    }

    #[test]
    fn overflow_drops_oldest_droppable() {
        let q = q(2);
        assert!(q.push(1));
        assert!(q.push(2));
        assert!(q.push(3)); // evicts 1
        assert_eq!(q.evicted_count(), 1);
        assert_eq!(q.rejected_count(), 0, "an eviction is not a rejection");
        assert_eq!(q.try_recv(), Some(2));
        assert_eq!(q.try_recv(), Some(3));
    }

    #[test]
    fn critical_entries_survive_overflow() {
        let q = q(2);
        assert!(q.push_critical(10));
        assert!(q.push_critical(11));
        // Queue is at capacity with nothing evictable: the droppable
        // push is refused and counted as a rejection, not an eviction.
        assert!(!q.push(1));
        assert_eq!(q.rejected_count(), 1);
        assert_eq!(q.evicted_count(), 0, "nothing was evicted");
        // Critical pushes still land, past capacity.
        assert!(q.push_critical(12));
        assert_eq!(q.len(), 3);
        assert_eq!(q.try_recv(), Some(10));
        // Mixed: droppable 2 admitted by evicting nothing (len 2 == cap
        // after the pop? 11,12 remain → full; 11,12 are critical → refuse).
        assert!(!q.push(2));
        assert_eq!(q.rejected_count(), 2);
        assert_eq!(q.evicted_count(), 0);
    }

    #[test]
    fn eviction_skips_critical_head() {
        let q = q(2);
        assert!(q.push_critical(10));
        assert!(q.push(1));
        assert!(q.push(2)); // evicts 1, not the critical head
        assert_eq!(q.try_recv(), Some(10));
        assert_eq!(q.try_recv(), Some(2));
        assert_eq!(q.evicted_count(), 1);
        assert_eq!(q.rejected_count(), 0);
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q = q(4);
        assert!(q.push(1));
        q.close();
        assert!(!q.push(2), "closed queue refuses producers");
        assert!(!q.push_critical(3));
        assert_eq!(q.recv_timeout(Duration::from_millis(10)), Ok(1));
        assert_eq!(q.recv_timeout(Duration::from_millis(10)), Err(RecvError::Closed));
    }

    #[test]
    fn recv_wakes_on_cross_thread_push() {
        let q = q(4);
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            q2.push(7)
        });
        assert_eq!(q.recv_timeout(Duration::from_secs(5)), Ok(7));
        assert!(t.join().expect("pusher thread"));
    }

    #[test]
    fn shared_drop_counters_aggregate_across_queues() {
        let drops = DropCounters::new();
        let a: Arc<BoundedQueue<u32>> = BoundedQueue::new(1, drops.clone());
        let b: Arc<BoundedQueue<u32>> = BoundedQueue::new(1, drops.clone());
        assert!(a.push(1) && a.push(2));
        assert!(b.push(1) && b.push(2));
        assert_eq!(drops.evictions(), 2);
        // Rejections aggregate through the same shared handle: drain
        // each queue, fill it with a critical entry, then push.
        assert_eq!(a.try_recv(), Some(2));
        assert_eq!(b.try_recv(), Some(2));
        assert!(a.push_critical(9) && b.push_critical(9));
        assert!(!a.push(3));
        assert!(!b.push(3));
        assert_eq!(drops.rejections(), 2);
        assert_eq!(drops.evictions(), 2, "rejections did not bump evictions");
    }
}
