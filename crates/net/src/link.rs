//! The per-peer connection state machine — pure state, no sockets.
//!
//! ```text
//!            connect ok
//! Connecting ──────────► Established
//!     ▲  │ connect err        │  │ write/read deadline expired
//!     │  ▼                    │  ▼
//!     │ Reconnecting ◄────────┘ HalfOpen
//!     │      ▲      io error      │
//!     │      └────────────────────┘ torn down, counted as a failure
//!     └ backoff elapsed
//! ```
//!
//! `HalfOpen` is the gray-failure state: the TCP connection still
//! exists but a deadline proved the peer is not making progress, so
//! the socket must be discarded rather than trusted. Every failure
//! (connect error, I/O error, or half-open teardown) transitions to
//! `Reconnecting` with a delay from [`CohortConfig::retry_delay`] — the
//! same capped-exponential-backoff-plus-deterministic-jitter the
//! protocol's own retry timers use, salted per link so a restarted
//! peer's N inbound links do not reconnect in lockstep.
//!
//! [`CohortConfig::retry_delay`]: vsr_core::config::CohortConfig::retry_delay

use crate::NetConfig;

/// The four link states. See the module diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkState {
    /// A connect attempt should be (or is being) made.
    Connecting,
    /// The link has a live connection; frames flow.
    Established,
    /// A deadline expired on a live connection: the peer is present but
    /// not progressing. The socket must be torn down.
    HalfOpen,
    /// Backing off before the next connect attempt.
    Reconnecting,
}

/// Driver-agnostic link lifecycle. The socket writer thread reports
/// events (`connected`, `stalled`, `failed`, `backoff_elapsed`) and
/// obeys the resulting state; nothing here blocks or does I/O, so the
/// lifecycle is unit-testable without a network.
#[derive(Debug)]
pub struct LinkFsm {
    state: LinkState,
    /// Consecutive failures since the last successful connect (the
    /// backoff attempt number).
    attempt: u32,
    /// Has this link ever been established? Distinguishes reconnects
    /// from a fresh link's first dial in the metrics.
    ever_connected: bool,
    /// Jitter salt: mixed from the link's (local, peer) pair by the
    /// caller so each link draws its own backoff jitter stream.
    salt: u64,
    /// Delay chosen by the most recent failure, in milliseconds.
    backoff_ms: u64,
}

impl LinkFsm {
    /// A fresh link, ready to dial.
    pub fn new(salt: u64) -> Self {
        LinkFsm {
            state: LinkState::Connecting,
            attempt: 0,
            ever_connected: false,
            salt,
            backoff_ms: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> LinkState {
        self.state
    }

    /// Consecutive failures since the last established connection.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The backoff delay chosen by the most recent failure.
    pub fn backoff_ms(&self) -> u64 {
        self.backoff_ms
    }

    /// Is the next/current connect attempt a *re*connect — i.e. not
    /// the very first dial of a fresh link?
    pub fn is_reconnect(&self) -> bool {
        self.ever_connected || self.attempt > 0
    }

    /// A connect attempt succeeded: the link is established and the
    /// backoff clock resets.
    pub fn connected(&mut self) {
        self.state = LinkState::Established;
        self.attempt = 0;
        self.backoff_ms = 0;
        self.ever_connected = true;
    }

    /// A read/write deadline expired on the established connection:
    /// the link is half-open. The driver must discard the socket and
    /// then report [`failed`](LinkFsm::failed).
    pub fn stalled(&mut self) {
        self.state = LinkState::HalfOpen;
    }

    /// The connection failed (connect error, I/O error, or half-open
    /// teardown). Transitions to `Reconnecting` and returns the
    /// backoff delay in milliseconds.
    pub fn failed(&mut self, cfg: &NetConfig) -> u64 {
        self.attempt = self.attempt.saturating_add(1);
        self.backoff_ms = cfg.retry.retry_delay(cfg.reconnect_base_ms, self.attempt, self.salt);
        self.state = LinkState::Reconnecting;
        self.backoff_ms
    }

    /// The backoff delay has elapsed; dial again.
    pub fn backoff_elapsed(&mut self) {
        self.state = LinkState::Connecting;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_link_dials_without_being_a_reconnect() {
        let fsm = LinkFsm::new(1);
        assert_eq!(fsm.state(), LinkState::Connecting);
        assert!(!fsm.is_reconnect());
    }

    #[test]
    fn failure_backs_off_then_redials() {
        let cfg = NetConfig::new();
        let mut fsm = LinkFsm::new(1);
        let d1 = fsm.failed(&cfg);
        assert_eq!(fsm.state(), LinkState::Reconnecting);
        assert!(fsm.is_reconnect());
        assert!(d1 >= cfg.reconnect_base_ms, "delay {d1} below base");
        fsm.backoff_elapsed();
        assert_eq!(fsm.state(), LinkState::Connecting);
        assert_eq!(fsm.attempt(), 1);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let cfg = NetConfig::new();
        let mut fsm = LinkFsm::new(42);
        let mut delays = Vec::new();
        for _ in 0..8 {
            delays.push(fsm.failed(&cfg));
            fsm.backoff_elapsed();
        }
        // Jitter aside, delays scale by 2^min(attempt-1, doublings).
        assert!(delays[1] >= delays[0], "{delays:?}");
        let cap = cfg.reconnect_base_ms << cfg.retry.retry_backoff_doublings;
        let jitter_ceiling = cap + cap * u64::from(cfg.retry.retry_jitter_permille) / 1000;
        for &d in &delays {
            assert!(d <= jitter_ceiling, "delay {d} above cap {jitter_ceiling}");
        }
        assert_eq!(delays[7], fsm.backoff_ms());
    }

    #[test]
    fn success_resets_the_attempt_clock() {
        let cfg = NetConfig::new();
        let mut fsm = LinkFsm::new(3);
        fsm.failed(&cfg);
        fsm.backoff_elapsed();
        fsm.connected();
        assert_eq!(fsm.state(), LinkState::Established);
        assert_eq!(fsm.attempt(), 0);
        assert!(fsm.is_reconnect(), "an established link reconnects from now on");
        // A later stall tears down via HalfOpen and restarts backoff at 1.
        fsm.stalled();
        assert_eq!(fsm.state(), LinkState::HalfOpen);
        fsm.failed(&cfg);
        assert_eq!(fsm.attempt(), 1);
        assert_eq!(fsm.state(), LinkState::Reconnecting);
    }

    #[test]
    fn distinct_salts_jitter_apart() {
        let cfg = NetConfig::new();
        let delays: std::collections::BTreeSet<u64> = (0..16u64)
            .map(|salt| {
                let mut fsm = LinkFsm::new(salt);
                fsm.failed(&cfg);
                fsm.failed(&cfg)
            })
            .collect();
        assert!(delays.len() > 1, "every link drew identical jitter: {delays:?}");
    }
}
