//! vsr-net: a real TCP transport for Viewstamped Replication cohorts.
//!
//! The simulator and the in-process runtime exercise the protocol
//! against modeled networks; this crate is the third harness — actual
//! sockets. It deliberately has no external dependencies: everything is
//! `std::net` plus the codecs the workspace already owns
//! ([`vsr_core::wire`] for message bytes, [`vsr_store::frame::crc32`]
//! for integrity).
//!
//! Layering, most-deterministic first:
//!
//! * [`frame`] — the wire format: `[len][crc32][payload]` around a
//!   [`vsr_core::wire::encode_message`] body, plus an incremental
//!   reassembly buffer. Pure bytes, fully deterministic, property
//!   tested.
//! * [`queue`] — [`BoundedQueue`]: the single backpressure policy
//!   shared by per-peer outbound socket queues *and* the runtime's
//!   in-process cohort mailboxes. Bounded, drop-oldest on overflow,
//!   drops counted, never blocks the producer.
//! * [`link`] — [`LinkFsm`]: the per-peer connection state machine
//!   (connecting / established / half-open / reconnecting) with
//!   capped-backoff-plus-jitter reconnect delays reused from
//!   [`CohortConfig::retry_delay`]. Pure state, no sockets.
//! * [`socket`] — [`Endpoint`]: the I/O edge. One accept thread, one
//!   reader thread per inbound connection, one writer thread per peer
//!   link. The only module that touches `std::net` (and says so to
//!   vsr-lint).
//! * [`chaos`] — [`ChaosProxy`]: a toxiproxy-style byte forwarder that
//!   injects latency, partitions, loss, corruption, and slow closes on
//!   command, so nemesis fault classes run against real sockets.
//!
//! Transport counters accumulate in [`NetMetrics`] (plain atomics) and
//! are folded into the shared `vsr_obs::Metrics` counter set by the
//! runtime, so the sim/runtime observability parity extends to the
//! networked harness.

pub mod chaos;
pub mod frame;
pub mod link;
pub mod queue;
pub mod socket;

pub use chaos::ChaosProxy;
pub use frame::{frame_message, FrameBuf, FrameError, HEADER_BYTES, MAX_FRAME_BYTES};
pub use link::{LinkFsm, LinkState};
pub use queue::{BoundedQueue, DropCounters, RecvError};
pub use socket::{AddrMap, Endpoint};

use std::sync::atomic::{AtomicU64, Ordering};

use vsr_core::config::CohortConfig;

/// Transport tuning knobs. All durations are milliseconds of real time
/// — this is the I/O edge, not the simulated world.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Per-peer outbound queue capacity in frames. When a peer cannot
    /// drain (down, partitioned, gray-slow), the oldest queued frame is
    /// dropped to admit the newest — the protocol's retry timers own
    /// reliability, the transport owns bounded memory.
    pub queue_capacity: usize,
    /// How long one `connect()` attempt may take before it counts as a
    /// failure and backoff begins.
    pub connect_timeout_ms: u64,
    /// A connection with a partially received frame that makes no
    /// progress for this long is declared half-open and dropped.
    pub read_deadline_ms: u64,
    /// A socket write that blocks longer than this counts as a deadline
    /// hit: the link is torn down and reconnected instead of wedging
    /// the writer on a gray-slow peer.
    pub write_deadline_ms: u64,
    /// Base reconnect delay; [`CohortConfig::retry_delay`] turns it
    /// into capped exponential backoff with per-link jitter.
    pub reconnect_base_ms: u64,
    /// Backoff/jitter knobs, shared with every protocol retry timer so
    /// transport and protocol retries are tuned in one place.
    pub retry: CohortConfig,
}

impl NetConfig {
    /// Defaults sized for loopback test clusters: small queues so
    /// overflow is observable, sub-second deadlines so fault tests
    /// converge quickly.
    pub fn new() -> Self {
        NetConfig {
            queue_capacity: 1024,
            connect_timeout_ms: 1_000,
            read_deadline_ms: 2_000,
            write_deadline_ms: 2_000,
            reconnect_base_ms: 50,
            retry: CohortConfig::new(),
        }
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::new()
    }
}

/// Shared transport counters, updated lock-free from accept, reader,
/// and writer threads. The runtime snapshots these into the workspace
/// `vsr_obs::Metrics` struct so every harness reports one counter set.
#[derive(Debug, Default)]
pub struct NetMetrics {
    /// Frames successfully written to a peer socket.
    pub frames_sent: AtomicU64,
    /// Frames received, CRC-checked, and decoded.
    pub frames_recvd: AtomicU64,
    /// Reconnect attempts: connects initiated after a link failure
    /// (the first connect of a fresh link is not a reconnect).
    pub reconnects: AtomicU64,
    /// Inbound frames rejected by CRC or decoder; each also drops its
    /// connection, because a corrupt byte stream cannot be resynced.
    pub crc_rejects: AtomicU64,
    /// Outbound-queue overflow accounting, shared with the per-peer
    /// bounded queues themselves: evictions (oldest frame dropped to
    /// admit a newer one) and rejections (new frame refused by a queue
    /// full of critical entries) are counted separately.
    pub queue: DropCounters,
    /// Read/write deadline expiries that tore down a link.
    pub deadline_hits: AtomicU64,
    /// Frames that rode an already-scheduled vectored write instead of
    /// costing their own syscall wakeup: for a writer pass that drains
    /// `n` frames in one `writev`-style write, `n - 1` count here.
    pub frames_coalesced: AtomicU64,
}

/// A plain-value snapshot of [`NetMetrics`], safe to accumulate across
/// endpoint teardowns (crash/recover cycles must not zero totals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// See [`NetMetrics::frames_sent`].
    pub frames_sent: u64,
    /// See [`NetMetrics::frames_recvd`].
    pub frames_recvd: u64,
    /// See [`NetMetrics::reconnects`].
    pub reconnects: u64,
    /// See [`NetMetrics::crc_rejects`].
    pub crc_rejects: u64,
    /// Outbound-queue evictions (see [`NetMetrics::queue`]).
    pub queue_drops: u64,
    /// Outbound-queue rejected pushes (see [`NetMetrics::queue`]).
    pub queue_rejections: u64,
    /// See [`NetMetrics::deadline_hits`].
    pub deadline_hits: u64,
    /// See [`NetMetrics::frames_coalesced`].
    pub frames_coalesced: u64,
}

impl NetMetrics {
    /// Read every counter at once (relaxed; counters are monotonic and
    /// independently meaningful).
    pub fn snapshot(&self) -> NetCounters {
        NetCounters {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_recvd: self.frames_recvd.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            crc_rejects: self.crc_rejects.load(Ordering::Relaxed),
            queue_drops: self.queue.evictions(),
            queue_rejections: self.queue.rejections(),
            deadline_hits: self.deadline_hits.load(Ordering::Relaxed),
            frames_coalesced: self.frames_coalesced.load(Ordering::Relaxed),
        }
    }
}

impl NetCounters {
    /// Accumulate another snapshot into this one (used to carry a
    /// crashed endpoint's totals across recovery).
    pub fn add(&mut self, other: NetCounters) {
        self.frames_sent += other.frames_sent;
        self.frames_recvd += other.frames_recvd;
        self.reconnects += other.reconnects;
        self.crc_rejects += other.crc_rejects;
        self.queue_drops += other.queue_drops;
        self.queue_rejections += other.queue_rejections;
        self.deadline_hits += other.deadline_hits;
        self.frames_coalesced += other.frames_coalesced;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_all_fields() {
        let m = NetMetrics::default();
        m.frames_sent.store(1, Ordering::Relaxed);
        m.frames_recvd.store(2, Ordering::Relaxed);
        m.reconnects.store(3, Ordering::Relaxed);
        m.crc_rejects.store(4, Ordering::Relaxed);
        m.deadline_hits.store(6, Ordering::Relaxed);
        m.frames_coalesced.store(7, Ordering::Relaxed);
        // Drive the shared queue counters through a real queue so the
        // snapshot reflects both overflow outcomes.
        let q: std::sync::Arc<BoundedQueue<u8>> = BoundedQueue::new(1, m.queue.clone());
        assert!(q.push(1) && q.push(2)); // eviction
        assert_eq!(q.try_recv(), Some(2));
        assert!(q.push_critical(3));
        assert!(!q.push(4)); // rejection: only the critical entry remains
        let s = m.snapshot();
        assert_eq!(
            s,
            NetCounters {
                frames_sent: 1,
                frames_recvd: 2,
                reconnects: 3,
                crc_rejects: 4,
                queue_drops: 1,
                queue_rejections: 1,
                deadline_hits: 6,
                frames_coalesced: 7,
            }
        );
        let mut acc = s;
        acc.add(s);
        assert_eq!(acc.frames_sent, 2);
        assert_eq!(acc.deadline_hits, 12);
        assert_eq!(acc.queue_rejections, 2);
        assert_eq!(acc.frames_coalesced, 14);
    }
}
