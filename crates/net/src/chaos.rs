//! A socket-level chaos proxy, in the style of toxiproxy: accept on a
//! front address, forward bytes to one upstream, and misbehave on
//! command.
//!
//! Point a peer's dial address at the proxy front (see
//! [`AddrMap::dial_via`](crate::AddrMap::dial_via)) and every byte of
//! that link flows through two pump threads (one per direction), each
//! applying the current toxics to each chunk it forwards:
//!
//! * **latency** — sleep before forwarding;
//! * **partition** — read and discard everything (a black hole: the
//!   sender's writes keep succeeding, which is exactly the half-open
//!   failure the link deadlines exist to catch);
//! * **loss** — drop a chunk with probability `loss‰`. TCP offers the
//!   transport an ordered stream, so a dropped chunk desynchronizes
//!   the frame layer — the receiver sees a CRC mismatch, kills the
//!   connection, and the link reconnects. That is the intended
//!   recovery path, and it is how stream-level loss *must* be handled;
//! * **corruption** — flip one bit of a chunk with probability
//!   `corrupt‰`, exercising the CRC reject path without losing sync
//!   on length;
//! * **slow close** — stall current connections, then close them,
//!   modeling a peer that hangs in `close()` instead of resetting.
//!
//! Fault draws come from a seeded splitmix64 stream, so a given seed
//! yields a reproducible fault *pattern* (thread interleaving still
//! varies, as it does on a real network).

// vsr-lint: allow-file(net_io, reason = "the chaos proxy forwards real sockets by design; it exists to attack the transport layer")
// vsr-lint: allow-file(os_thread, reason = "pump threads shuttle bytes between two live sockets; nothing here holds protocol state")

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Poll interval for blocked reads (shutdown/kill responsiveness).
const POLL_MS: u64 = 25;
/// Pump chunk size. Small enough that per-chunk loss/corruption draws
/// land many times within one burst of frames.
const CHUNK: usize = 4 * 1024;

struct Toxics {
    latency_ms: AtomicU64,
    partitioned: AtomicBool,
    loss_permille: AtomicU64,
    corrupt_permille: AtomicU64,
    rng: AtomicU64,
}

struct Shared {
    upstream: SocketAddr,
    closed: AtomicBool,
    toxics: Toxics,
    pumps: Mutex<Vec<JoinHandle<()>>>,
    conns: Mutex<Vec<Arc<ConnCtl>>>,
}

struct ConnCtl {
    kill: AtomicBool,
    linger_ms: AtomicU64,
}

/// One front→upstream proxy. See the module docs for the fault menu.
pub struct ChaosProxy {
    shared: Arc<Shared>,
    front: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Listen on an ephemeral loopback port and forward every accepted
    /// connection to `upstream`. `seed` fixes the fault-draw stream.
    pub fn spawn(upstream: SocketAddr, seed: u64) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let front = listener.local_addr()?;
        let shared = Arc::new(Shared {
            upstream,
            closed: AtomicBool::new(false),
            toxics: Toxics {
                latency_ms: AtomicU64::new(0),
                partitioned: AtomicBool::new(false),
                loss_permille: AtomicU64::new(0),
                corrupt_permille: AtomicU64::new(0),
                rng: AtomicU64::new(seed | 1),
            },
            pumps: Mutex::new(Vec::new()),
            conns: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("chaos-{}", front.port()))
                .spawn(move || accept_loop(&shared, &listener))?
        };
        Ok(ChaosProxy { shared, front, accept: Some(accept) })
    }

    /// The address peers should dial instead of the upstream.
    pub fn addr(&self) -> SocketAddr {
        self.front
    }

    /// Delay each forwarded chunk by `ms` (0 disables).
    pub fn set_latency_ms(&self, ms: u64) {
        self.shared.toxics.latency_ms.store(ms, Ordering::Relaxed);
    }

    /// Black-hole the link in both directions. Connections stay open;
    /// bytes silently vanish — the classic asymmetric-partition /
    /// half-open failure.
    pub fn set_partitioned(&self, on: bool) {
        self.shared.toxics.partitioned.store(on, Ordering::Relaxed);
    }

    /// Drop each forwarded chunk with probability `permille`/1000.
    pub fn set_loss_permille(&self, permille: u64) {
        self.shared.toxics.loss_permille.store(permille.min(1000), Ordering::Relaxed);
    }

    /// Flip one bit in each forwarded chunk with probability
    /// `permille`/1000.
    pub fn set_corrupt_permille(&self, permille: u64) {
        self.shared.toxics.corrupt_permille.store(permille.min(1000), Ordering::Relaxed);
    }

    /// Slow-close every live connection: each pump stalls for
    /// `linger_ms`, then closes its sockets. New connections are
    /// unaffected (the upstream is still reachable afterwards).
    pub fn slow_close_all(&self, linger_ms: u64) {
        let conns = {
            let mut guard = self.shared.conns.lock().unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *guard)
        };
        for conn in conns {
            conn.linger_ms.store(linger_ms, Ordering::Relaxed);
            conn.kill.store(true, Ordering::Relaxed);
        }
    }

    /// Stop forwarding and join every thread. Idempotent; runs on drop.
    pub fn shutdown(&mut self) {
        if self.shared.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        TcpStream::connect_timeout(&self.front, Duration::from_millis(250)).ok();
        if let Some(h) = self.accept.take() {
            h.join().ok();
        }
        let pumps = {
            let mut guard = self.shared.pumps.lock().unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *guard)
        };
        for h in pumps {
            h.join().ok();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        match listener.accept() {
            Ok((front, _)) => {
                if shared.closed.load(Ordering::SeqCst) {
                    return;
                }
                let timeout = Duration::from_millis(1_000);
                let Ok(back) = TcpStream::connect_timeout(&shared.upstream, timeout) else {
                    front.shutdown(Shutdown::Both).ok();
                    continue;
                };
                let ctl = Arc::new(ConnCtl {
                    kill: AtomicBool::new(false),
                    linger_ms: AtomicU64::new(0),
                });
                shared.conns.lock().unwrap_or_else(PoisonError::into_inner).push(Arc::clone(&ctl));
                let (Ok(front2), Ok(back2)) = (front.try_clone(), back.try_clone()) else {
                    continue;
                };
                spawn_pump(shared, front, back, Arc::clone(&ctl));
                spawn_pump(shared, back2, front2, ctl);
            }
            Err(_) => {
                if shared.closed.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(POLL_MS));
            }
        }
    }
}

fn spawn_pump(shared: &Arc<Shared>, src: TcpStream, dst: TcpStream, ctl: Arc<ConnCtl>) {
    let spawned = {
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name("chaos-pump".to_string())
            .spawn(move || pump_loop(&shared, src, dst, &ctl))
    };
    if let Ok(h) = spawned {
        shared.pumps.lock().unwrap_or_else(PoisonError::into_inner).push(h);
    }
}

fn pump_loop(shared: &Arc<Shared>, mut src: TcpStream, mut dst: TcpStream, ctl: &ConnCtl) {
    src.set_read_timeout(Some(Duration::from_millis(POLL_MS))).ok();
    dst.set_write_timeout(Some(Duration::from_millis(2_000))).ok();
    let mut chunk = [0u8; CHUNK];
    loop {
        if shared.closed.load(Ordering::SeqCst) {
            break;
        }
        if ctl.kill.load(Ordering::Relaxed) {
            // Slow close: hang for the linger, then drop the sockets.
            std::thread::sleep(Duration::from_millis(ctl.linger_ms.load(Ordering::Relaxed)));
            break;
        }
        match src.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                let toxics = &shared.toxics;
                if toxics.partitioned.load(Ordering::Relaxed) {
                    continue; // black hole: consumed, never forwarded
                }
                let loss = toxics.loss_permille.load(Ordering::Relaxed);
                if loss > 0 && next_rand(&toxics.rng) % 1000 < loss {
                    continue; // stream desync on purpose
                }
                let corrupt = toxics.corrupt_permille.load(Ordering::Relaxed);
                if corrupt > 0 && next_rand(&toxics.rng) % 1000 < corrupt {
                    let bit = next_rand(&toxics.rng) as usize % (n * 8);
                    chunk[bit / 8] ^= 1 << (bit % 8);
                }
                let latency = toxics.latency_ms.load(Ordering::Relaxed);
                if latency > 0 {
                    std::thread::sleep(Duration::from_millis(latency.min(1_000)));
                }
                if dst.write_all(&chunk[..n]).is_err() {
                    break;
                }
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    src.shutdown(Shutdown::Both).ok();
    dst.shutdown(Shutdown::Both).ok();
}

/// Advance the shared splitmix64 state and return the next draw.
fn next_rand(state: &AtomicU64) -> u64 {
    let z = state.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
