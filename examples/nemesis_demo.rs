//! Nemesis quickstart: sweep seeded adversarial fault plans against a
//! replicated counter group, then shrink a failing plan to a minimal
//! ready-to-paste counterexample.

use vsr_core::types::Mid;
use vsr_sim::fault::{FaultEvent, FaultPlan};
use vsr_sim::nemesis::{repro_snippet, run_plan, shrink, sweep, NemesisConfig};

fn main() {
    // 1. Sweep: 10 random plans, each drawing from the full fault
    //    vocabulary (crashes, one-way partitions, link loss, gray-slow
    //    nodes, timer skew, targeted message-class drops).
    let cfg = NemesisConfig::default();
    match sweep(&cfg, 9_000, 10, 12, 2) {
        Ok(stats) => println!(
            "sweep: {} plans recovered, {} wedged as Section 4.2 catastrophes",
            stats.passed, stats.catastrophic
        ),
        Err((plan, failure, repro)) => {
            println!("sweep found a bug: {failure}\nminimal plan: {plan:?}\n{repro}");
            std::process::exit(1);
        }
    }

    // 2. Shrink: bury a fatal majority loss in noise and watch the
    //    shrinker recover the 3-event core.
    let cfg = NemesisConfig { heal_before_check: false, ..NemesisConfig::default() };
    let noisy = FaultPlan::new()
        .at(300, FaultEvent::SlowNode { mid: Mid(4), factor: 3 })
        .at(400, FaultEvent::Crash(Mid(1)))
        .at(500, FaultEvent::LinkLoss { a: Mid(4), b: Mid(5), permille: 300 })
        .at(600, FaultEvent::Crash(Mid(2)))
        .at(700, FaultEvent::DropClasses(vec!["commit".to_string()]))
        .at(1_200, FaultEvent::Crash(Mid(3)))
        .at(1_500, FaultEvent::ClearDropClasses);
    let minimal = shrink(&cfg, &noisy);
    let failure = run_plan(&cfg, &minimal).expect_err("minimal plan still fails");
    println!("\nshrunk {} noisy events to {}:", noisy.len(), minimal.len());
    println!("{}", repro_snippet(&cfg, &minimal, &failure));
}
