//! The paper's motivating example (Section 1): "in airline reservation
//! systems the failure of a single computer can prevent ticket sales for
//! a considerable time, causing a loss of revenue and passenger
//! goodwill."
//!
//! A replicated reservation service keeps selling seats while cohorts
//! crash and recover — and never oversells a flight.
//!
//! Run with: `cargo run --example airline_reservation`

use viewstamped_replication::app::reservation::{self, ReservationModule};
use viewstamped_replication::core::cohort::TxnOutcome;
use viewstamped_replication::core::module::NullModule;
use viewstamped_replication::core::types::{GroupId, Mid};
use viewstamped_replication::sim::fault::FaultPlan;
use viewstamped_replication::sim::WorldBuilder;

const CLIENT: GroupId = GroupId(1);
const RESERVATIONS: GroupId = GroupId(2);
const FLIGHT: u64 = 101;
const CAPACITY: u64 = 40;

fn main() {
    println!("== Airline reservations over Viewstamped Replication ==\n");
    let mut world = WorldBuilder::new(88)
        .group(CLIENT, &[Mid(10), Mid(11), Mid(12)], || Box::new(NullModule))
        .group(RESERVATIONS, &[Mid(1), Mid(2), Mid(3)], || {
            Box::new(ReservationModule::with_flights(vec![(FLIGHT, CAPACITY)]))
        })
        .build();

    println!("flight {FLIGHT} with {CAPACITY} seats; selling under injected failures\n");

    // Random crashes/recoveries of the reservation cohorts while selling.
    let plan = FaultPlan::random(
        4242,
        &[Mid(1), Mid(2), Mid(3)],
        2_000,
        30_000,
        6,
        1, // at most one cohort down at a time (f = 1 for n = 3)
        true,
    );
    println!("fault plan ({} events):", plan.len());
    for (t, ev) in &plan.events {
        println!("  t={t:>6}: {ev:?}");
    }
    plan.apply(&mut world);

    // 60 reservation attempts, one every 600 ticks.
    let mut requests = Vec::new();
    for i in 0..60u64 {
        let req = world.schedule_submit(
            500 + i * 600,
            CLIENT,
            vec![reservation::reserve(RESERVATIONS, FLIGHT, 1)],
        );
        requests.push(req);
    }
    world.run_until(60_000);

    let mut sold = 0u64;
    let mut full = 0u64;
    let mut system_aborts = 0u64;
    for req in requests {
        match world.result(req).map(|r| &r.outcome) {
            Some(TxnOutcome::Committed { .. }) => sold += 1,
            Some(TxnOutcome::Aborted { reason }) => {
                let text = format!("{reason:?}");
                if text.contains("full") {
                    full += 1;
                } else {
                    system_aborts += 1;
                }
            }
            _ => system_aborts += 1,
        }
    }

    println!("\nresults:");
    println!("  seats sold:        {sold}");
    println!("  refused (full):    {full}");
    println!("  aborted by faults: {system_aborts} (customers retry)");
    println!("  view formations:   {}", world.metrics().view_formations);

    // Final availability check.
    let check = world.submit(CLIENT, vec![reservation::available(RESERVATIONS, FLIGHT)]);
    world.run_for(5_000);
    if let Some(TxnOutcome::Committed { results }) = world.result(check).map(|r| &r.outcome) {
        let remaining = reservation::decode_seats(&results[0]).expect("decodes");
        println!("  seats remaining:   {remaining}");
        assert_eq!(
            sold + remaining,
            CAPACITY,
            "every sold seat is durable and the flight never oversold"
        );
        println!("\ninvariant: sold ({sold}) + remaining ({remaining}) == capacity ({CAPACITY})");
    }

    world.verify().expect("safety invariants");
    println!("all safety invariants verified. done.");
}
