//! Durable cluster: a replicated counter that survives killing *every*
//! cohort.
//!
//! The paper keeps only the viewid on stable storage (Section 4.2), so a
//! whole-group power failure is a catastrophe: nobody is up to date and
//! no view can form. This example runs the optional WAL subsystem
//! (`vsr_store::FileStore`, fsync-per-record) instead: each cohort
//! journals its event records and checkpoints under `dir/cohort-<mid>/`,
//! the entire cluster is shut down, and a *fresh* cluster started on the
//! same directory recovers every committed transaction and re-forms a
//! view.
//!
//! Run with: `cargo run --example durable_cluster`

use viewstamped_replication::app::counter::{self, CounterModule};
use viewstamped_replication::core::cohort::TxnOutcome;
use viewstamped_replication::core::module::NullModule;
use viewstamped_replication::core::types::{GroupId, Mid};
use viewstamped_replication::runtime::ClusterBuilder;
use viewstamped_replication::store::FsyncPolicy;

const CLIENT: GroupId = GroupId(1);
const SERVER: GroupId = GroupId(2);

fn start_cluster(dir: &std::path::Path) -> viewstamped_replication::runtime::Cluster {
    ClusterBuilder::new()
        .durable_files(dir, FsyncPolicy::EveryRecord)
        .group(CLIENT, &[Mid(10)], || Box::new(NullModule))
        .group(SERVER, &[Mid(1), Mid(2), Mid(3)], || Box::new(CounterModule))
        .start()
}

fn incr(cluster: &viewstamped_replication::runtime::Cluster) -> Option<u64> {
    // Retries cover the re-formation window right after a restart.
    for _ in 0..20 {
        if let Ok(TxnOutcome::Committed { results }) =
            cluster.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)])
        {
            return counter::decode_value(&results[0]).ok();
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
    None
}

fn main() {
    let dir = std::env::temp_dir().join(format!("vsr-durable-example-{}", std::process::id()));
    println!("== durable cluster (WAL at {}) ==\n", dir.display());

    println!("first life: 3-cohort counter group, fsync-per-record WAL");
    let cluster = start_cluster(&dir);
    for i in 1..=3 {
        match incr(&cluster) {
            Some(v) => println!("  txn {i}: counter -> {v} (committed, journaled)"),
            None => println!("  txn {i}: failed (unexpected)"),
        }
    }
    for mid in [Mid(1), Mid(2), Mid(3)] {
        if let Some(m) = cluster.store_metrics(mid) {
            println!(
                "  {mid} disk: {} appends, {} fsyncs, {} bytes, {} checkpoints",
                m.appends, m.fsyncs, m.bytes_written, m.checkpoints
            );
        }
    }

    println!("\nkilling the ENTIRE cluster (paper-minimum storage could not survive this)");
    cluster.shutdown();

    println!("second life: fresh cluster on the same directory");
    let reborn = start_cluster(&dir);
    match incr(&reborn) {
        Some(v) => {
            println!("  counter -> {v}: all {} pre-crash commits recovered from disk", v - 1)
        }
        None => println!("  recovery failed (unexpected)"),
    }
    reborn.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
    println!("\ndone.");
}
