//! Quickstart: a replicated counter on the live (threaded) runtime.
//!
//! Starts a three-cohort counter group and a client group, commits a few
//! transactions, crashes the primary, and shows the service surviving
//! through a view change — the paper's headline property.
//!
//! Run with: `cargo run --example quickstart`

use std::time::Duration;
use viewstamped_replication::app::counter::{self, CounterModule};
use viewstamped_replication::core::cohort::TxnOutcome;
use viewstamped_replication::core::module::NullModule;
use viewstamped_replication::core::types::{GroupId, Mid};
use viewstamped_replication::runtime::ClusterBuilder;

const CLIENT: GroupId = GroupId(1);
const SERVER: GroupId = GroupId(2);
const PRIMARY: Mid = Mid(1);

fn main() {
    println!("== Viewstamped Replication quickstart ==\n");
    println!("starting a 3-cohort counter group (m1 primary, m2/m3 backups)");
    let cluster = ClusterBuilder::new()
        .group(CLIENT, &[Mid(10)], || Box::new(NullModule))
        .group(SERVER, &[Mid(1), Mid(2), Mid(3)], || Box::new(CounterModule))
        .start();

    for i in 1..=3 {
        match cluster.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]) {
            Ok(TxnOutcome::Committed { results }) => {
                let v = counter::decode_value(&results[0]).expect("decodes");
                println!("  txn {i}: counter -> {v} (committed)");
            }
            other => println!("  txn {i}: {other:?}"),
        }
    }

    println!("\ncrashing the primary ({PRIMARY}) — backups will reorganize");
    cluster.crash(PRIMARY);

    println!("submitting through the view change (aborted attempts are re-run):");
    let mut attempts = 0;
    loop {
        attempts += 1;
        match cluster.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]) {
            Ok(TxnOutcome::Committed { results }) => {
                let v = counter::decode_value(&results[0]).expect("decodes");
                println!(
                    "  committed after {attempts} attempt(s): counter -> {v} \
                     (state survived the crash)"
                );
                break;
            }
            other => {
                println!("  attempt {attempts}: {other:?} — retrying");
                std::thread::sleep(Duration::from_millis(200));
            }
        }
        if attempts > 20 {
            println!("  gave up (unexpected)");
            break;
        }
    }

    println!("\nrecovering {PRIMARY}; it rejoins as a backup with up_to_date=false");
    cluster.recover(PRIMARY);
    std::thread::sleep(Duration::from_millis(500));

    match cluster.submit(CLIENT, vec![counter::read(SERVER, 0)]) {
        Ok(TxnOutcome::Committed { results }) => {
            let v = counter::decode_value(&results[0]).expect("decodes");
            println!("final read: counter = {v}");
        }
        other => println!("final read failed: {other:?}"),
    }

    cluster.shutdown();
    println!("\ndone.");
}
