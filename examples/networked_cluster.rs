//! Networked cluster: the same replicated counter, but every
//! inter-cohort message travels over a real TCP connection — and one
//! backup's traffic is routed through a chaos proxy that partitions and
//! corrupts it on command.
//!
//! `ClusterBuilder::networked` swaps the in-process router for vsr-net
//! endpoints. The sans-I/O cohorts are untouched: they emit the same
//! `Effect::Send`s; the effects just land on sockets. Links reconnect
//! with the protocol's own capped backoff, full queues drop oldest (the
//! retry timers own reliability), and every transport event lands in
//! the shared metrics counter set.
//!
//! Run with: `cargo run --example networked_cluster`

use std::time::Duration;

use viewstamped_replication::app::counter::{self, CounterModule};
use viewstamped_replication::core::cohort::TxnOutcome;
use viewstamped_replication::core::module::NullModule;
use viewstamped_replication::core::types::{GroupId, Mid};
use viewstamped_replication::net::{AddrMap, ChaosProxy};
use viewstamped_replication::runtime::{Cluster, ClusterBuilder};
use viewstamped_replication::store::FsyncPolicy;

const CLIENT: GroupId = GroupId(1);
const SERVER: GroupId = GroupId(2);

fn incr(cluster: &Cluster) -> Option<u64> {
    for _ in 0..30 {
        if let Ok(TxnOutcome::Committed { results }) =
            cluster.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)])
        {
            return counter::decode_value(&results[0]).ok();
        }
        std::thread::sleep(Duration::from_millis(200));
    }
    None
}

fn main() {
    println!("== networked cluster (loopback TCP + chaos proxy) ==\n");

    // Ephemeral loopback listeners for every cohort; the map holds the
    // sockets until the cluster adopts them, so ports cannot be stolen.
    let mut addrs = AddrMap::loopback(&[Mid(10), Mid(1), Mid(2), Mid(3)]).expect("bind loopback");

    // Front backup Mid(3) with a chaos proxy: peers dial the proxy, the
    // proxy forwards to the cohort's real listener — until told not to.
    let proxy = ChaosProxy::spawn(addrs.bind_addr(Mid(3)).expect("mapped"), 42).expect("proxy");
    addrs.dial_via(Mid(3), proxy.addr());

    let cluster = ClusterBuilder::new()
        .networked(addrs)
        .durable(FsyncPolicy::EveryRecord)
        .group(CLIENT, &[Mid(10)], || Box::new(NullModule))
        .group(SERVER, &[Mid(1), Mid(2), Mid(3)], || Box::new(CounterModule))
        .start();

    println!("clean TCP traffic:");
    for i in 1..=2 {
        match incr(&cluster) {
            Some(v) => println!("  txn {i}: counter -> {v} (committed over sockets)"),
            None => println!("  txn {i}: failed (unexpected)"),
        }
    }

    println!("\npartitioning backup Mid(3) (black hole — writes still succeed):");
    proxy.set_partitioned(true);
    match incr(&cluster) {
        Some(v) => println!("  counter -> {v} (majority carries on without it)"),
        None => println!("  commit failed (unexpected: a majority is healthy)"),
    }
    proxy.set_partitioned(false);

    println!("\ncorrupting every byte chunk into Mid(3):");
    proxy.set_corrupt_permille(1000);
    std::thread::sleep(Duration::from_millis(300));
    proxy.set_corrupt_permille(0);
    match incr(&cluster) {
        Some(v) => println!("  counter -> {v} (CRC rejected garbage; links reconnected)"),
        None => println!("  commit failed (unexpected)"),
    }

    println!("\ncrashing the primary Mid(1) mid-traffic:");
    cluster.crash(Mid(1));
    match incr(&cluster) {
        Some(v) => println!("  counter -> {v} (view change elected a new primary over TCP)"),
        None => println!("  commit failed (unexpected)"),
    }
    cluster.recover(Mid(1));
    println!("  Mid(1) recovered: WAL replayed, endpoint re-bound, links re-formed");

    let m = cluster.metrics();
    println!("\ntransport counters (shared vsr-obs set):");
    for (name, value) in m.counters() {
        if name.starts_with("net_") || name == "mailbox_drops" {
            println!("  {name:>18}: {value}");
        }
    }
    println!("\ncommitted {} transactions, zero lost", m.committed);
    cluster.shutdown();
}
