//! Distributed bank transfers: atomic cross-group transactions through
//! two-phase commit, with a crash injected mid-workload.
//!
//! Two bank branches are separate replicated module groups; a transfer
//! is a client transaction that withdraws at one branch and deposits at
//! the other. Atomicity holds across crashes: the audit total never
//! changes.
//!
//! Run with: `cargo run --example bank_transfer`

use viewstamped_replication::app::bank::{self, BankModule};
use viewstamped_replication::core::cohort::TxnOutcome;
use viewstamped_replication::core::module::NullModule;
use viewstamped_replication::core::types::{GroupId, Mid};
use viewstamped_replication::sim::workload;
use viewstamped_replication::sim::WorldBuilder;

const CLIENT: GroupId = GroupId(1);
const BRANCH_A: GroupId = GroupId(2);
const BRANCH_B: GroupId = GroupId(3);
const ACCOUNTS: u64 = 4;
const INITIAL: u64 = 1_000;

fn main() {
    println!("== Distributed bank transfers over Viewstamped Replication ==\n");
    let mut world = WorldBuilder::new(2026)
        .group(CLIENT, &[Mid(10), Mid(11), Mid(12)], || Box::new(NullModule))
        .group(BRANCH_A, &[Mid(1), Mid(2), Mid(3)], || {
            Box::new(BankModule::with_accounts((0..ACCOUNTS).map(|a| (a, INITIAL)).collect()))
        })
        .group(BRANCH_B, &[Mid(4), Mid(5), Mid(6)], || {
            Box::new(BankModule::with_accounts((0..ACCOUNTS).map(|a| (a, INITIAL)).collect()))
        })
        .build();

    println!(
        "two branches, {ACCOUNTS} accounts each, {INITIAL} per account \
         (total = {})",
        workload::expected_total(2, ACCOUNTS, INITIAL)
    );

    // 60 cross-branch transfers, one every 400 ticks.
    let schedule = workload::transfers(&[BRANCH_A, BRANCH_B], ACCOUNTS, 60, 7, 500, 400);
    for (at, ops) in schedule {
        world.schedule_submit(at, CLIENT, ops);
    }

    // Crash branch A's primary mid-workload; recover it later.
    println!("scheduling: crash branch-A primary at t=8000, recover at t=14000\n");
    world.schedule_crash(8_000, Mid(1));
    world.schedule_recover(14_000, Mid(1));

    world.run_until(40_000);

    let m = world.metrics();
    println!("workload finished:");
    println!("  submitted:  {}", m.submitted);
    println!("  committed:  {}", m.committed);
    println!("  aborted:    {} (in-flight during the view change; re-runnable)", m.aborted);
    println!("  unresolved: {}", m.unresolved);
    println!("  view formations: {}", m.view_formations);

    // Audit both branches atomically.
    let audit = world.submit(
        CLIENT,
        vec![
            bank::audit(BRANCH_A, &(0..ACCOUNTS).collect::<Vec<_>>()),
            bank::audit(BRANCH_B, &(0..ACCOUNTS).collect::<Vec<_>>()),
        ],
    );
    world.run_for(5_000);
    match &world.result(audit).expect("audit completed").outcome {
        TxnOutcome::Committed { results } => {
            let a = bank::decode_balance(&results[0]).expect("decodes");
            let b = bank::decode_balance(&results[1]).expect("decodes");
            let expected = workload::expected_total(2, ACCOUNTS, INITIAL);
            println!("\naudit: branch A = {a}, branch B = {b}, total = {}", a + b);
            assert_eq!(a + b, expected, "money conserved across crash and view change");
            println!("money conserved: {} == {expected}", a + b);
        }
        other => println!("audit failed: {other:?}"),
    }

    world.verify().expect("one-copy serializability, durability, convergence");
    println!("\nall safety invariants verified. done.");
}
