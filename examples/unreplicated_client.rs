//! Section 3.5: an *unreplicated* client working through a replicated
//! coordinator-server.
//!
//! "Replicating a client that is not a server may not be worthwhile. …
//! it is still desirable for the coordinator to be highly available,
//! since this can reduce the 'window of vulnerability' in two-phase
//! commit."
//!
//! The client agent makes remote calls itself but delegates transaction
//! creation and two-phase commit to a coordinator-server group. When the
//! client dies mid-transaction, the coordinator-server pings it and
//! aborts unilaterally, releasing the participant's locks.
//!
//! Run with: `cargo run --example unreplicated_client`

use viewstamped_replication::app::bank::{self, BankModule};
use viewstamped_replication::app::counter::{self, CounterModule};
use viewstamped_replication::core::cohort::TxnOutcome;
use viewstamped_replication::core::module::NullModule;
use viewstamped_replication::core::types::{GroupId, Mid};
use viewstamped_replication::sim::WorldBuilder;

const COORD: GroupId = GroupId(1);
const COUNTERS: GroupId = GroupId(2);
const BANK: GroupId = GroupId(3);
const ALICE: Mid = Mid(50);
const BOB: Mid = Mid(51);

fn main() {
    println!("== Unreplicated clients with a coordinator-server (Section 3.5) ==\n");
    let mut world = WorldBuilder::new(35)
        .group(COORD, &[Mid(10), Mid(11), Mid(12)], || Box::new(NullModule))
        .group(COUNTERS, &[Mid(1), Mid(2), Mid(3)], || Box::new(CounterModule))
        .group(BANK, &[Mid(4), Mid(5), Mid(6)], || {
            Box::new(BankModule::with_accounts(vec![(0, 500), (1, 500)]))
        })
        .agent(ALICE, COORD)
        .agent(BOB, COORD)
        .build();

    println!("alice and bob are plain processes; group g1 is their coordinator-server\n");

    // Alice runs a cross-group transaction.
    let req = world.submit_via_agent(
        ALICE,
        vec![
            bank::withdraw(BANK, 0, 100),
            bank::deposit(BANK, 1, 100),
            counter::incr(COUNTERS, 0, 1),
        ],
    );
    world.run_for(4_000);
    match &world.result(req).expect("done").outcome {
        TxnOutcome::Committed { .. } => {
            let aid = world.result(req).unwrap().aid.unwrap();
            println!("alice's transfer committed; aid={aid} names the coordinator group");
        }
        other => println!("alice's transfer: {other:?}"),
    }

    // Bob starts a two-call transaction and dies after the first call —
    // his withdrawal's lock is held at the bank but nothing is decided.
    println!("\nbob begins a transaction (locks bank account 0) and crashes");
    let doomed = world
        .submit_via_agent(BOB, vec![bank::withdraw(BANK, 0, 50), counter::incr(COUNTERS, 1, 1)]);
    // Run just until the bank has stored bob's first call, then kill him.
    let bank_primary = world.primary_of(BANK).expect("bank primary");
    for _ in 0..200 {
        world.run_for(1);
        if world.cohort(bank_primary).gstate().pending_txns().next().is_some() {
            break;
        }
    }
    world.crash_agent(BOB);
    println!("the participant's stale-transaction sweep will query the coordinator,");
    println!("which pings bob, gets silence, and aborts unilaterally…");
    world.run_for(8_000);

    // Alice can use the account again: the lock was released.
    let req = world.submit_via_agent(ALICE, vec![bank::withdraw(BANK, 0, 100)]);
    world.run_for(4_000);
    match &world.result(req).expect("done").outcome {
        TxnOutcome::Committed { results } => {
            let balance = bank::decode_balance(&results[0]).unwrap();
            println!("\nalice withdrew again: balance now {balance}");
            assert_eq!(balance, 300, "bob's orphaned withdrawal never applied");
        }
        other => println!("alice blocked?! {other:?}"),
    }
    let _ = doomed;

    // Audit: money conserved, bob's orphan fully rolled back.
    let audit = world.submit_via_agent(ALICE, vec![bank::audit(BANK, &[0, 1])]);
    world.run_for(4_000);
    if let TxnOutcome::Committed { results } = &world.result(audit).unwrap().outcome {
        let total = bank::decode_balance(&results[0]).unwrap();
        println!("audit: total = {total} (conserved)");
        assert_eq!(total, 900, "500+500 minus alice's net-zero transfer and -100 withdrawal");
    }

    world.verify().expect("safety invariants");
    println!("\nall safety invariants verified. done.");
}
