//! Network partition demo: the old primary is isolated in a minority
//! partition, keeps running, but cannot commit — "the old primary will
//! not be able to prepare and commit user transactions, however, since
//! it cannot force their effects to the backups" (Section 4.1). The
//! majority side elects a new primary and keeps serving; after the heal
//! the stale primary rejoins as a backup.
//!
//! Run with: `cargo run --example partition_demo`

use viewstamped_replication::app::counter::{self, CounterModule};
use viewstamped_replication::core::cohort::TxnOutcome;
use viewstamped_replication::core::module::NullModule;
use viewstamped_replication::core::types::{GroupId, Mid};
use viewstamped_replication::sim::WorldBuilder;

const CLIENT: GroupId = GroupId(1);
const SERVER: GroupId = GroupId(2);

fn main() {
    println!("== Partition demo: fencing a stale primary ==\n");
    let mut world = WorldBuilder::new(3)
        .group(CLIENT, &[Mid(10)], || Box::new(NullModule))
        .group(SERVER, &[Mid(1), Mid(2), Mid(3)], || Box::new(CounterModule))
        .build();

    let req = world.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]);
    world.run_for(2_000);
    assert!(matches!(world.result(req).unwrap().outcome, TxnOutcome::Committed { .. }));
    let old_primary = world.primary_of(SERVER).expect("primary exists");
    println!("t={:>6}: counter=1 committed; primary is {old_primary}", world.now());

    // Isolate the primary from everyone else.
    let majority: Vec<Mid> =
        [Mid(1), Mid(2), Mid(3), Mid(10)].into_iter().filter(|&m| m != old_primary).collect();
    println!("t={:>6}: partitioning {{{old_primary}}} away from the majority", world.now());
    world.partition(&[vec![old_primary], majority]);

    world.run_for(3_000);
    let new_primary = world.primary_of(SERVER).expect("majority side re-formed");
    println!("t={:>6}: majority side formed a new view; new primary is {new_primary}", world.now());
    assert_ne!(new_primary, old_primary);

    let req = world.submit(CLIENT, vec![counter::incr(SERVER, 0, 1)]);
    world.run_for(4_000);
    match &world.result(req).unwrap().outcome {
        TxnOutcome::Committed { results } => {
            let v = counter::decode_value(&results[0]).unwrap();
            println!("t={:>6}: counter -> {v} committed on the majority side", world.now());
        }
        other => println!("unexpected: {other:?}"),
    }

    // The stale primary's view change attempts on the minority side can
    // never gather a majority.
    let stale = world.cohort(old_primary);
    println!(
        "t={:>6}: stale primary {old_primary} status={:?} (cannot form a view alone)",
        world.now(),
        stale.status()
    );

    println!("t={:>6}: healing the partition", world.now());
    world.heal();
    world.run_for(6_000);

    let rejoined = world.cohort(old_primary);
    println!(
        "t={:>6}: {old_primary} rejoined: status={:?}, up_to_date={}, view={}",
        world.now(),
        rejoined.status(),
        rejoined.is_up_to_date(),
        rejoined.cur_viewid(),
    );

    let req = world.submit(CLIENT, vec![counter::read(SERVER, 0)]);
    world.run_for(3_000);
    if let TxnOutcome::Committed { results } = &world.result(req).unwrap().outcome {
        let v = counter::decode_value(&results[0]).unwrap();
        println!("t={:>6}: final read: counter = {v} (both increments durable)", world.now());
        assert_eq!(v, 2);
    }

    // Show the reorganization timeline (vsr_sim::trace renders it).
    println!("\nreorganization timeline:");
    let rendered = viewstamped_replication::sim::trace::view_timeline(world.observations());
    for line in rendered.lines().take(12) {
        println!("  {line}");
    }
    println!("\nrun summary:");
    for line in viewstamped_replication::sim::trace::summarize(world.metrics()).lines() {
        println!("  {line}");
    }

    world.verify().expect("safety invariants");
    println!("\nall safety invariants verified. done.");
}
